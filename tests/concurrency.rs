//! Concurrent-engine regression suite: the 8-session workload must be
//! byte-identical across double runs and across harness thread counts,
//! closed-loop sessions must share the device fairly, every answer must
//! still match the oracle, and admission control must actually shrink
//! queue-depth leases (and with them plan choice) as concurrency rises.

use pioqo::prelude::*;
use pioqo::storage::range_for_selectivity;
use pioqo::workload::{
    calibrate, concurrency_grid, grid_csv, run_cell, session_export, ConcurrencyConfig,
};

/// A grid config small enough for debug-build CI.
fn tiny() -> ConcurrencyConfig {
    ConcurrencyConfig {
        rows: 8_000,
        session_counts: vec![1, 8],
        queries_per_session: 2,
        selectivities: vec![0.01],
        ..ConcurrencyConfig::default()
    }
}

#[test]
fn eight_session_export_is_byte_identical_across_double_runs() {
    let a = session_export(42).expect("first export runs");
    let b = session_export(42).expect("second export runs");
    assert_eq!(
        a.report_json, b.report_json,
        "workload report must survive a double run"
    );
    assert_eq!(
        a.chrome_json, b.chrome_json,
        "per-session Chrome trace must survive a double run"
    );
    let aj = serde_json::to_string(&a.admissions).expect("admissions serialize");
    let bj = serde_json::to_string(&b.admissions).expect("admissions serialize");
    assert_eq!(aj, bj, "admission journal must survive a double run");
}

#[test]
fn grid_with_eight_sessions_is_identical_across_thread_counts() {
    // `threads` is the harness fan-out knob (the `--threads` flag / the
    // PIOQO_THREADS variable): the engine itself is a serial event loop,
    // so the grid — 8-session cell included — must not move at all.
    let cfg = tiny();
    let opt = OptimizerConfig::fine_grained();
    let devices = [DeviceKind::Ssd];
    let t1 = concurrency_grid(&devices, &cfg, &opt, 1).expect("threads=1");
    let t4 = concurrency_grid(&devices, &cfg, &opt, 4).expect("threads=4");
    let again = concurrency_grid(&devices, &cfg, &opt, 4).expect("rerun");
    assert_eq!(
        grid_csv(&t1),
        grid_csv(&t4),
        "grid must not depend on the harness thread count"
    );
    assert_eq!(grid_csv(&t4), grid_csv(&again), "grid must survive a rerun");
}

#[test]
fn sessions_complete_fairly_under_a_truncating_horizon() {
    // A horizon makes per-session completion counts diverge — that spread
    // must stay bounded: the shared event loop and the admission budget
    // may not starve any session.
    let cfg = tiny();
    let exp = Experiment::build(cfg.experiment(DeviceKind::Ssd));
    let model = calibrate(&exp).qdtt;
    let mut spec = cfg.workload(8);
    spec.queries_per_session = 16;
    spec.horizon = Some(SimDuration::from_micros(15_000));
    let (report, _) =
        run_cell(&exp, &model, &OptimizerConfig::fine_grained(), spec).expect("cell runs");
    assert!(
        report.total_completed() < 8 * 16,
        "horizon must actually truncate the workload"
    );
    for s in &report.per_session {
        assert!(
            s.completed >= 1,
            "session {} starved: every session's t=0 query must complete",
            s.session
        );
    }
    let fairness = report.fairness_ratio();
    assert!(
        fairness.is_finite() && (1.0..=16.0).contains(&fairness),
        "unbounded completion spread across sessions: {fairness}"
    );
}

#[test]
fn every_concurrent_answer_matches_the_oracle() {
    let cfg = tiny();
    let exp = Experiment::build(cfg.experiment(DeviceKind::Ssd));
    let model = calibrate(&exp).qdtt;
    let (report, _) = run_cell(
        &exp,
        &model,
        &OptimizerConfig::fine_grained(),
        cfg.workload(8),
    )
    .expect("cell runs");
    assert_eq!(report.total_completed(), 16);
    for r in &report.records {
        let (lo, hi) = range_for_selectivity(r.selectivity, exp.dataset.c2_max());
        assert_eq!(
            r.max_c1,
            exp.dataset.table().data().naive_max_c1(lo, hi),
            "session {} query {} returned a wrong MAX under concurrency",
            r.session,
            r.query_index
        );
    }
}

#[test]
fn admission_leases_shrink_through_the_db_facade() {
    // The same shift, exercised end to end through the public API: more
    // sessions → smaller queue-depth leases at admission.
    let mean_lease = |sessions: u32| {
        let mut db = Db::builder().storage(StorageKind::Ssd).rows(8_000).build();
        let out = db
            .run_workload(WorkloadSpec {
                sessions,
                queries_per_session: 2,
                selectivities: vec![0.01],
                ..WorkloadSpec::default()
            })
            .expect("workload runs");
        assert_eq!(out.report.total_completed(), sessions as u64 * 2);
        let n = out.admissions.len().max(1) as f64;
        out.admissions
            .iter()
            .map(|a| a.lease_depth as f64)
            .sum::<f64>()
            / n
    };
    let solo = mean_lease(1);
    let crowded = mean_lease(8);
    assert!(
        crowded < solo,
        "admission must shrink leases under concurrency: {solo} vs {crowded}"
    );
}
