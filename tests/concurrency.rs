//! Concurrent-engine regression suite: the 8-session workload must be
//! byte-identical across double runs and across harness thread counts,
//! closed-loop sessions must share the device fairly, every answer must
//! still match the oracle, and admission control must actually shrink
//! queue-depth leases (and with them plan choice) as concurrency rises.
//!
//! The second half covers cooperative shared scans: the session-scale
//! sweep must be byte-identical and fair at 1K/10K sessions, flipping
//! `shared_scans` must change no answer, the admission journal must
//! charge exactly one queue-depth lease per shared cursor, and the
//! [`ScanHub`] itself must survive property-tested late joins (wrap
//! around the table end) and mid-lap detach/reattach.

use pioqo::exec::{Event, QueryAnswer, QueryRecord, ScanHub};
use pioqo::prelude::*;
use pioqo::storage::range_for_selectivity;
use pioqo::workload::{
    calibrate, concurrency_grid, grid_csv, run_cell, session_export, session_scale_csv,
    session_scale_sweep, ConcurrencyConfig, SessionScaleConfig,
};
use proptest::prelude::*;

/// A grid config small enough for debug-build CI.
fn tiny() -> ConcurrencyConfig {
    ConcurrencyConfig {
        rows: 8_000,
        session_counts: vec![1, 8],
        queries_per_session: 2,
        selectivities: vec![0.01],
        ..ConcurrencyConfig::default()
    }
}

#[test]
fn eight_session_export_is_byte_identical_across_double_runs() {
    let a = session_export(42).expect("first export runs");
    let b = session_export(42).expect("second export runs");
    assert_eq!(
        a.report_json, b.report_json,
        "workload report must survive a double run"
    );
    assert_eq!(
        a.chrome_json, b.chrome_json,
        "per-session Chrome trace must survive a double run"
    );
    let aj = serde_json::to_string(&a.admissions).expect("admissions serialize");
    let bj = serde_json::to_string(&b.admissions).expect("admissions serialize");
    assert_eq!(aj, bj, "admission journal must survive a double run");
}

#[test]
fn grid_with_eight_sessions_is_identical_across_thread_counts() {
    // `threads` is the harness fan-out knob (the `--threads` flag / the
    // PIOQO_THREADS variable): the engine itself is a serial event loop,
    // so the grid — 8-session cell included — must not move at all.
    let cfg = tiny();
    let opt = OptimizerConfig::fine_grained();
    let devices = [DeviceKind::Ssd];
    let t1 = concurrency_grid(&devices, &cfg, &opt, 1).expect("threads=1");
    let t4 = concurrency_grid(&devices, &cfg, &opt, 4).expect("threads=4");
    let again = concurrency_grid(&devices, &cfg, &opt, 4).expect("rerun");
    assert_eq!(
        grid_csv(&t1),
        grid_csv(&t4),
        "grid must not depend on the harness thread count"
    );
    assert_eq!(grid_csv(&t4), grid_csv(&again), "grid must survive a rerun");
}

#[test]
fn sessions_complete_fairly_under_a_truncating_horizon() {
    // A horizon makes per-session completion counts diverge — that spread
    // must stay bounded: the shared event loop and the admission budget
    // may not starve any session.
    let cfg = tiny();
    let exp = Experiment::build(cfg.experiment(DeviceKind::Ssd));
    let model = calibrate(&exp).qdtt;
    let mut spec = cfg.workload(8);
    spec.queries_per_session = 16;
    spec.horizon = Some(SimDuration::from_micros(15_000));
    let (report, _) =
        run_cell(&exp, &model, &OptimizerConfig::fine_grained(), spec).expect("cell runs");
    assert!(
        report.total_completed() < 8 * 16,
        "horizon must actually truncate the workload"
    );
    for s in &report.per_session {
        assert!(
            s.completed >= 1,
            "session {} starved: every session's t=0 query must complete",
            s.session
        );
    }
    let fairness = report.fairness_ratio();
    assert!(
        fairness.is_finite() && (1.0..=16.0).contains(&fairness),
        "unbounded completion spread across sessions: {fairness}"
    );
}

#[test]
fn every_concurrent_answer_matches_the_oracle() {
    let cfg = tiny();
    let exp = Experiment::build(cfg.experiment(DeviceKind::Ssd));
    let model = calibrate(&exp).qdtt;
    let (report, _) = run_cell(
        &exp,
        &model,
        &OptimizerConfig::fine_grained(),
        cfg.workload(8),
    )
    .expect("cell runs");
    assert_eq!(report.total_completed(), 16);
    for r in &report.records {
        let (lo, hi) = range_for_selectivity(r.selectivity, exp.dataset.c2_max());
        assert_eq!(
            r.max_c1,
            exp.dataset.table().data().naive_max_c1(lo, hi),
            "session {} query {} returned a wrong MAX under concurrency",
            r.session,
            r.query_index
        );
    }
}

#[test]
fn admission_leases_shrink_through_the_db_facade() {
    // The same shift, exercised end to end through the public API: more
    // sessions → smaller queue-depth leases at admission.
    let mean_lease = |sessions: u32| {
        let mut db = Db::builder().storage(StorageKind::Ssd).rows(8_000).build();
        let out = db
            .run_workload(WorkloadSpec {
                sessions,
                queries_per_session: 2,
                selectivities: vec![0.01],
                ..WorkloadSpec::default()
            })
            .expect("workload runs");
        assert_eq!(out.report.total_completed(), sessions as u64 * 2);
        let n = out.admissions.len().max(1) as f64;
        out.admissions
            .iter()
            .map(|a| a.lease_depth as f64)
            .sum::<f64>()
            / n
    };
    let solo = mean_lease(1);
    let crowded = mean_lease(8);
    assert!(
        crowded < solo,
        "admission must shrink leases under concurrency: {solo} vs {crowded}"
    );
}

/// A session-scale config small enough for debug-build CI: a 100-page
/// table behind a 48-frame pool (scans stay I/O-bound, so sharing is
/// actually chosen), one scan query per session.
fn scale_cfg() -> SessionScaleConfig {
    SessionScaleConfig {
        rows: 3_300,
        buffer_frames: 48,
        session_counts: vec![1_000, 10_000],
        ..SessionScaleConfig::default()
    }
}

#[test]
fn session_scale_sweep_is_byte_identical_and_fair_at_1k_and_10k() {
    let cfg = scale_cfg();
    let t1 = session_scale_sweep(&cfg, 1).expect("threads=1");
    let t4 = session_scale_sweep(&cfg, 4).expect("threads=4");
    assert_eq!(
        session_scale_csv(&t1),
        session_scale_csv(&t4),
        "session-scale sweep must not depend on the harness thread count"
    );
    // 1K runs both modes; 10K is shared-only (the unshared baseline is
    // capped: without sharing every completion polls every scan driver).
    assert_eq!(t1.len(), 3);
    for c in &t1 {
        assert_eq!(
            c.completed, c.sessions as u64,
            "every session's single query must complete at {} sessions",
            c.sessions
        );
        assert_eq!(
            c.fairness, 1.0,
            "one query per session leaves no room for unfairness"
        );
    }
    let shared_10k = &t1[2];
    assert!(shared_10k.shared && shared_10k.sessions == 10_000);
    assert!(
        shared_10k.attach_rate > 0.9,
        "overlapping scans at 10K sessions should ride the shared cursor: {}",
        shared_10k.attach_rate
    );
}

/// The `Db`-facade fixture for the shared-scan tests: `buffer_mb(0)`
/// clamps the pool to its 64-frame floor, well under the 243-page table,
/// so selectivity-0.4 queries stay scans instead of cached index probes.
fn shared_db() -> Db {
    Db::builder()
        .storage(StorageKind::Ssd)
        .rows(8_000)
        .buffer_mb(0)
        .seed(7)
        .build()
}

fn shared_spec(shared: bool) -> WorkloadSpec {
    WorkloadSpec {
        sessions: 32,
        queries_per_session: 2,
        selectivities: vec![0.4],
        shared_scans: shared,
        ..WorkloadSpec::default()
    }
}

#[test]
fn flipping_shared_scans_changes_no_answer() {
    let answers = |shared: bool| -> Vec<(u32, u32, Option<u32>, u64)> {
        let out = shared_db()
            .run_workload(shared_spec(shared))
            .expect("workload runs");
        assert_eq!(out.report.total_completed(), 64);
        if shared {
            assert!(
                out.report.shared.attaches > 0,
                "the shared run must actually share"
            );
        }
        // Completion order differs between modes (the hub completes whole
        // laps at once); the per-query answers may not.
        let mut keyed: Vec<(u32, u32, Option<u32>, u64)> = out
            .report
            .records
            .iter()
            .map(|r: &QueryRecord| (r.session, r.query_index, r.max_c1, r.rows_matched))
            .collect();
        keyed.sort_unstable();
        keyed
    };
    assert_eq!(
        answers(false),
        answers(true),
        "sharing may change the cursor, never the answers"
    );
}

#[test]
fn shared_cursor_is_charged_exactly_one_lease() {
    let out = shared_db()
        .run_workload(shared_spec(true))
        .expect("workload runs");
    let shared = &out.report.shared;
    assert!(shared.attaches > 0, "workload must exercise the hub");
    assert!(shared.cursor_starts >= 1);
    assert!(
        shared.cursor_starts < shared.attaches,
        "cursors must be shared: {} starts for {} attaches",
        shared.cursor_starts,
        shared.attaches
    );
    // The journal's invariant: the device stream is paid for once per
    // cursor start, and attached consumers ride it lease-free.
    assert_eq!(
        out.cursor_leases.len() as u64,
        shared.cursor_starts,
        "exactly one queue-depth lease per cursor start"
    );
    for depth in &out.cursor_leases {
        assert!(*depth >= 1, "a cursor lease must grant positive depth");
    }
    let attached: Vec<_> = out.admissions.iter().filter(|a| a.attached).collect();
    assert_eq!(
        attached.len() as u64,
        shared.attaches,
        "every hub attach must come from an attached admission decision"
    );
    for a in attached {
        assert_eq!(a.lease_depth, 0, "attached queries must not hold a lease");
        assert_eq!(a.queue_depth, 0);
        assert_eq!(a.plan, "FTS+shared");
    }
}

// ---------------------------------------------------------------------
// ScanHub property tests: drive the hub directly on a SimContext.
// ---------------------------------------------------------------------

/// A 30-page table behind a 16-frame pool on a simulated SSD.
fn hub_experiment() -> Experiment {
    Experiment::build(ExperimentConfig {
        name: "HUB-SSD".to_string(),
        table: "T33".to_string(),
        rows_per_page: 33,
        rows: 990,
        device: DeviceKind::Ssd,
        buffer_frames: 16,
        seed: 9,
    })
}

/// Land a successful read's pages in the pool, as the engine's event loop
/// does before handing the event to the hub.
fn admit_pages(ctx: &mut SimContext<'_>, ev: &Event) {
    match *ev {
        Event::IoPage {
            device_page,
            status: IoStatus::Ok,
            ..
        } => {
            let _ = ctx.pool.admit_prefetched(device_page);
        }
        Event::IoBlock {
            start,
            len,
            status: IoStatus::Ok,
            ..
        } => {
            for p in start..start + len as u64 {
                let _ = ctx.pool.admit_prefetched(p);
            }
        }
        _ => {}
    }
}

/// Step the simulation until the hub goes idle, draining completions.
fn drain_hub(
    ctx: &mut SimContext<'_>,
    hub: &mut ScanHub<'_>,
    done: &mut Vec<(u32, QueryAnswer)>,
) -> Result<(), TestCaseError> {
    let mut events = Vec::new();
    while hub.is_active() {
        events.clear();
        prop_assert!(ctx.step(&mut events), "hub stalled with consumers live");
        for &ev in &events {
            admit_pages(ctx, &ev);
            hub.on_event(ctx, &ev).expect("hub event");
        }
        hub.take_completions(done);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A consumer that attaches mid-stream starts mid-table, wraps at the
    /// end, and still aggregates every page exactly once: its answer (max
    /// AND match count — a double-delivered page would inflate the count)
    /// equals the oracle, for any attach offset and predicate pair.
    #[test]
    fn late_joiner_wraps_and_answers_the_oracle(
        k in 0u32..70,
        sel_a in 0.05f64..1.0,
        sel_b in 0.05f64..1.0,
    ) {
        let exp = hub_experiment();
        let data = exp.dataset.table().data();
        let c2_max = exp.dataset.c2_max();
        let (lo_a, hi_a) = range_for_selectivity(sel_a, c2_max);
        let (lo_b, hi_b) = range_for_selectivity(sel_b, c2_max);
        let mut device = exp.make_device();
        let mut pool = exp.make_pool();
        let mut ctx = SimContext::new(
            device.as_mut(),
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let mut hub = ScanHub::new(exp.dataset.table(), 4);
        hub.set_window(2);
        let mut done: Vec<(u32, QueryAnswer)> = Vec::new();
        let mut events = Vec::new();

        let slot_a = hub.attach(&mut ctx, lo_a, hi_a);
        // Advance the stream k evaluation completions so the second
        // consumer attaches mid-lap (k past one lap: it never attaches —
        // the cursor went idle — which is also a valid outcome).
        let mut cpu_seen = 0u32;
        while cpu_seen < k && hub.is_active() {
            events.clear();
            prop_assert!(ctx.step(&mut events), "hub stalled");
            for &ev in &events {
                admit_pages(&mut ctx, &ev);
                let was_cpu = matches!(ev, Event::Cpu(_));
                if hub.on_event(&mut ctx, &ev).expect("hub event") && was_cpu {
                    cpu_seen += 1;
                }
            }
            hub.take_completions(&mut done);
        }
        let slot_b = hub
            .is_active()
            .then(|| hub.attach(&mut ctx, lo_b, hi_b));
        drain_hub(&mut ctx, &mut hub, &mut done)?;

        let a = done.iter().find(|(s, _)| *s == slot_a).expect("A completes");
        prop_assert_eq!(a.1.max_c1, data.naive_max_c1(lo_a, hi_a));
        prop_assert_eq!(a.1.rows_matched, data.count_matching(lo_a, hi_a));
        if let Some(slot_b) = slot_b {
            let b = done
                .iter()
                .find(|(s, _)| *s == slot_b)
                .expect("late joiner completes");
            prop_assert_eq!(b.1.max_c1, data.naive_max_c1(lo_b, hi_b));
            prop_assert_eq!(b.1.rows_matched, data.count_matching(lo_b, hi_b));
            prop_assert_eq!(b.1.rows_examined, data.rows());
        }
    }

    /// Detaching a consumer mid-lap hands back a partial whose immediate
    /// reattach resumes the lap: the recombined answer equals the oracle
    /// and covers every row exactly once, for any detach point.
    #[test]
    fn detach_midlap_then_reattach_answers_the_oracle(
        k in 1u32..25,
        sel in 0.05f64..1.0,
    ) {
        let exp = hub_experiment();
        let data = exp.dataset.table().data();
        let c2_max = exp.dataset.c2_max();
        let (lo, hi) = range_for_selectivity(sel, c2_max);
        let mut device = exp.make_device();
        let mut pool = exp.make_pool();
        let mut ctx = SimContext::new(
            device.as_mut(),
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        // Single-page blocks and a one-block window: the evaluation
        // frontier advances one page per CPU completion and catches up
        // with the scheduling frontier between blocks, giving a reattach
        // point after every page.
        let mut hub = ScanHub::new(exp.dataset.table(), 1);
        hub.set_window(1);
        let mut done: Vec<(u32, QueryAnswer)> = Vec::new();

        // A full-range keeper rides the whole lap so the cursor never
        // goes idle while the target consumer is detached.
        let keeper = hub.attach(&mut ctx, 0, c2_max);
        let target = hub.attach(&mut ctx, lo, hi);

        // Advance exactly k page evaluations (k < 30 pages: both laps are
        // still unfinished), stashing the tail of the final event batch.
        let mut pending: Vec<Event> = Vec::new();
        let mut events = Vec::new();
        let mut cpu_seen = 0u32;
        'advance: loop {
            events.clear();
            prop_assert!(ctx.step(&mut events), "hub stalled");
            for i in 0..events.len() {
                let ev = events[i];
                admit_pages(&mut ctx, &ev);
                let was_cpu = matches!(ev, Event::Cpu(_));
                if hub.on_event(&mut ctx, &ev).expect("hub event") && was_cpu {
                    cpu_seen += 1;
                    if cpu_seen == k {
                        pending.extend_from_slice(&events[i + 1..]);
                        break 'advance;
                    }
                }
            }
        }

        let det = hub
            .detach(&mut ctx, target)
            .expect("target is still mid-lap");
        prop_assert_eq!(det.pages_seen, k as u64);
        prop_assert!(det.pages_left > 0);
        // The frontier has not moved since the detach, so the stream is
        // exactly at the partial's resume page.
        let target2 = match hub.reattach(&mut ctx, det) {
            Ok(slot) => slot,
            Err(det) => {
                return Err(TestCaseError::fail(format!(
                    "reattach at the detach point must succeed: {det:?}"
                )))
            }
        };
        for ev in pending {
            admit_pages(&mut ctx, &ev);
            hub.on_event(&mut ctx, &ev).expect("hub event");
        }
        drain_hub(&mut ctx, &mut hub, &mut done)?;

        let t = done
            .iter()
            .find(|(s, _)| *s == target2)
            .expect("reattached consumer completes");
        prop_assert_eq!(t.1.max_c1, data.naive_max_c1(lo, hi));
        prop_assert_eq!(t.1.rows_matched, data.count_matching(lo, hi));
        prop_assert_eq!(
            t.1.rows_examined,
            data.rows(),
            "partial + residual must cover every row exactly once"
        );
        let kp = done.iter().find(|(s, _)| *s == keeper).expect("keeper completes");
        prop_assert_eq!(kp.1.max_c1, data.naive_max_c1(0, c2_max));
    }
}
