//! Integration tests for the query layer: arbitrary predicate trees,
//! projections and aggregates through every scan operator; both join
//! operators against the naive in-memory oracle; shared scans on/off
//! answering the same oracle; and crash-recovery of a spilling hash join.

use pioqo::exec::FixedPlanner;
use pioqo::prelude::*;
use pioqo::storage::{range_for_selectivity, Extent};
use proptest::prelude::*;

/// SplitMix64 expansion of one drawn `u64` into a whole predicate tree —
/// the vendored proptest stand-in has no recursive combinators, so trees
/// grow from a sampled seed instead.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn col(&mut self) -> Col {
        if self.below(2) == 0 {
            Col::C1
        } else {
            Col::C2
        }
    }

    /// A comparison constant: usually near the C2 domain (so windows and
    /// equalities discriminate), occasionally a full-range u32.
    fn value(&mut self, c2_max: u32) -> u32 {
        if self.below(4) == 0 {
            self.next() as u32
        } else {
            self.below(u64::from(c2_max) + u64::from(c2_max / 4) + 1) as u32
        }
    }

    /// Arbitrary predicate trees: True / Cmp / Between leaves under
    /// nested AND/OR, at most `depth` connective levels.
    fn pred(&mut self, depth: u32, c2_max: u32) -> Predicate {
        let kind = if depth == 0 {
            self.below(3)
        } else {
            self.below(5)
        };
        match kind {
            0 => Predicate::True,
            1 => {
                const OPS: [CmpOp; 6] = [
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Eq,
                    CmpOp::Ge,
                    CmpOp::Gt,
                    CmpOp::Ne,
                ];
                Predicate::Cmp {
                    col: self.col(),
                    op: OPS[self.below(6) as usize],
                    value: self.value(c2_max),
                }
            }
            2 => {
                let col = self.col();
                let a = self.value(c2_max);
                let b = self.value(c2_max);
                Predicate::Between {
                    col,
                    low: a.min(b),
                    high: a.max(b),
                }
            }
            kind => {
                let children = (0..1 + self.below(3))
                    .map(|_| self.pred(depth - 1, c2_max))
                    .collect();
                if kind == 3 {
                    Predicate::And(children)
                } else {
                    Predicate::Or(children)
                }
            }
        }
    }
}

fn projections() -> Vec<Projection> {
    vec![
        Projection::All,
        Projection::Cols(vec![Col::C1]),
        Projection::Cols(vec![Col::C2]),
        Projection::Cols(vec![Col::C2, Col::C1]),
    ]
}

fn aggregates() -> Vec<Aggregate> {
    vec![
        Aggregate::Max(Col::C1),
        Aggregate::Max(Col::C2),
        Aggregate::Count,
    ]
}

fn run_query(q: &QuerySpec<'_>, capacity: u64, seed: u64) -> ScanMetrics {
    let mut dev = presets::consumer_pcie_ssd(capacity, seed);
    let mut pool = BufferPool::new(4096);
    let mut ctx = SimContext::new(
        &mut dev,
        &mut pool,
        CpuConfig::paper_xeon(),
        CpuCosts::default(),
    );
    execute(&mut ctx, q).expect("query runs")
}

fn assert_answers(m: &ScanMetrics, want: &pioqo::exec::RowAcc, label: &str) {
    assert_eq!(m.max_c1, want.agg, "{label}: aggregate");
    assert_eq!(m.rows_matched, want.matched, "{label}: rows matched");
    assert_eq!(m.fingerprint, want.fingerprint, "{label}: fingerprint");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every scan operator pushes arbitrary predicate trees, projections
    /// and aggregates down into the driver and still answers the naive
    /// in-memory oracle — value, cardinality, and projected fingerprint.
    #[test]
    fn scan_pushdown_answers_the_oracle(
        rows in 200u64..1_500,
        rpp in prop::sample::select(vec![7u32, 33]),
        c2_max in prop::sample::select(vec![500u32, 5_000, 1 << 20]),
        pred_seed in any::<u64>(),
        proj in prop::sample::select(projections()),
        agg in prop::sample::select(aggregates()),
        seed in any::<u64>(),
    ) {
        let pred = Gen(pred_seed).pred(2, c2_max);
        let spec = TableSpec { c2_max, ..TableSpec::paper_table(rpp, rows, seed) };
        let mut ts = Tablespace::new(4 * spec.n_pages() + 1_000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build(
            "c2",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        ).expect("fits");

        let mut base = QuerySpec::scan(&table)
            .with_index(&index)
            .filter(pred)
            .aggregate(agg);
        base.projection = proj;
        let want = oracle(&base);

        let plans = [
            PlanSpec::Fts(FtsConfig { workers: 3, ..FtsConfig::default() }),
            PlanSpec::Is(IsConfig::default()),
            PlanSpec::SortedIs(SortedIsConfig::default()),
        ];
        for plan in plans {
            let label = format!("{plan:?}");
            let m = run_query(&base.clone().with_plan(plan), ts.capacity(), 11);
            assert_answers(&m, &want, &label);
        }
    }
}

struct JoinFixture {
    left: HeapTable,
    right: HeapTable,
    right_index: BTreeIndex,
    spill: Extent,
    capacity: u64,
}

fn join_fixture(left_rows: u64, right_rows: u64, c2_max: u32, seed: u64) -> JoinFixture {
    let lspec = TableSpec {
        c2_max,
        ..TableSpec::paper_table(33, left_rows, seed ^ 0x10)
    };
    let rspec = TableSpec {
        name: "T_inner".to_string(),
        c2_max,
        ..TableSpec::paper_table(33, right_rows, seed ^ 0x20)
    };
    let mut ts = Tablespace::new(4 * (lspec.n_pages() + rspec.n_pages()) + 4_000);
    let left = HeapTable::create(lspec, &mut ts).expect("fits");
    let right = HeapTable::create(rspec, &mut ts).expect("fits");
    let right_index = BTreeIndex::build(
        "inner_c2",
        right.data().c2_entries(),
        right.spec().page_size,
        &mut ts,
    )
    .expect("fits");
    let spill = ts
        .alloc("join_spill", 2 * (left.n_pages() + right.n_pages()) + 64)
        .expect("fits");
    JoinFixture {
        left,
        right,
        right_index,
        spill,
        capacity: ts.capacity(),
    }
}

fn join_spec<'a>(fx: &'a JoinFixture, pred: Predicate, plan: PlanSpec) -> QuerySpec<'a> {
    QuerySpec::scan(&fx.left)
        .filter(pred)
        .with_plan(plan)
        .join(JoinClause {
            right: &fx.right,
            right_index: Some(&fx.right_index),
            spill: Some(fx.spill),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// INL and hybrid hash (with and without real spill partitions) agree
    /// with the oracle on arbitrary small two-table fixtures and
    /// arbitrary outer windows.
    #[test]
    fn joins_answer_the_oracle(
        left_rows in 400u64..1_500,
        right_rows in 300u64..1_200,
        c2_max in prop::sample::select(vec![200u32, 1_000, 5_000]),
        win in (any::<u32>(), any::<u32>()),
        seed in any::<u64>(),
    ) {
        let fx = join_fixture(left_rows, right_rows, c2_max, seed);
        let (a, b) = win;
        let pred = Predicate::c2_between(a.min(b) % (c2_max + 1), a.max(b) % (2 * c2_max));
        let want = oracle(&join_spec(&fx, pred.clone(), PlanSpec::Inl(InlConfig::default())));

        let plans = [
            PlanSpec::Inl(InlConfig::default()),
            PlanSpec::Hash(HashJoinConfig { partitions: 1, ..HashJoinConfig::default() }),
            PlanSpec::Hash(HashJoinConfig { partitions: 8, ..HashJoinConfig::default() }),
        ];
        for plan in plans {
            let label = format!("{plan:?}");
            let m = run_query(&join_spec(&fx, pred.clone(), plan), fx.capacity, 17);
            assert_answers(&m, &want, &label);
        }
    }
}

/// One completed query's identity: `(session, query_index, max_c1,
/// rows_matched)`.
type QueryAnswer = (u32, u32, Option<u32>, u64);

/// Shared scans toggled on and off return the same per-query answers, and
/// both match the oracle for each query's selectivity window.
#[test]
fn shared_scans_on_and_off_both_answer_the_oracle() {
    let spec = TableSpec::paper_table(33, 12_000, 77);
    let mut ts = Tablespace::new(4 * spec.n_pages() + 1_000);
    let table = HeapTable::create(spec, &mut ts).expect("fits");
    let index = BTreeIndex::build(
        "c2",
        table.data().c2_entries(),
        table.spec().page_size,
        &mut ts,
    )
    .expect("fits");

    let mut answers: Vec<Vec<QueryAnswer>> = Vec::new();
    for shared in [false, true] {
        let wspec = WorkloadSpec {
            sessions: 6,
            queries_per_session: 2,
            selectivities: vec![0.3],
            shared_scans: shared,
            ..WorkloadSpec::default()
        };
        let mut dev = presets::consumer_pcie_ssd(ts.capacity(), 13);
        let mut pool = BufferPool::new(4096);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let engine = MultiEngine::new(
            wspec,
            QuerySpec::range_max(&table, Some(&index), 0, 0),
            FixedPlanner {
                plan: PlanSpec::Fts(FtsConfig::default()),
            },
        );
        let report = engine.run(&mut ctx).expect("workload runs");
        assert_eq!(report.total_completed(), 12, "shared={shared}");
        for r in &report.records {
            let (low, high) = range_for_selectivity(r.selectivity, table.spec().c2_max);
            assert_eq!(
                r.max_c1,
                table.data().naive_max_c1(low, high),
                "shared={shared} session {} query {}",
                r.session,
                r.query_index
            );
        }
        let mut keyed: Vec<_> = report
            .records
            .iter()
            .map(|r| (r.session, r.query_index, r.max_c1, r.rows_matched))
            .collect();
        keyed.sort_unstable();
        answers.push(keyed);
    }
    assert_eq!(answers[0], answers[1], "sharing must not change any answer");
}

/// A mid-run device crash during a spilling hash join surfaces as
/// [`ExecError::Crashed`] instead of hanging or corrupting the answer,
/// and rerunning the identical query on a healthy device recovers the
/// oracle result.
#[test]
fn hash_join_spill_crash_surfaces_and_rerun_recovers() {
    let fx = join_fixture(4_000, 3_000, 1_000, 99);
    let pred = Predicate::c2_between(0, 800);
    let plan = PlanSpec::Hash(HashJoinConfig {
        partitions: 8,
        ..HashJoinConfig::default()
    });

    // Healthy baseline: establishes the runtime and proves the plan
    // really spills (writes to the spill extent).
    let healthy = run_query(&join_spec(&fx, pred.clone(), plan.clone()), fx.capacity, 17);
    assert!(
        healthy.io.pages_written > 0,
        "8-way hash join on this fixture must spill partitions"
    );
    let want = oracle(&join_spec(&fx, pred.clone(), plan.clone()));
    assert_answers(&healthy, &want, "healthy HHJ8");

    // Crash the device halfway through the same run.
    let at = SimTime::ZERO + healthy.runtime / 2;
    let mut dev = Crashable::new(
        presets::consumer_pcie_ssd(fx.capacity, 17),
        CrashPlan::at(at, 0xC4A5),
    );
    let mut pool = BufferPool::new(4096);
    let mut ctx = SimContext::new(
        &mut dev,
        &mut pool,
        CpuConfig::paper_xeon(),
        CpuCosts::default(),
    );
    let q = join_spec(&fx, pred.clone(), plan.clone());
    match execute(&mut ctx, &q) {
        Err(ExecError::Crashed) => {}
        other => panic!("mid-join crash must surface as Crashed, got {other:?}"),
    }
    drop(ctx);
    assert!(
        dev.crash_report().is_some(),
        "the device must have recorded the crash"
    );

    // A fresh healthy device recovers the oracle answer.
    let rerun = run_query(&join_spec(&fx, pred, plan), fx.capacity, 17);
    assert_answers(&rerun, &want, "post-crash rerun");
    assert_eq!(
        rerun.fingerprint, healthy.fingerprint,
        "byte-identical rerun"
    );
}
