//! End-to-end checks of the paper's qualitative claims at test scale.

use pioqo::prelude::*;
use pioqo::workload::{calibrate, cold_stats, evaluate};

fn exp(name: &str, factor: u64) -> Experiment {
    Experiment::build(
        ExperimentConfig::by_name(name)
            .expect("known experiment")
            .scaled_down(factor),
    )
}

/// §3: on SSD, PIS32 beats IS by an order of magnitude; on HDD the gain is
/// small. (Paper: 19.9x vs 2.5x on T33.)
#[test]
fn pis_speedup_ssd_dwarfs_hdd() {
    let sel = 0.05;
    let speedup = |name: &str| {
        let e = exp(name, 50);
        let is = e
            .run_cold(
                MethodSpec::Is {
                    workers: 1,
                    prefetch: 0,
                },
                sel,
            )
            .expect("runs")
            .runtime
            .as_secs_f64();
        let pis = e
            .run_cold(
                MethodSpec::Is {
                    workers: 32,
                    prefetch: 0,
                },
                sel,
            )
            .expect("runs")
            .runtime
            .as_secs_f64();
        is / pis
    };
    let ssd = speedup("E33-SSD");
    let hdd = speedup("E33-HDD");
    assert!(ssd > 8.0, "SSD PIS32 speedup too small: {ssd}");
    assert!(
        hdd < ssd / 2.0,
        "HDD gain must be far smaller: {hdd} vs {ssd}"
    );
}

/// §3: the break-even shifts right under parallelism, much more on SSD.
#[test]
fn break_even_ordering_np_before_p() {
    let e = exp("E33-SSD", 25);
    let np = break_even(
        &e,
        MethodSpec::Is {
            workers: 1,
            prefetch: 0,
        },
        MethodSpec::Fts { workers: 1 },
        1e-5,
        0.5,
        9,
    );
    let p = break_even(
        &e,
        MethodSpec::Is {
            workers: 32,
            prefetch: 0,
        },
        MethodSpec::Fts { workers: 32 },
        1e-5,
        0.8,
        9,
    );
    assert!(
        p > np * 1.5,
        "parallel break-even should sit clearly right of serial: {np} vs {p}"
    );
}

/// §3.3: prefetching lets few workers match many (Fig. 5's punchline).
#[test]
fn prefetch_substitutes_for_workers() {
    let e = exp("E33-SSD", 50);
    let sel = 0.01;
    let many_workers = e
        .run_cold(
            MethodSpec::Is {
                workers: 32,
                prefetch: 0,
            },
            sel,
        )
        .expect("runs")
        .runtime
        .as_secs_f64();
    let few_with_prefetch = e
        .run_cold(
            MethodSpec::Is {
                workers: 4,
                prefetch: 32,
            },
            sel,
        )
        .expect("runs")
        .runtime
        .as_secs_f64();
    assert!(
        few_with_prefetch < many_workers * 1.35,
        "4 workers + deep prefetch should rival 32 workers: {few_with_prefetch} vs {many_workers}"
    );
}

/// §4.3: the QDTT-driven optimizer achieves large end-to-end speedups on
/// SSD at low selectivity and never badly regresses.
#[test]
fn fig8_speedup_profile() {
    let e = exp("E33-SSD", 20);
    let models = calibrate(&e);
    let pts = evaluate(
        &e,
        &models,
        &OptimizerConfig::default(),
        &[0.002, 0.01, 0.3],
    );
    assert!(
        pts[0].speedup > 3.0,
        "low-selectivity speedup expected: {:?}",
        pts[0]
    );
    for p in &pts {
        assert!(p.speedup > 0.8, "no regressions: {p:?}");
    }
    // The old optimizer's plans are serial; the new one's are parallel
    // somewhere.
    assert!(pts.iter().all(|p| !p.old_plan.contains("32")));
    assert!(pts.iter().any(|p| p.new_plan.contains("32")));
}

/// The sorted-index-scan extension really bounds page fetches.
#[test]
fn sorted_is_never_refetches() {
    let e = exp("E33-SSD", 100);
    let m = e
        .run_cold(MethodSpec::SortedIs { prefetch: 32 }, 0.7)
        .expect("runs");
    assert_eq!(m.pool.refetches, 0);
    assert!(m.io.pages_read <= e.dataset.table().n_pages() + e.dataset.index().n_pages());
}

/// The QDTT model generalizes DTT: plans chosen with QDTT at forced queue
/// depth 1 equal plans chosen with the DTT slice.
#[test]
fn qdtt_at_depth_one_is_dtt() {
    let e = exp("E33-SSD", 100);
    let models = calibrate(&e);
    let stats = cold_stats(&e);
    let dtt = DttCost(models.dtt.clone());
    let qdtt = QdttCost(models.qdtt.clone());
    let cfg_serial = OptimizerConfig {
        degrees: vec![1],
        max_queue_depth: 1,
        ..OptimizerConfig::default()
    };
    let o_dtt = Optimizer::new(&dtt, cfg_serial.clone());
    let o_qdtt = Optimizer::new(&qdtt, cfg_serial);
    for sel in [0.001, 0.01, 0.2, 0.9] {
        let a = o_dtt.choose(&stats, sel);
        let b = o_qdtt.choose(&stats, sel);
        assert_eq!(a.method, b.method, "sel {sel}");
        assert!((a.est_io_us - b.est_io_us).abs() < a.est_io_us * 0.02 + 1.0);
    }
}
