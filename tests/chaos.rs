//! Chaos property suite: scans under injected faults, tail latency and
//! degraded RAID must either return the exact fault-free answer or a clean
//! typed error — never a wrong answer, a hang, or a nondeterministic run.
//!
//! The fault seed is taken from `CHAOS_SEED` (default 11) so CI can sweep
//! distinct fault universes; within one seed every assertion is exact.

use pioqo::bufpool::BufferPool;
use pioqo::prelude::*;

/// The seed for this process's fault universe (CI runs several).
fn chaos_seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => s.parse().expect("CHAOS_SEED must be an integer"),
        Err(_) => 11,
    }
}

struct Fixture {
    table: HeapTable,
    index: BTreeIndex,
    capacity: u64,
}

fn fixture(rows: u64, rpp: u32) -> Fixture {
    let spec = TableSpec::paper_table(rpp, rows, 4242);
    let mut ts = Tablespace::new(4 * spec.n_pages() + 2000);
    let table = HeapTable::create(spec, &mut ts).expect("fits");
    let index = BTreeIndex::build("c2", table.data().c2_entries(), 4096, &mut ts).expect("fits");
    let capacity = ts.capacity();
    Fixture {
        table,
        index,
        capacity,
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Fts { workers: u32 },
    Is { workers: u32 },
    SortedIs,
}

const OPS: [Op; 5] = [
    Op::Fts { workers: 1 },
    Op::Fts { workers: 4 },
    Op::Is { workers: 1 },
    Op::Is { workers: 4 },
    Op::SortedIs,
];

fn run_op(
    fx: &Fixture,
    op: Op,
    device: &mut dyn DeviceModel,
    frames: usize,
    sel: f64,
    retry: RetryPolicy,
) -> Result<ScanMetrics, ExecError> {
    let mut pool = BufferPool::new(frames);
    let (lo, hi) = pioqo::storage::range_for_selectivity(sel, u32::MAX - 1);
    let plan = match op {
        Op::Fts { workers } => PlanSpec::Fts(FtsConfig {
            workers,
            retry,
            ..FtsConfig::default()
        }),
        Op::Is { workers } => PlanSpec::Is(IsConfig {
            workers,
            prefetch_depth: 4,
            retry,
        }),
        Op::SortedIs => PlanSpec::SortedIs(SortedIsConfig {
            retry,
            ..SortedIsConfig::default()
        }),
    };
    let inputs = ScanInputs {
        table: &fx.table,
        index: Some(&fx.index),
        low: lo,
        high: hi,
    };
    let mut ctx = SimContext::new(
        device,
        &mut pool,
        CpuConfig::paper_xeon(),
        CpuCosts::default(),
    );
    execute(&mut ctx, &plan, &inputs)
}

fn plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::None),
        ("every-97th", FaultPlan::EveryNth(97)),
        ("random-2pct", FaultPlan::Random { p: 0.02, seed }),
        (
            "transient-20pct",
            FaultPlan::Transient {
                p: 0.2,
                attempts: 2,
                seed,
            },
        ),
    ]
}

/// Every fault plan × operator combination must produce the exact fault-free
/// answer or a typed I/O error — and must terminate.
#[test]
fn fault_sweep_exact_answer_or_typed_error() {
    let seed = chaos_seed();
    let fx = fixture(20_000, 33);
    let sel = 0.08;
    let (lo, hi) = pioqo::storage::range_for_selectivity(sel, u32::MAX - 1);
    let want_max = fx.table.data().naive_max_c1(lo, hi);
    let want_rows = fx.table.data().count_matching(lo, hi);

    for (plan_name, plan) in plans(seed) {
        for op in OPS {
            let inner = presets::consumer_pcie_ssd(fx.capacity, seed ^ 1);
            let mut dev = Faulty::new(inner, plan.clone());
            let r = run_op(&fx, op, &mut dev, 1024, sel, RetryPolicy::attempts(4));
            match r {
                Ok(m) => {
                    assert_eq!(
                        m.max_c1, want_max,
                        "{plan_name}/{op:?}: wrong MAX under faults"
                    );
                    assert_eq!(
                        m.rows_matched, want_rows,
                        "{plan_name}/{op:?}: wrong row count under faults"
                    );
                }
                Err(
                    ExecError::Io { .. } | ExecError::IoExhausted { .. } | ExecError::PoolExhausted,
                ) => {}
                Err(other) => panic!("{plan_name}/{op:?}: untyped failure {other}"),
            }
        }
    }
}

/// Transient faults (heal after k attempts) must be fully absorbed by the
/// retry policy: the scan succeeds, and the retry counter proves the faults
/// actually fired.
#[test]
fn transient_faults_heal_under_retry() {
    let seed = chaos_seed();
    let fx = fixture(20_000, 33);
    let (lo, hi) = pioqo::storage::range_for_selectivity(0.1, u32::MAX - 1);
    let inner = presets::consumer_pcie_ssd(fx.capacity, seed);
    let mut dev = Faulty::new(
        inner,
        FaultPlan::Transient {
            p: 0.25,
            attempts: 2,
            seed,
        },
    );
    let m = run_op(
        &fx,
        Op::Fts { workers: 4 },
        &mut dev,
        1024,
        0.1,
        RetryPolicy::attempts(4),
    )
    .expect("transient faults heal inside the retry budget");
    assert_eq!(m.max_c1, fx.table.data().naive_max_c1(lo, hi));
    assert_eq!(m.rows_matched, fx.table.data().count_matching(lo, hi));
    assert!(
        m.resilience.retries > 0,
        "the plan must actually have injected faults"
    );
}

/// A RAID array with a failed spindle still answers every query exactly,
/// reports its reconstruction reads, and is measurably slower than the
/// healthy array.
#[test]
fn degraded_raid_scan_is_exact_and_slower() {
    let seed = chaos_seed();
    let fx = fixture(20_000, 33);
    let (lo, hi) = pioqo::storage::range_for_selectivity(0.2, u32::MAX - 1);

    let mut healthy = presets::raid_15k(8, fx.capacity, seed);
    let hm = run_op(
        &fx,
        Op::Is { workers: 4 },
        &mut healthy,
        2048,
        0.2,
        RetryPolicy::default(),
    )
    .expect("healthy raid scan runs");

    let mut degraded = presets::raid_15k(8, fx.capacity, seed);
    degraded.set_degraded(Some(2));
    let dm = run_op(
        &fx,
        Op::Is { workers: 4 },
        &mut degraded,
        2048,
        0.2,
        RetryPolicy::default(),
    )
    .expect("degraded raid scan runs");

    assert_eq!(dm.max_c1, fx.table.data().naive_max_c1(lo, hi));
    assert_eq!(dm.rows_matched, fx.table.data().count_matching(lo, hi));
    assert_eq!(dm.max_c1, hm.max_c1);
    assert!(
        dm.resilience.degraded_reads > 0,
        "reads on the failed spindle must be reconstructed"
    );
    assert_eq!(hm.resilience.degraded_reads, 0);
    assert!(
        dm.runtime > hm.runtime,
        "reconstruction must cost time: healthy {} vs degraded {}",
        hm.runtime,
        dm.runtime
    );
}

/// The whole fault machinery is deterministic: a faulty, tail-latency,
/// retrying run serialized twice is byte-identical (including the
/// resilience counters).
#[test]
fn chaos_runs_are_byte_identical() {
    let seed = chaos_seed();
    let run = || {
        let fx = fixture(20_000, 33);
        let mut parts = Vec::new();
        for op in OPS {
            let inner = presets::consumer_pcie_ssd(fx.capacity, seed ^ 3);
            let mut dev = Faulty::new(
                inner,
                FaultPlan::Transient {
                    p: 0.15,
                    attempts: 1,
                    seed,
                },
            )
            .with_tail_latency(0.1, 4.0, seed ^ 5);
            let r = run_op(&fx, op, &mut dev, 1024, 0.07, RetryPolicy::attempts(3));
            parts.push(match r {
                Ok(m) => serde_json::to_string(&m).expect("metrics serialize"),
                Err(e) => format!("error: {e}"),
            });
        }
        parts.join("\n")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "chaos run must be byte-identical under one seed");
}

/// Tail-latency injection slows a scan down but never changes its answer.
#[test]
fn tail_latency_slows_but_does_not_corrupt() {
    let seed = chaos_seed();
    let fx = fixture(20_000, 33);
    let (lo, hi) = pioqo::storage::range_for_selectivity(0.1, u32::MAX - 1);

    let inner = presets::consumer_pcie_ssd(fx.capacity, seed);
    let mut clean = Faulty::new(inner, FaultPlan::None);
    let cm = run_op(
        &fx,
        Op::SortedIs,
        &mut clean,
        1024,
        0.1,
        RetryPolicy::default(),
    )
    .expect("clean scan runs");

    let inner = presets::consumer_pcie_ssd(fx.capacity, seed);
    let mut slow = Faulty::new(inner, FaultPlan::None).with_tail_latency(0.2, 8.0, seed ^ 9);
    let sm = run_op(
        &fx,
        Op::SortedIs,
        &mut slow,
        1024,
        0.1,
        RetryPolicy::default(),
    )
    .expect("tail-latency scan runs");

    assert_eq!(sm.max_c1, fx.table.data().naive_max_c1(lo, hi));
    assert_eq!(sm.rows_matched, fx.table.data().count_matching(lo, hi));
    assert_eq!(sm.max_c1, cm.max_c1);
    assert!(
        sm.runtime > cm.runtime,
        "stretching 20% of completions 8x must cost time: {} vs {}",
        cm.runtime,
        sm.runtime
    );
}

/// Every operator surfaces `PoolExhausted` (not a panic, not a wrong
/// answer) when the buffer pool has no evictable frame left.
#[test]
fn pinned_out_pool_surfaces_typed_error() {
    let fx = fixture(20_000, 33);
    for op in OPS {
        let mut dev = presets::consumer_pcie_ssd(fx.capacity, 1);
        // A pool whose every frame is pinned by pages outside the scan's
        // working set: the first admission has nothing to evict.
        let frames = 8;
        let mut pool = BufferPool::new(frames);
        for i in 0..frames as u64 {
            pool.admit(fx.capacity - 1 - i).expect("fresh pool admits");
        }
        let (lo, hi) = pioqo::storage::range_for_selectivity(0.1, u32::MAX - 1);
        let plan = match op {
            Op::Fts { workers } => PlanSpec::Fts(FtsConfig {
                workers,
                ..FtsConfig::default()
            }),
            Op::Is { workers } => PlanSpec::Is(IsConfig {
                workers,
                ..IsConfig::default()
            }),
            Op::SortedIs => PlanSpec::SortedIs(SortedIsConfig::default()),
        };
        let inputs = ScanInputs {
            table: &fx.table,
            index: Some(&fx.index),
            low: lo,
            high: hi,
        };
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let r = execute(&mut ctx, &plan, &inputs);
        assert!(
            matches!(r, Err(ExecError::PoolExhausted)),
            "{op:?}: expected PoolExhausted, got {r:?}"
        );
    }
}
