//! Chaos property suite: scans under injected faults, tail latency and
//! degraded RAID must either return the exact fault-free answer or a clean
//! typed error — never a wrong answer, a hang, or a nondeterministic run.
//!
//! The fault seed is taken from `CHAOS_SEED` (default 11) so CI can sweep
//! distinct fault universes; within one seed every assertion is exact.

use pioqo::bufpool::BufferPool;
use pioqo::prelude::*;

/// The seed for this process's fault universe (CI runs several).
fn chaos_seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => s.parse().expect("CHAOS_SEED must be an integer"),
        Err(_) => 11,
    }
}

struct Fixture {
    table: HeapTable,
    index: BTreeIndex,
    capacity: u64,
}

fn fixture(rows: u64, rpp: u32) -> Fixture {
    let spec = TableSpec::paper_table(rpp, rows, 4242);
    let mut ts = Tablespace::new(4 * spec.n_pages() + 2000);
    let table = HeapTable::create(spec, &mut ts).expect("fits");
    let index = BTreeIndex::build("c2", table.data().c2_entries(), 4096, &mut ts).expect("fits");
    let capacity = ts.capacity();
    Fixture {
        table,
        index,
        capacity,
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Fts { workers: u32 },
    Is { workers: u32 },
    SortedIs,
}

const OPS: [Op; 5] = [
    Op::Fts { workers: 1 },
    Op::Fts { workers: 4 },
    Op::Is { workers: 1 },
    Op::Is { workers: 4 },
    Op::SortedIs,
];

fn run_op(
    fx: &Fixture,
    op: Op,
    device: &mut dyn DeviceModel,
    frames: usize,
    sel: f64,
    retry: RetryPolicy,
) -> Result<ScanMetrics, ExecError> {
    let mut pool = BufferPool::new(frames);
    let (lo, hi) = pioqo::storage::range_for_selectivity(sel, u32::MAX - 1);
    let plan = match op {
        Op::Fts { workers } => PlanSpec::Fts(FtsConfig {
            workers,
            retry,
            ..FtsConfig::default()
        }),
        Op::Is { workers } => PlanSpec::Is(IsConfig {
            workers,
            prefetch_depth: 4,
            retry,
        }),
        Op::SortedIs => PlanSpec::SortedIs(SortedIsConfig {
            retry,
            ..SortedIsConfig::default()
        }),
    };
    let q = QuerySpec::range_max(&fx.table, Some(&fx.index), lo, hi).with_plan(plan);
    let mut ctx = SimContext::new(
        device,
        &mut pool,
        CpuConfig::paper_xeon(),
        CpuCosts::default(),
    );
    execute(&mut ctx, &q)
}

fn plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::None),
        ("every-97th", FaultPlan::EveryNth(97)),
        ("random-2pct", FaultPlan::Random { p: 0.02, seed }),
        (
            "transient-20pct",
            FaultPlan::Transient {
                p: 0.2,
                attempts: 2,
                seed,
            },
        ),
    ]
}

/// Every fault plan × operator combination must produce the exact fault-free
/// answer or a typed I/O error — and must terminate.
#[test]
fn fault_sweep_exact_answer_or_typed_error() {
    let seed = chaos_seed();
    let fx = fixture(20_000, 33);
    let sel = 0.08;
    let (lo, hi) = pioqo::storage::range_for_selectivity(sel, u32::MAX - 1);
    let want_max = fx.table.data().naive_max_c1(lo, hi);
    let want_rows = fx.table.data().count_matching(lo, hi);

    for (plan_name, plan) in plans(seed) {
        for op in OPS {
            let inner = presets::consumer_pcie_ssd(fx.capacity, seed ^ 1);
            let mut dev = Faulty::new(inner, plan.clone());
            let r = run_op(&fx, op, &mut dev, 1024, sel, RetryPolicy::attempts(4));
            match r {
                Ok(m) => {
                    assert_eq!(
                        m.max_c1, want_max,
                        "{plan_name}/{op:?}: wrong MAX under faults"
                    );
                    assert_eq!(
                        m.rows_matched, want_rows,
                        "{plan_name}/{op:?}: wrong row count under faults"
                    );
                }
                Err(
                    ExecError::Io { .. } | ExecError::IoExhausted { .. } | ExecError::PoolExhausted,
                ) => {}
                Err(other) => panic!("{plan_name}/{op:?}: untyped failure {other}"),
            }
        }
    }
}

/// Transient faults (heal after k attempts) must be fully absorbed by the
/// retry policy: the scan succeeds, and the retry counter proves the faults
/// actually fired.
#[test]
fn transient_faults_heal_under_retry() {
    let seed = chaos_seed();
    let fx = fixture(20_000, 33);
    let (lo, hi) = pioqo::storage::range_for_selectivity(0.1, u32::MAX - 1);
    let inner = presets::consumer_pcie_ssd(fx.capacity, seed);
    let mut dev = Faulty::new(
        inner,
        FaultPlan::Transient {
            p: 0.25,
            attempts: 2,
            seed,
        },
    );
    let m = run_op(
        &fx,
        Op::Fts { workers: 4 },
        &mut dev,
        1024,
        0.1,
        RetryPolicy::attempts(4),
    )
    .expect("transient faults heal inside the retry budget");
    assert_eq!(m.max_c1, fx.table.data().naive_max_c1(lo, hi));
    assert_eq!(m.rows_matched, fx.table.data().count_matching(lo, hi));
    assert!(
        m.resilience.retries > 0,
        "the plan must actually have injected faults"
    );
}

/// A RAID array with a failed spindle still answers every query exactly,
/// reports its reconstruction reads, and is measurably slower than the
/// healthy array.
#[test]
fn degraded_raid_scan_is_exact_and_slower() {
    let seed = chaos_seed();
    let fx = fixture(20_000, 33);
    let (lo, hi) = pioqo::storage::range_for_selectivity(0.2, u32::MAX - 1);

    let mut healthy = presets::raid_15k(8, fx.capacity, seed);
    let hm = run_op(
        &fx,
        Op::Is { workers: 4 },
        &mut healthy,
        2048,
        0.2,
        RetryPolicy::default(),
    )
    .expect("healthy raid scan runs");

    let mut degraded = presets::raid_15k(8, fx.capacity, seed);
    degraded.set_degraded(Some(2));
    let dm = run_op(
        &fx,
        Op::Is { workers: 4 },
        &mut degraded,
        2048,
        0.2,
        RetryPolicy::default(),
    )
    .expect("degraded raid scan runs");

    assert_eq!(dm.max_c1, fx.table.data().naive_max_c1(lo, hi));
    assert_eq!(dm.rows_matched, fx.table.data().count_matching(lo, hi));
    assert_eq!(dm.max_c1, hm.max_c1);
    assert!(
        dm.resilience.degraded_reads > 0,
        "reads on the failed spindle must be reconstructed"
    );
    assert_eq!(hm.resilience.degraded_reads, 0);
    assert!(
        dm.runtime > hm.runtime,
        "reconstruction must cost time: healthy {} vs degraded {}",
        hm.runtime,
        dm.runtime
    );
}

/// The whole fault machinery is deterministic: a faulty, tail-latency,
/// retrying run serialized twice is byte-identical (including the
/// resilience counters).
#[test]
fn chaos_runs_are_byte_identical() {
    let seed = chaos_seed();
    let run = || {
        let fx = fixture(20_000, 33);
        let mut parts = Vec::new();
        for op in OPS {
            let inner = presets::consumer_pcie_ssd(fx.capacity, seed ^ 3);
            let mut dev = Faulty::new(
                inner,
                FaultPlan::Transient {
                    p: 0.15,
                    attempts: 1,
                    seed,
                },
            )
            .with_tail_latency(0.1, 4.0, seed ^ 5);
            let r = run_op(&fx, op, &mut dev, 1024, 0.07, RetryPolicy::attempts(3));
            parts.push(match r {
                Ok(m) => serde_json::to_string(&m).expect("metrics serialize"),
                Err(e) => format!("error: {e}"),
            });
        }
        parts.join("\n")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "chaos run must be byte-identical under one seed");
}

/// Tail-latency injection slows a scan down but never changes its answer.
#[test]
fn tail_latency_slows_but_does_not_corrupt() {
    let seed = chaos_seed();
    let fx = fixture(20_000, 33);
    let (lo, hi) = pioqo::storage::range_for_selectivity(0.1, u32::MAX - 1);

    let inner = presets::consumer_pcie_ssd(fx.capacity, seed);
    let mut clean = Faulty::new(inner, FaultPlan::None);
    let cm = run_op(
        &fx,
        Op::SortedIs,
        &mut clean,
        1024,
        0.1,
        RetryPolicy::default(),
    )
    .expect("clean scan runs");

    let inner = presets::consumer_pcie_ssd(fx.capacity, seed);
    let mut slow = Faulty::new(inner, FaultPlan::None).with_tail_latency(0.2, 8.0, seed ^ 9);
    let sm = run_op(
        &fx,
        Op::SortedIs,
        &mut slow,
        1024,
        0.1,
        RetryPolicy::default(),
    )
    .expect("tail-latency scan runs");

    assert_eq!(sm.max_c1, fx.table.data().naive_max_c1(lo, hi));
    assert_eq!(sm.rows_matched, fx.table.data().count_matching(lo, hi));
    assert_eq!(sm.max_c1, cm.max_c1);
    assert!(
        sm.runtime > cm.runtime,
        "stretching 20% of completions 8x must cost time: {} vs {}",
        cm.runtime,
        sm.runtime
    );
}

/// Every operator surfaces `PoolExhausted` (not a panic, not a wrong
/// answer) when the buffer pool has no evictable frame left.
#[test]
fn pinned_out_pool_surfaces_typed_error() {
    let fx = fixture(20_000, 33);
    for op in OPS {
        let mut dev = presets::consumer_pcie_ssd(fx.capacity, 1);
        // A pool whose every frame is pinned by pages outside the scan's
        // working set: the first admission has nothing to evict.
        let frames = 8;
        let mut pool = BufferPool::new(frames);
        for i in 0..frames as u64 {
            pool.admit(fx.capacity - 1 - i).expect("fresh pool admits");
        }
        let (lo, hi) = pioqo::storage::range_for_selectivity(0.1, u32::MAX - 1);
        let plan = match op {
            Op::Fts { workers } => PlanSpec::Fts(FtsConfig {
                workers,
                ..FtsConfig::default()
            }),
            Op::Is { workers } => PlanSpec::Is(IsConfig {
                workers,
                ..IsConfig::default()
            }),
            Op::SortedIs => PlanSpec::SortedIs(SortedIsConfig::default()),
        };
        let q = QuerySpec::range_max(&fx.table, Some(&fx.index), lo, hi).with_plan(plan);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let r = execute(&mut ctx, &q);
        assert!(
            matches!(r, Err(ExecError::PoolExhausted)),
            "{op:?}: expected PoolExhausted, got {r:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Crash / recovery properties: the crash-consistent write path.
// ---------------------------------------------------------------------------

use pioqo::storage::{decode_heap_page, Extent};
use std::collections::BTreeMap;

struct WriteFixture {
    table: HeapTable,
    wal: Extent,
    capacity: u64,
}

fn write_fixture() -> WriteFixture {
    let spec = TableSpec::paper_table(33, 3_000, 77);
    let mut ts = Tablespace::new(spec.n_pages() + 600);
    let table = HeapTable::create(spec, &mut ts).expect("fits");
    let wal = ts.alloc("wal", 512).expect("fits");
    let capacity = ts.capacity();
    WriteFixture {
        table,
        wal,
        capacity,
    }
}

/// Media pre-populated with the full table (the database files exist before
/// the workload), optionally with a RAID-style shadow mirror.
fn base_media(fx: &WriteFixture, redundant: bool) -> MediaStore {
    let mut m = MediaStore::new(fx.table.spec().page_size);
    if redundant {
        m = m.with_redundancy();
    }
    for local in 0..fx.table.n_pages() {
        m.write(fx.table.device_page(local), &fx.table.page_image(local));
    }
    m
}

fn write_cfg(seed: u64) -> WriteConfig {
    // Busier than the defaults so crash instants routinely land on
    // in-flight WAL and data-page writes.
    WriteConfig {
        writers: 4,
        commits_per_writer: 10,
        think: SimDuration::from_micros_f64(300.0),
        group_commit: SimDuration::from_micros_f64(150.0),
        flush_interval: SimDuration::from_micros_f64(500.0),
        flush_batch: 8,
        seed,
        ..WriteConfig::default()
    }
}

/// Crash-free run: returns the finished write system and the virtual end
/// time (the sweep places its crash points strictly inside this window).
fn crash_free_run(fx: &WriteFixture, seed: u64, redundant: bool) -> (WriteSystem, SimDuration) {
    let mut dev = presets::consumer_pcie_ssd(fx.capacity, seed ^ 0xD);
    let mut pool = pioqo::bufpool::BufferPool::new(256);
    let mut ctx = SimContext::new(
        &mut dev,
        &mut pool,
        CpuConfig::paper_xeon(),
        CpuCosts::default(),
    );
    let mut ws = WriteSystem::new(
        write_cfg(seed),
        &fx.table,
        fx.wal,
        base_media(fx, redundant),
    );
    drive_writes(&mut ctx, &mut ws).expect("crash-free run completes");
    let end = ctx.now().since(SimTime::ZERO);
    (ws, end)
}

/// Run the identical workload on the identical device, crashing at `at`.
/// Returns the write system holding the post-crash media.
fn crashed_run(fx: &WriteFixture, seed: u64, redundant: bool, at: SimTime) -> WriteSystem {
    let inner = presets::consumer_pcie_ssd(fx.capacity, seed ^ 0xD);
    let mut dev = Crashable::new(inner, CrashPlan::at(at, seed ^ 0xC1));
    let mut pool = pioqo::bufpool::BufferPool::new(256);
    let mut ws = {
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let mut ws = WriteSystem::new(
            write_cfg(seed),
            &fx.table,
            fx.wal,
            base_media(fx, redundant),
        );
        let r = drive_writes(&mut ctx, &mut ws);
        assert!(
            matches!(r, Err(ExecError::Crashed)),
            "crash inside the workload window must surface as Crashed, got {r:?}"
        );
        ws
    };
    let report = dev.crash_report().expect("crashed device has a report");
    ws.apply_crash(report, seed ^ 0xC1);
    ws
}

/// The independent oracle: apply the durable WAL prefix with a fresh
/// interpreter (no shared code with `recover`'s replay loop beyond the
/// codec). Pages it never mentions keep the generated table data.
fn oracle_rows(fx: &WriteFixture, scan: &WalScan) -> BTreeMap<u64, Vec<(u32, u32)>> {
    let spec = fx.table.spec();
    let mut rows: BTreeMap<u64, Vec<(u32, u32)>> = BTreeMap::new();
    for rec in &scan.records {
        match &rec.op {
            WalOp::PageImage { page, image } => {
                let p = decode_heap_page(spec, image).expect("logged image decodes");
                rows.insert(*page, p.rows);
            }
            WalOp::Update { page, slot, value } => {
                rows.get_mut(page).expect("first touch logs a full image")[*slot as usize].0 =
                    *value;
            }
            WalOp::Checkpoint { .. } => {}
        }
    }
    rows
}

fn scan_wal(fx: &WriteFixture, media: &MediaStore) -> WalScan {
    Wal::scan(fx.wal.base, fx.wal.pages, fx.table.spec().page_size, |p| {
        media.read(p).map(<[u8]>::to_vec)
    })
}

/// One crash point, end to end. Returns a deterministic summary line, the
/// recovery stats, and the count of media pages the crash damaged (torn
/// WAL segments included — those only truncate the durable prefix and so
/// never show up in `torn_pages_detected`).
fn crash_point_case(
    fx: &WriteFixture,
    seed: u64,
    redundant: bool,
    at: SimTime,
) -> (String, RecoveryStats, u64) {
    let ws = crashed_run(fx, seed, redundant, at);
    let acked = ws.acked_lsns().to_vec();
    let mut media = ws.into_media();
    let damaged = media.damaged();

    let pre = scan_wal(fx, &media);
    let oracle = oracle_rows(fx, &pre);
    // Durability: every acknowledged commit lies inside the durable prefix.
    for lsn in &acked {
        assert!(
            *lsn <= pre.durable_lsn,
            "acked lsn {lsn} past durable horizon {} (crash at {at})",
            pre.durable_lsn
        );
    }

    let stats = recover(&mut media, fx.wal, fx.table.spec(), fx.table.extent());
    assert!(
        stats.fully_recovered(),
        "crash-torn pages are always WAL-covered; nothing may be unrecoverable: {stats:?}"
    );
    assert_eq!(stats.durable_lsn, pre.durable_lsn);

    // Byte identity against the oracle: every updated page equals the
    // oracle's replayed image, every untouched page equals the generated
    // table image. No silent corruption, anywhere.
    let spec = fx.table.spec();
    for local in 0..fx.table.n_pages() {
        let dp = fx.table.device_page(local);
        let got = media
            .read(dp)
            .unwrap_or_else(|| panic!("table page {dp} missing after recovery"));
        match oracle.get(&dp) {
            Some(rows) => {
                let want = pioqo::storage::encode_heap_page(spec, local, rows);
                assert_eq!(
                    got,
                    &want[..],
                    "page {dp} diverges from the durable-prefix oracle (crash at {at})"
                );
            }
            None => {
                assert_eq!(
                    got,
                    &fx.table.page_image(local)[..],
                    "untouched page {dp} changed across crash+recovery (crash at {at})"
                );
            }
        }
    }
    let line = format!(
        "seed={seed} redundant={redundant} at={at} durable={} records={} replayed={} torn={} damaged={damaged} acked={}",
        stats.durable_lsn,
        stats.wal_records,
        stats.pages_replayed,
        stats.torn_pages_detected,
        acked.len(),
    );
    (line, stats, damaged)
}

/// The tentpole property: at every injected crash point, every seed, both
/// media variants, the recovered database is byte-identical to the
/// durable-prefix oracle — and acked commits are always durable.
#[test]
fn crash_sweep_recovers_to_oracle_at_every_point() {
    const CRASH_POINTS: u64 = 4;
    let fx = write_fixture();
    let sweep = || {
        let mut lines = Vec::new();
        let mut damage_total = 0u64;
        for seed in [chaos_seed(), chaos_seed() ^ 0xBEEF] {
            for redundant in [false, true] {
                let (_, end) = crash_free_run(&fx, seed, redundant);
                for i in 1..=CRASH_POINTS {
                    let at = SimTime::ZERO + end * (i as f64 / (CRASH_POINTS + 1) as f64);
                    let (line, _, damaged) = crash_point_case(&fx, seed, redundant, at);
                    damage_total += damaged;
                    lines.push(line);
                }
            }
        }
        (lines.join("\n"), damage_total)
    };
    let (a, damage) = sweep();
    assert!(
        damage > 0,
        "the sweep must damage at least one in-flight write (torn WAL segment or data page)"
    );
    // The whole sweep — crash classification, damage bytes, recovery — is
    // byte-deterministic.
    let (b, _) = sweep();
    assert_eq!(a, b, "crash sweep must be byte-identical across runs");
}

/// Regression: a torn write is always caught by the page checksum — the
/// damaged image never decodes, for any seed.
#[test]
fn torn_write_is_detected_by_checksum() {
    let fx = write_fixture();
    let spec = fx.table.spec();
    for seed in 0..32u64 {
        let mut media = base_media(&fx, false);
        let dp = fx.table.device_page(1);
        assert!(decode_heap_page(spec, media.read(dp).expect("present")).is_ok());
        media.tear(dp, seed);
        assert!(
            decode_heap_page(spec, media.read(dp).expect("present")).is_err(),
            "torn page must fail its checksum (seed {seed})"
        );
    }
}

/// At-rest corruption of a page the WAL never covered: plain SSD reports a
/// typed unrecoverable loss; a healthy mirror reconstructs it; a degraded
/// mirror reports the loss again. Never silently-wrong bytes.
#[test]
fn at_rest_corruption_after_crash_follows_redundancy() {
    let fx = write_fixture();
    let seed = chaos_seed();
    let (_, end) = crash_free_run(&fx, seed, false);
    let at = SimTime::ZERO + end * 0.5;

    let run = |redundant: bool, degrade: bool| {
        let ws = crashed_run(&fx, seed, redundant, at);
        let mut media = ws.into_media();
        let scan = scan_wal(&fx, &media);
        let oracle = oracle_rows(&fx, &scan);
        // Corrupt a page the log never touched, so replay cannot repair it.
        let victim = (0..fx.table.n_pages())
            .map(|l| fx.table.device_page(l))
            .find(|dp| !oracle.contains_key(dp))
            .expect("small workload leaves untouched pages");
        media.corrupt(victim, seed ^ 0xA7);
        if degrade {
            media.set_degraded(true);
        }
        let stats = recover(&mut media, fx.wal, fx.table.spec(), fx.table.extent());
        (victim, stats)
    };

    let (victim, ssd) = run(false, false);
    assert_eq!(
        ssd.unrecoverable_pages,
        vec![victim],
        "no redundancy: the corrupt page is a typed loss"
    );

    let (victim, healthy) = run(true, false);
    assert!(
        healthy.fully_recovered() && healthy.reconstructed_pages == 1,
        "healthy mirror must reconstruct page {victim}: {healthy:?}"
    );

    let (victim, degraded) = run(true, true);
    assert_eq!(
        degraded.unrecoverable_pages,
        vec![victim],
        "degraded mirror cannot reconstruct"
    );
}
