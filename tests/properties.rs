//! Property-based tests (proptest) on the core data structures and
//! invariants of the stack.

use pioqo::bufpool::{Access, BufferPool};
use pioqo::core::Qdtt;
use pioqo::optimizer::card::{mackert_lohman_fetches, yao_pages};
use pioqo::prelude::*;
use pioqo::storage::{decode_heap_page, encode_heap_page};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Heap page codec: encode → decode is the identity for any row set
    /// that fits the page.
    #[test]
    fn heap_page_codec_round_trips(
        rows in prop::collection::vec((any::<u32>(), any::<u32>()), 0..33),
        page_no in 0u64..1_000_000,
    ) {
        let spec = TableSpec::paper_table(33, 1_000_000, 0);
        let img = encode_heap_page(&spec, page_no, &rows);
        prop_assert_eq!(img.len(), 4096);
        let decoded = decode_heap_page(&spec, &img).expect("valid image decodes");
        prop_assert_eq!(decoded.page_no, page_no);
        prop_assert_eq!(decoded.rows, rows);
    }

    /// Corrupting any payload byte of a non-empty page is detected.
    #[test]
    fn heap_page_codec_detects_any_payload_flip(
        seed in any::<u64>(),
        flip in 32usize..4096,
    ) {
        let spec = TableSpec::paper_table(33, 1_000, 0);
        let rows: Vec<(u32, u32)> = (0..33).map(|i| (i, i * 7 + seed as u32)).collect();
        let img = encode_heap_page(&spec, 0, &rows);
        let mut bad = img.to_vec();
        bad[flip] ^= 0x5A;
        // Either the flip hit padding (decode still matches) or it is
        // caught; silent corruption of row data is never accepted.
        if let Ok(p) = decode_heap_page(&spec, &bad) {
            prop_assert_eq!(p.rows, rows);
        }
    }

    /// B+-tree range scans match a sorted filter for arbitrary data and
    /// arbitrary ranges.
    #[test]
    fn btree_range_equals_filter(
        keys in prop::collection::vec(0u32..1000, 1..400),
        lo in 0u32..1000,
        width in 0u32..1000,
    ) {
        let hi = lo.saturating_add(width);
        let mut ts = Tablespace::new(10_000);
        let idx = BTreeIndex::build(
            "t",
            keys.iter().enumerate().map(|(i, &k)| (k, i as u64)),
            4096,
            &mut ts,
        ).expect("fits");
        let expected: u64 = keys.iter().filter(|&&k| k >= lo && k <= hi).count() as u64;
        let got = idx.range(lo, hi).map_or(0, |r| r.len());
        prop_assert_eq!(got, expected);
        if let Some(r) = idx.range(lo, hi) {
            // Every entry in range qualifies; rids are valid.
            for e in r.first_entry..r.end_entry {
                let (k, rid) = idx.entry(e);
                prop_assert!(k >= lo && k <= hi);
                prop_assert!(rid < keys.len() as u64);
            }
        }
    }

    /// Buffer pool: never exceeds capacity, never evicts pinned pages,
    /// list/map invariants hold under arbitrary operation sequences.
    #[test]
    fn bufpool_invariants_under_random_ops(
        cap in 1usize..20,
        ops in prop::collection::vec((0u64..40, any::<bool>()), 1..200),
    ) {
        let mut pool = BufferPool::new(cap);
        let mut pinned: Vec<u64> = Vec::new();
        for (page, pin_longer) in ops {
            if pinned.len() >= cap {
                // Release one pin so admission can always succeed.
                let p = pinned.remove(0);
                pool.unpin(p).expect("was pinned");
            }
            match pool.request(page) {
                Access::Hit => {
                    if pin_longer && !pinned.contains(&page) {
                        pinned.push(page);
                    } else {
                        pool.unpin(page).expect("just pinned");
                    }
                }
                Access::Miss => {
                    pool.admit(page).expect("capacity available");
                    if pin_longer && !pinned.contains(&page) {
                        pinned.push(page);
                    } else {
                        pool.unpin(page).expect("just admitted");
                    }
                }
            }
            pool.check_invariants();
            prop_assert!(pool.len() <= cap);
            for p in &pinned {
                prop_assert!(pool.contains(*p), "pinned page {p} evicted");
            }
        }
    }

    /// Bilinear interpolation is bounded by its surrounding knots and
    /// exact on them.
    #[test]
    fn qdtt_interpolation_bounded_by_knots(
        grid in prop::collection::vec(1.0f64..10_000.0, 9),
        band in 1u64..100_000,
        qd in 1u32..40,
    ) {
        let bands = vec![1u64, 1000, 100_000];
        let qds = vec![1u32, 8, 32];
        let m = Qdtt::new(bands.clone(), qds.clone(), grid.clone());
        let lo = grid.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = grid.iter().cloned().fold(0.0f64, f64::max);
        let c = m.cost(band, qd);
        prop_assert!(c >= lo - 1e-9 && c <= hi + 1e-9, "{c} outside [{lo}, {hi}]");
        for (bi, &b) in bands.iter().enumerate() {
            for (qi, &q) in qds.iter().enumerate() {
                prop_assert!((m.cost(b, q) - grid[qi * 3 + bi]).abs() < 1e-9);
            }
        }
    }

    /// Yao: bounded by min(k, m) from below by ... and monotone in k.
    #[test]
    fn yao_bounds_and_monotonicity(
        m in 1u64..5_000,
        rpp in 1u64..100,
        k1 in 0u64..10_000,
        k2 in 0u64..10_000,
    ) {
        let n = m * rpp;
        let (ka, kb) = (k1.min(k2).min(n), k1.max(k2).min(n));
        let pa = yao_pages(m, n, ka);
        let pb = yao_pages(m, n, kb);
        prop_assert!(pa <= pb + 1e-6, "monotone in k");
        prop_assert!(pb <= m as f64 + 1e-6, "bounded by page count");
        prop_assert!(pa <= ka as f64 + 1e-6, "bounded by access count");
        if ka > 0 {
            prop_assert!(pa >= 1.0 - 1e-9, "at least one page");
        }
    }

    /// Mackert–Lohman: never below the no-refetch distinct-page bound's
    /// cap behaviour and never above k.
    #[test]
    fn mackert_lohman_bounds(
        t in 1u64..100_000,
        k in 0u64..1_000_000,
        b in 1u64..50_000,
    ) {
        let f = mackert_lohman_fetches(t, k, b);
        prop_assert!(f >= 0.0);
        prop_assert!(f <= k as f64 + 1e-6, "cannot fetch more than accesses");
        if t <= b {
            prop_assert!(f <= t as f64 + 1e-6, "table fits: each page once");
        }
    }

    /// The simulated devices never complete an I/O before it was submitted,
    /// and deliver exactly one completion per request.
    #[test]
    fn devices_conserve_requests(
        offsets in prop::collection::vec(0u64..(1 << 14), 1..80),
        ssd in any::<bool>(),
    ) {
        let mut dev: Box<dyn DeviceModel> = if ssd {
            Box::new(presets::consumer_pcie_ssd(1 << 14, 3))
        } else {
            Box::new(presets::hdd_7200(1 << 14, 3))
        };
        for (i, &o) in offsets.iter().enumerate() {
            dev.submit(SimTime::ZERO, IoRequest::page(i as u64, o));
        }
        let mut out = Vec::new();
        pioqo::device::drain_all(&mut *dev, SimTime::ZERO, &mut out);
        prop_assert_eq!(out.len(), offsets.len());
        let mut ids: Vec<u64> = out.iter().map(|c| c.req.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..offsets.len() as u64).collect::<Vec<_>>());
        for c in &out {
            prop_assert!(c.completed > c.submitted);
            prop_assert!(c.status == IoStatus::Ok);
        }
    }

    /// The event calendar pops in non-decreasing time order with FIFO ties,
    /// for arbitrary schedules.
    #[test]
    fn event_queue_total_order(
        delays in prop::collection::vec(0u64..1_000, 1..300),
    ) {
        let mut q = pioqo::simkit::EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            q.schedule(SimTime::from_nanos(d), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt, "time order");
                if t == lt {
                    prop_assert!(id > lid, "FIFO tie-break");
                }
            }
            last = Some((t, id));
        }
    }

    /// Time-weighted level tracking integrates a random step function to
    /// the same mean as a direct Riemann sum.
    #[test]
    fn time_weighted_matches_riemann_sum(
        steps in prop::collection::vec((1u64..1_000, 0u32..50), 1..100),
    ) {
        use pioqo::simkit::TimeWeighted;
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut now = 0u64;
        let mut integral = 0.0f64;
        let mut level = 0.0f64;
        for &(dt, l) in &steps {
            integral += level * dt as f64;
            now += dt;
            level = l as f64;
            tw.set(SimTime::from_nanos(now), level);
        }
        // Extend one more tick so the final level contributes.
        integral += level * 1_000.0;
        now += 1_000;
        let expected = integral / now as f64;
        let got = tw.mean(SimTime::from_nanos(now));
        prop_assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    /// All scan operators return the oracle answer on arbitrary small
    /// tables and ranges.
    #[test]
    fn scans_equal_oracle_on_arbitrary_tables(
        rows in 100u64..2_000,
        rpp in prop::sample::select(vec![1u32, 7, 33, 120]),
        sel in 0.0f64..1.0,
        workers in prop::sample::select(vec![1u32, 3, 8]),
        seed in any::<u64>(),
    ) {
        let spec = TableSpec::paper_table(rpp, rows, seed);
        let mut ts = Tablespace::new(4 * spec.n_pages() + 1000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build(
            "i",
            table.data().c2_entries(),
            4096,
            &mut ts,
        ).expect("fits");
        let (lo, hi) = pioqo::storage::range_for_selectivity(sel, u32::MAX - 1);
        let expected = table.data().naive_max_c1(lo, hi);

        let base = QuerySpec::range_max(&table, Some(&index), lo, hi);

        let mut dev = presets::consumer_pcie_ssd(ts.capacity(), 3);
        let mut pool = BufferPool::new(512);
        let mut ctx = SimContext::new(
            &mut dev, &mut pool, CpuConfig::paper_xeon(), CpuCosts::default(),
        );
        let fts = execute(
            &mut ctx,
            &base.clone().with_plan(PlanSpec::Fts(FtsConfig { workers, ..FtsConfig::default() })),
        ).expect("fts runs");
        prop_assert_eq!(fts.max_c1, expected);
        drop(ctx);

        let mut dev = presets::consumer_pcie_ssd(ts.capacity(), 3);
        let mut pool = BufferPool::new(512);
        let mut ctx = SimContext::new(
            &mut dev, &mut pool, CpuConfig::paper_xeon(), CpuCosts::default(),
        );
        let is = execute(
            &mut ctx,
            &base.with_plan(PlanSpec::Is(IsConfig { workers, prefetch_depth: workers % 3, ..IsConfig::default() })),
        ).expect("is runs");
        prop_assert_eq!(is.max_c1, expected);
    }
}
