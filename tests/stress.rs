//! Long-running randomized stress test: hundreds of scans with random
//! methods, selectivities, pool sizes and devices, every answer checked
//! against the oracle and every run checked for basic sanity invariants.
//!
//! Ignored by default (several minutes in debug builds); run with
//! `cargo test --release --test stress -- --ignored`.

use pioqo::bufpool::BufferPool;
use pioqo::prelude::*;
use pioqo::storage::range_for_selectivity;

#[test]
#[ignore = "long-running randomized stress; run explicitly with --ignored"]
fn randomized_scan_storm() {
    let mut rng = SimRng::seeded(0xBEEF);
    // A handful of datasets with varied geometry.
    let fixtures: Vec<(HeapTable, BTreeIndex, u64)> =
        [(1u32, 20_000u64), (33, 60_000), (120, 120_000)]
            .iter()
            .map(|&(rpp, rows)| {
                let spec = TableSpec::paper_table(rpp, rows, 1000 + rpp as u64);
                let mut ts = Tablespace::new(4 * spec.n_pages() + 2000);
                let t = HeapTable::create(spec, &mut ts).expect("fits");
                let i = BTreeIndex::build("i", t.data().c2_entries(), 4096, &mut ts).expect("fits");
                (t, i, ts.capacity())
            })
            .collect();

    for round in 0..300u32 {
        let (table, index, cap) = &fixtures[rng.below(fixtures.len() as u64) as usize];
        let sel = rng.unit().powi(3); // skew toward low selectivity
        let (lo, hi) = range_for_selectivity(sel, u32::MAX - 1);
        let expected = table.data().naive_max_c1(lo, hi);
        let frames = 32 + rng.below(4096) as usize;
        let mut pool = BufferPool::new(frames);
        let seed = rng.below(1 << 32);
        let mut device: Box<dyn DeviceModel> = match rng.below(3) {
            0 => Box::new(presets::hdd_7200(*cap, seed)),
            1 => Box::new(presets::consumer_pcie_ssd(*cap, seed)),
            _ => Box::new(presets::raid_15k(4, *cap, seed)),
        };
        let cpu = CpuConfig::paper_xeon();
        let costs = CpuCosts::default();
        let workers = [1u32, 2, 3, 8, 17, 32][rng.below(6) as usize];

        let plan = match rng.below(3) {
            0 => PlanSpec::Fts(FtsConfig {
                workers,
                prefetch_blocks: rng.below(12) as u32,
                block_pages: 1 + rng.below(32) as u32,
                ..FtsConfig::default()
            }),
            1 => PlanSpec::Is(IsConfig {
                workers,
                prefetch_depth: rng.below(16) as u32,
                ..IsConfig::default()
            }),
            _ => PlanSpec::SortedIs(SortedIsConfig {
                prefetch_depth: 1 + rng.below(48) as u32,
                leaf_prefetch: 1 + rng.below(16) as u32,
                ..SortedIsConfig::default()
            }),
        };
        let q = QuerySpec::range_max(table, Some(index), lo, hi).with_plan(plan);
        let mut ctx = SimContext::new(&mut *device, &mut pool, cpu, costs);
        let metrics =
            execute(&mut ctx, &q).unwrap_or_else(|e| panic!("round {round}: scan failed: {e}"));
        drop(ctx);

        assert_eq!(metrics.max_c1, expected, "round {round} wrong answer");
        assert!(
            metrics.runtime > pioqo::simkit::SimDuration::ZERO || metrics.rows_matched == 0,
            "round {round}: zero runtime with work done"
        );
        assert!(
            metrics.io.peak_queue_depth <= (workers as f64 + 1.0) * 49.0,
            "round {round}: absurd queue depth {}",
            metrics.io.peak_queue_depth
        );
        assert_eq!(device.outstanding(), 0, "round {round}: device left busy");
    }
}
