//! Cross-crate integration tests: storage + bufpool + exec + core +
//! optimizer wired together the way the reproduction harness uses them.

use pioqo::core::{load_qdtt, save_qdtt, CalibrationConfig, Calibrator, Method};
use pioqo::prelude::*;
use pioqo::workload::{calibrate, cold_stats, plan_to_method};

fn small_experiment(name: &str, factor: u64) -> Experiment {
    Experiment::build(
        ExperimentConfig::by_name(name)
            .expect("known experiment")
            .scaled_down(factor),
    )
}

#[test]
fn all_access_methods_agree_with_oracle() {
    let exp = small_experiment("E33-SSD", 400);
    for sel in [0.0, 0.01, 0.3, 1.0] {
        let expected = exp.dataset.oracle_max(sel);
        let methods = [
            MethodSpec::Fts { workers: 1 },
            MethodSpec::Fts { workers: 32 },
            MethodSpec::Is {
                workers: 1,
                prefetch: 0,
            },
            MethodSpec::Is {
                workers: 32,
                prefetch: 0,
            },
            MethodSpec::Is {
                workers: 4,
                prefetch: 8,
            },
            MethodSpec::SortedIs { prefetch: 16 },
        ];
        for m in methods {
            let r = exp.run_cold(m, sel).expect("scan runs");
            assert_eq!(r.max_c1, expected, "method {m} sel {sel}");
            assert_eq!(r.rows_matched, exp.dataset.oracle_count(sel));
        }
    }
}

#[test]
fn pis_queue_depth_equals_worker_count() {
    // §2's profiling observation, across devices.
    let exp = small_experiment("E33-SSD", 100);
    for workers in [2u32, 8] {
        let m = exp
            .run_cold(
                MethodSpec::Is {
                    workers,
                    prefetch: 0,
                },
                0.05,
            )
            .expect("scan runs");
        assert!(
            (workers as f64 * 0.5..=workers as f64 * 1.2).contains(&m.io.mean_queue_depth),
            "PIS{workers}: mean qd {}",
            m.io.mean_queue_depth
        );
    }
}

#[test]
fn warm_cache_is_faster_and_does_less_io() {
    let exp = small_experiment("E33-SSD", 400);
    let mut dev = exp.make_device();
    let mut pool = exp.make_pool();
    let m = MethodSpec::Fts { workers: 1 };
    let cold = exp
        .run_with(&mut *dev, &mut pool, m, 0.1)
        .expect("cold run");
    let warm = exp
        .run_with(&mut *dev, &mut pool, m, 0.1)
        .expect("warm run");
    assert_eq!(cold.max_c1, warm.max_c1);
    assert!(warm.io.pages_read < cold.io.pages_read / 2);
    assert!(warm.runtime < cold.runtime);
}

#[test]
fn calibrated_model_survives_persistence_and_drives_same_plans() {
    let exp = small_experiment("E33-SSD", 200);
    let models = calibrate(&exp);
    let path = std::env::temp_dir().join(format!("pioqo-it-{}.json", std::process::id()));
    save_qdtt(&models.qdtt, &path).expect("save model");
    let reloaded = load_qdtt(&path).expect("load model");
    // JSON round-trips floats to ~1 ulp; compare the surfaces numerically.
    for &b in models.qdtt.band_sizes() {
        for &q in models.qdtt.queue_depths() {
            let a = models.qdtt.cost(b, q);
            let r = reloaded.cost(b, q);
            assert!((a - r).abs() <= a * 1e-12, "band {b} qd {q}: {a} vs {r}");
        }
    }

    let stats = cold_stats(&exp);
    let m1 = QdttCost(models.qdtt.clone());
    let m2 = QdttCost(reloaded);
    let o1 = Optimizer::new(&m1, OptimizerConfig::default());
    let o2 = Optimizer::new(&m2, OptimizerConfig::default());
    for sel in [0.001, 0.05, 0.6] {
        let p1 = o1.choose(&stats, sel);
        let p2 = o2.choose(&stats, sel);
        assert_eq!(p1.method, p2.method);
        assert_eq!(p1.degree, p2.degree);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn early_stop_hdd_yes_ssd_no() {
    let cap = 1u64 << 18;
    let cal = Calibrator::new(CalibrationConfig::for_device(cap, 5));
    let mut hdd = presets::hdd_7200(cap, 5);
    let (_, r_hdd) = cal.calibrate_qdtt(&mut hdd);
    assert!(r_hdd.stopped_at_qd.is_some(), "HDD should stop early");
    let mut ssd = presets::consumer_pcie_ssd(cap, 5);
    let (_, r_ssd) = cal.calibrate_qdtt(&mut ssd);
    assert_eq!(r_ssd.stopped_at_qd, None, "SSD must calibrate fully");
    assert!(r_hdd.points_measured < r_ssd.points_measured);
}

#[test]
fn chosen_plans_execute_and_keep_answers() {
    let exp = small_experiment("E33-SSD", 100);
    let models = calibrate(&exp);
    let stats = cold_stats(&exp);
    let dtt_model = DttCost(models.dtt.clone());
    let qdtt_model = QdttCost(models.qdtt.clone());
    let old = Optimizer::new(&dtt_model, OptimizerConfig::default());
    let new = Optimizer::new(&qdtt_model, OptimizerConfig::default());
    for sel in [0.002, 0.08, 0.5] {
        let po = old.choose(&stats, sel);
        let pn = new.choose(&stats, sel);
        let ro = exp
            .run_cold(plan_to_method(&po, 0), sel)
            .expect("old plan runs");
        let rn = exp
            .run_cold(plan_to_method(&pn, 0), sel)
            .expect("new plan runs");
        assert_eq!(ro.max_c1, rn.max_c1, "sel {sel}");
        assert_eq!(ro.max_c1, exp.dataset.oracle_max(sel));
    }
}

#[test]
fn gw_aw_threads_all_calibrate_ssd_consistently() {
    let cap = 1u64 << 16;
    let band = 1u64 << 14;
    let mut costs = Vec::new();
    for method in [Method::Threads, Method::GroupWait, Method::ActiveWait] {
        let cal = Calibrator::new(CalibrationConfig {
            band_sizes: vec![band],
            queue_depths: vec![8],
            max_reads: 800,
            method,
            repetitions: 2,
            early_stop_pct: None,
            stop_fill_factor: 1.02,
            seed: 9,
        });
        let mut dev = presets::consumer_pcie_ssd(cap, 9);
        costs.push(cal.measure_point(&mut dev, band, 8));
    }
    let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = costs.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max / min < 1.5,
        "methods should agree on SSD within 50%: {costs:?}"
    );
}

#[test]
fn fault_injection_propagates_to_experiment_level() {
    use pioqo::device::{FaultPlan, Faulty};
    let exp = small_experiment("E33-SSD", 400);
    let dev = presets::consumer_pcie_ssd(exp.dataset.device_capacity(), 3);
    let mut dev = Faulty::new(dev, FaultPlan::EveryNth(2));
    let mut pool = exp.make_pool();
    let r = exp.run_with(&mut dev, &mut pool, MethodSpec::Fts { workers: 4 }, 0.5);
    assert!(r.is_err(), "injected I/O errors must surface");
}

#[test]
fn determinism_same_seed_same_metrics() {
    let run = || {
        let exp = small_experiment("E33-SSD", 400);
        let m = exp
            .run_cold(
                MethodSpec::Is {
                    workers: 8,
                    prefetch: 4,
                },
                0.05,
            )
            .expect("scan runs");
        (m.runtime, m.io.pages_read, m.max_c1)
    };
    assert_eq!(run(), run());
}

#[test]
fn tiny_pool_still_completes_with_refetches() {
    let cfg = ExperimentConfig {
        buffer_frames: 40,
        ..ExperimentConfig::by_name("E33-SSD").expect("exists")
    }
    .scaled_down(400);
    let exp = Experiment::build(cfg);
    let m = exp
        .run_cold(
            MethodSpec::Is {
                workers: 4,
                prefetch: 0,
            },
            0.5,
        )
        .expect("scan survives a 40-frame pool");
    assert_eq!(m.max_c1, exp.dataset.oracle_max(0.5));
    assert!(m.pool.refetches > 0);
}

/// The §1 motivation: the same calibration + optimizer, pointed at a
/// device generation the paper never saw (gen4 NVMe), adapts on its own —
/// deeper beneficial queue depth, cheaper random I/O, parallel plans
/// chosen over an even wider selectivity range than on the 2013 SSD.
#[test]
fn calibration_adapts_to_future_devices_unseen_by_the_paper() {
    let cap = 1u64 << 19;
    let cal = Calibrator::new(CalibrationConfig::for_device(cap, 5));

    let mut ssd = presets::consumer_pcie_ssd(cap, 5);
    let (m_ssd, _) = cal.calibrate_qdtt(&mut ssd);
    let mut nvme = presets::nvme_gen4(cap, 5);
    let (m_nvme, _) = cal.calibrate_qdtt(&mut nvme);

    let widest = *m_ssd.band_sizes().last().expect("bands");
    // The NVMe's random reads are cheaper at every depth...
    for &qd in m_ssd.queue_depths() {
        assert!(m_nvme.cost(widest, qd) < m_ssd.cost(widest, qd));
    }
    // ...and its queue-depth payoff is at least as strong.
    let gain = |m: &pioqo::core::Qdtt| m.cost(widest, 1) / m.cost(widest, 32);
    assert!(
        gain(&m_nvme) >= gain(&m_ssd) * 0.8,
        "nvme gain {} vs ssd gain {}",
        gain(&m_nvme),
        gain(&m_ssd)
    );
}
