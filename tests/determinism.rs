//! Determinism regression test: the same seeded experiment run twice must
//! produce byte-identical serialized metrics. This is the workspace's
//! north-star invariant (lint rules D1-D4 exist to protect it), so any
//! hash-order leak, wall-clock read, or ambient entropy introduced
//! anywhere in the scan path fails here even if every unit test passes.

use pioqo::prelude::*;

fn experiment(name: &str) -> Experiment {
    Experiment::build(
        ExperimentConfig::by_name(name)
            .expect("table 1 lists this experiment")
            .scaled_down(100),
    )
}

/// Serialize every metric of one full cold-scan run, covering both scan
/// operators and a multi-worker configuration (the concurrency paths are
/// where nondeterminism likes to hide).
fn run_fingerprint(name: &str) -> String {
    let e = experiment(name);
    let methods = [
        MethodSpec::Fts { workers: 1 },
        MethodSpec::Fts { workers: 8 },
        MethodSpec::Is {
            workers: 1,
            prefetch: 0,
        },
        MethodSpec::Is {
            workers: 16,
            prefetch: 0,
        },
    ];
    let mut parts = Vec::new();
    for (i, method) in methods.iter().enumerate() {
        let metrics = e
            .run_cold(*method, 0.02 + 0.01 * i as f64)
            .expect("cold scan completes at test scale");
        parts.push(serde_json::to_string(&metrics).expect("scan metrics serialize to JSON"));
    }
    parts.join("\n")
}

#[test]
fn repeated_runs_serialize_identically_ssd() {
    let a = run_fingerprint("E33-SSD");
    let b = run_fingerprint("E33-SSD");
    assert_eq!(a, b, "same seed must reproduce byte-identical SSD metrics");
}

#[test]
fn repeated_runs_serialize_identically_hdd() {
    let a = run_fingerprint("E33-HDD");
    let b = run_fingerprint("E33-HDD");
    assert_eq!(a, b, "same seed must reproduce byte-identical HDD metrics");
}

#[test]
fn fresh_experiment_instances_agree_with_reused_ones() {
    // Rebuilding the experiment from config must not change results either:
    // all state that matters is derived from the seed, none from ambient
    // process state.
    let e = experiment("E500-SSD");
    let method = MethodSpec::Is {
        workers: 8,
        prefetch: 0,
    };
    let reused = e
        .run_cold(method, 0.03)
        .expect("cold scan completes at test scale");
    let rebuilt = experiment("E500-SSD")
        .run_cold(method, 0.03)
        .expect("cold scan completes at test scale");
    let a = serde_json::to_string(&reused).expect("scan metrics serialize to JSON");
    let b = serde_json::to_string(&rebuilt).expect("scan metrics serialize to JSON");
    assert_eq!(
        a, b,
        "experiment construction must be a pure function of its config"
    );
}

/// The observability exports extend the invariant from metrics to full
/// traces: `repro --trace` and `pioqo-bench --trace` write exactly what
/// [`capture_trace`] returns, so the Chrome JSON, histogram CSV and
/// summary JSON must each be byte-identical across runs and across any
/// worker-thread count.
fn trace_cells() -> Vec<TraceCell> {
    let mut cells = default_trace_cells(11);
    for c in &mut cells {
        c.scale_down = 1024; // keep the integration test quick
    }
    cells
}

fn trace_exports(threads: usize) -> (String, String, String) {
    let bundle = pioqo::workload::trace::capture_trace(&trace_cells(), 1 << 14, threads)
        .expect("trace capture completes at test scale");
    (bundle.chrome_json, bundle.hist_csv, bundle.summary_json)
}

#[test]
fn trace_exports_are_identical_across_double_runs() {
    let a = trace_exports(1);
    let b = trace_exports(1);
    assert_eq!(a.0, b.0, "chrome trace JSON must survive a double run");
    assert_eq!(a.1, b.1, "histogram CSV must survive a double run");
    assert_eq!(a.2, b.2, "summary JSON must survive a double run");
}

#[test]
fn trace_exports_are_identical_across_thread_counts() {
    let a = trace_exports(1);
    let b = trace_exports(4);
    assert_eq!(
        a.0, b.0,
        "chrome trace JSON must not depend on the worker-thread count"
    );
    assert_eq!(
        a.1, b.1,
        "histogram CSV must not depend on the worker-thread count"
    );
    assert_eq!(
        a.2, b.2,
        "summary JSON must not depend on the worker-thread count"
    );
}

#[test]
fn traced_and_untraced_runs_report_identical_metrics() {
    // Installing a sink must observe the simulation, never perturb it:
    // the scan results with a recording RingSink and with no sink at all
    // have to match field for field (histograms included).
    let e = experiment("E33-SSD");
    let method = MethodSpec::Is {
        workers: 8,
        prefetch: 0,
    };
    let mut dev_a = e.make_device();
    let mut pool_a = e.make_pool();
    let untraced = e
        .run_with(dev_a.as_mut(), &mut pool_a, method, 0.02)
        .expect("cold scan completes at test scale");
    let mut dev_b = e.make_device();
    let mut pool_b = e.make_pool();
    let mut sink = RingSink::with_capacity(1 << 14);
    let traced = e
        .run_with_traced(dev_b.as_mut(), &mut pool_b, method, 0.02, &mut sink)
        .expect("cold scan completes at test scale");
    let a = serde_json::to_string(&untraced).expect("scan metrics serialize to JSON");
    let b = serde_json::to_string(&traced).expect("scan metrics serialize to JSON");
    assert_eq!(a, b, "tracing must be observation-only");
    assert!(sink.recorded() > 0, "the sink actually saw the run");
}

/// The metrics registry extends the invariant once more: every document
/// `repro --metrics` writes (Prometheus text, series CSV, summary JSON,
/// SLO verdicts, counter tracks) is rendered from a merged snapshot that
/// must not depend on run count or worker-thread count.
fn metrics_exports(threads: usize) -> [String; 5] {
    let cells = pioqo::workload::metrics::small_metrics_cells(11);
    let slos = pioqo::workload::metrics::default_slos();
    let bundle = pioqo::workload::metrics::capture_metrics(
        &cells,
        SimDuration::from_millis(1),
        &slos,
        threads,
    )
    .expect("metrics capture completes at test scale");
    [
        bundle.prometheus,
        bundle.series_csv,
        bundle.summary_json,
        bundle.slo_json,
        bundle.counters_json,
    ]
}

#[test]
fn metrics_exports_are_identical_across_double_runs() {
    let a = metrics_exports(1);
    let b = metrics_exports(1);
    assert_eq!(a, b, "every metrics document must survive a double run");
}

#[test]
fn metrics_exports_are_identical_across_thread_counts() {
    let a = metrics_exports(1);
    let b = metrics_exports(4);
    assert_eq!(
        a, b,
        "no metrics document may depend on the worker-thread count"
    );
}

#[test]
fn disabled_registry_is_free_and_observation_only() {
    // The always-on claim rests on the disabled path being a no-op: a
    // scan driven through `run_with_metrics` with a disabled registry
    // must leave the registry empty (no map insertions, hence no
    // allocations on the hot path) and report metrics identical to a
    // run with no registry at all.
    use pioqo::obs::MetricsRegistry;

    let e = experiment("E33-SSD");
    let method = MethodSpec::Is {
        workers: 8,
        prefetch: 0,
    };
    let mut dev_a = e.make_device();
    let mut pool_a = e.make_pool();
    let plain = e
        .run_with(dev_a.as_mut(), &mut pool_a, method, 0.02)
        .expect("cold scan completes at test scale");

    let mut dev_b = e.make_device();
    let mut pool_b = e.make_pool();
    let mut registry = MetricsRegistry::disabled();
    let metered = e
        .run_with_metrics(dev_b.as_mut(), &mut pool_b, method, 0.02, &mut registry)
        .expect("cold scan completes at test scale");

    let a = serde_json::to_string(&plain).expect("scan metrics serialize to JSON");
    let b = serde_json::to_string(&metered).expect("scan metrics serialize to JSON");
    assert_eq!(a, b, "a disabled registry must be observation-only");
    assert!(
        registry.is_empty(),
        "a disabled registry must never allocate a metric entry"
    );
    assert!(
        registry.snapshot("fig1").is_empty(),
        "the snapshot of a disabled registry is empty too"
    );
}
