//! Determinism regression test: the same seeded experiment run twice must
//! produce byte-identical serialized metrics. This is the workspace's
//! north-star invariant (lint rules D1-D4 exist to protect it), so any
//! hash-order leak, wall-clock read, or ambient entropy introduced
//! anywhere in the scan path fails here even if every unit test passes.

use pioqo::prelude::*;

fn experiment(name: &str) -> Experiment {
    Experiment::build(
        ExperimentConfig::by_name(name)
            .expect("table 1 lists this experiment")
            .scaled_down(100),
    )
}

/// Serialize every metric of one full cold-scan run, covering both scan
/// operators and a multi-worker configuration (the concurrency paths are
/// where nondeterminism likes to hide).
fn run_fingerprint(name: &str) -> String {
    let e = experiment(name);
    let methods = [
        MethodSpec::Fts { workers: 1 },
        MethodSpec::Fts { workers: 8 },
        MethodSpec::Is {
            workers: 1,
            prefetch: 0,
        },
        MethodSpec::Is {
            workers: 16,
            prefetch: 0,
        },
    ];
    let mut parts = Vec::new();
    for (i, method) in methods.iter().enumerate() {
        let metrics = e
            .run_cold(*method, 0.02 + 0.01 * i as f64)
            .expect("cold scan completes at test scale");
        parts.push(serde_json::to_string(&metrics).expect("scan metrics serialize to JSON"));
    }
    parts.join("\n")
}

#[test]
fn repeated_runs_serialize_identically_ssd() {
    let a = run_fingerprint("E33-SSD");
    let b = run_fingerprint("E33-SSD");
    assert_eq!(a, b, "same seed must reproduce byte-identical SSD metrics");
}

#[test]
fn repeated_runs_serialize_identically_hdd() {
    let a = run_fingerprint("E33-HDD");
    let b = run_fingerprint("E33-HDD");
    assert_eq!(a, b, "same seed must reproduce byte-identical HDD metrics");
}

#[test]
fn fresh_experiment_instances_agree_with_reused_ones() {
    // Rebuilding the experiment from config must not change results either:
    // all state that matters is derived from the seed, none from ambient
    // process state.
    let e = experiment("E500-SSD");
    let method = MethodSpec::Is {
        workers: 8,
        prefetch: 0,
    };
    let reused = e
        .run_cold(method, 0.03)
        .expect("cold scan completes at test scale");
    let rebuilt = experiment("E500-SSD")
        .run_cold(method, 0.03)
        .expect("cold scan completes at test scale");
    let a = serde_json::to_string(&reused).expect("scan metrics serialize to JSON");
    let b = serde_json::to_string(&rebuilt).expect("scan metrics serialize to JSON");
    assert_eq!(
        a, b,
        "experiment construction must be a pure function of its config"
    );
}
