//! Queue-depth budgeting across concurrent queries — the paper's future
//! work, built as an extension.
//!
//! §4.3: "When multiple queries are running on the system concurrently, the
//! optimizer needs to pass a lower queue depth number to the QDTT model.
//! The optimal decision ... depends on the concurrency level of the system
//! and the type of database operators in the query plans. Studying the role
//! of these factors ... is considered as a future work."
//!
//! [`QdBudget`] implements the natural policy: the device's maximum
//! beneficial queue depth is shared across the queries currently holding a
//! budget lease, so a single query gets the full depth and k concurrent
//! queries get `max(1, beneficial / k)` each. Leases are RAII-style tokens.

use pioqo_core::Qdtt;
use std::collections::BTreeMap;

/// A queue-depth budget shared by concurrent queries.
#[derive(Debug)]
pub struct QdBudget {
    /// The device's maximum beneficial queue depth (from the calibrated
    /// model, e.g. [`Qdtt::beneficial_queue_depth`]).
    total: u32,
    /// Active leases: lease id -> granted depth.
    leases: BTreeMap<u64, u32>,
    next_id: u64,
}

/// A granted queue-depth lease. Return it with [`QdBudget::release`].
///
/// Deliberately neither `Copy` nor `Clone`: `release` consumes the lease by
/// value, so a lease cannot be returned twice by accident — the admission
/// layer moves it from grant to release exactly once. (A hand-constructed
/// duplicate is still caught by a debug assertion in `release`.)
#[derive(Debug, PartialEq, Eq)]
pub struct QdLease {
    /// Lease identifier.
    pub id: u64,
    /// Queue depth this query may assume in its cost model.
    pub depth: u32,
}

impl QdBudget {
    /// A budget of `total` queue depth (the device's beneficial maximum).
    pub fn new(total: u32) -> QdBudget {
        QdBudget {
            total: total.max(1),
            leases: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Derive the budget from a calibrated model: the smallest depth within
    /// 5% of the best cost at the widest calibrated band.
    pub fn from_model(model: &Qdtt) -> QdBudget {
        let widest = *model.band_sizes().last().expect("non-empty model");
        QdBudget::new(model.beneficial_queue_depth(widest, 0.05))
    }

    /// The device's total queue-depth budget (the beneficial maximum).
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Number of queries currently holding a lease.
    pub fn active(&self) -> usize {
        self.leases.len()
    }

    /// Grant a lease for a newly admitted query: the budget is re-split
    /// over `active + 1` queries. Existing leases keep their granted depth
    /// until re-acquired (plans are costed at admission time).
    pub fn acquire(&mut self) -> QdLease {
        let share = (self.total / (self.leases.len() as u32 + 1)).max(1);
        let id = self.next_id;
        self.next_id += 1;
        self.leases.insert(id, share);
        QdLease { id, depth: share }
    }

    /// Release a lease when its query finishes. Consumes the lease; a lease
    /// released twice (only possible by reconstructing one) is a bug in the
    /// admission layer and trips a debug assertion.
    pub fn release(&mut self, lease: QdLease) {
        let granted = self.leases.remove(&lease.id);
        debug_assert!(
            granted.is_some(),
            "queue-depth lease {} released twice",
            lease.id
        );
    }

    /// The depth a hypothetical `k`-way concurrent workload would grant
    /// each query (for reporting and the ablation bench).
    pub fn share_at(&self, k: u32) -> u32 {
        (self.total / k.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_query_gets_everything() {
        let mut b = QdBudget::new(32);
        let l = b.acquire();
        assert_eq!(l.depth, 32);
        assert_eq!(b.active(), 1);
        b.release(l);
        assert_eq!(b.active(), 0);
    }

    #[test]
    fn concurrent_queries_split_the_budget() {
        let mut b = QdBudget::new(32);
        let l1 = b.acquire();
        let l2 = b.acquire();
        let l3 = b.acquire();
        assert_eq!(l1.depth, 32);
        assert_eq!(l2.depth, 16);
        assert_eq!(l3.depth, 10);
        b.release(l2);
        let l4 = b.acquire();
        assert_eq!(l4.depth, 10); // 32 / (2 existing + 1)
    }

    #[test]
    fn budget_never_grants_zero() {
        let mut b = QdBudget::new(2);
        for _ in 0..10 {
            assert!(b.acquire().depth >= 1);
        }
    }

    #[test]
    fn share_table() {
        let b = QdBudget::new(32);
        assert_eq!(b.share_at(1), 32);
        assert_eq!(b.share_at(2), 16);
        assert_eq!(b.share_at(32), 1);
        assert_eq!(b.share_at(64), 1);
        assert_eq!(b.share_at(0), 32);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "released twice")]
    fn double_release_is_detected() {
        let mut b = QdBudget::new(8);
        let lease = b.acquire();
        // `QdLease` is not `Copy`/`Clone`, so the only way to release twice
        // is to forge a duplicate — which the debug assertion catches.
        let forged = QdLease {
            id: lease.id,
            depth: lease.depth,
        };
        b.release(lease);
        b.release(forged);
    }

    #[test]
    fn from_model_uses_beneficial_depth() {
        // SSD-like: improves through 32 -> budget 32.
        let ssd = Qdtt::new(
            vec![1, 1000],
            vec![1, 2, 4, 8, 16, 32],
            vec![
                100.0, 100.0, 50.0, 50.0, 25.0, 25.0, 12.0, 12.0, 6.0, 6.0, 3.0, 3.0,
            ],
        );
        assert_eq!(QdBudget::from_model(&ssd).total, 32);
        // HDD-like: flat -> budget 1.
        let hdd = Qdtt::new(
            vec![1, 1000],
            vec![1, 2],
            vec![100.0, 9000.0, 100.0, 9000.0],
        );
        assert_eq!(QdBudget::from_model(&hdd).total, 1);
    }
}
