//! # pioqo-optimizer — parallel-I/O-aware access-path selection
//!
//! The consumer of the QDTT model: a cost-based optimizer choosing among
//! (parallel) full table scans and (parallel) index scans for the paper's
//! range-predicate query.
//!
//! * [`card`] — Yao's formula and Mackert–Lohman buffered-fetch estimation;
//! * [`TableStats`] — the catalog statistics the optimizer consumes,
//!   including the cached-page counts of §4.3;
//! * [`IoCostModel`] — the pluggable I/O model: [`DttCost`] gives the
//!   paper's *old* (queue-depth-blind) optimizer, [`QdttCost`] the *new*
//!   one; nothing else differs;
//! * [`Optimizer`] — plan enumeration over `{FTS, IS} × degree`;
//! * [`QdBudget`] — the future-work extension budgeting queue depth across
//!   concurrent queries;
//! * [`QdttAdmission`] — the admission planner plugging that budget into
//!   the executor's concurrent multi-query engine: each admitted query is
//!   re-optimized with its queue-depth lease as the cap;
//! * [`join`] — QDTT-costed join planning: index-nested-loop (random
//!   probes, wants deep queues) vs. hybrid hash (sequential partitioned
//!   I/O), chosen per device and per queue-depth lease.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod card;
pub mod concurrency;
pub mod cost;
pub mod join;
pub mod optimizer;
pub mod stats;

pub use admission::{plan_to_spec, AdmissionDecision, JoinDecision, QdttAdmission};
pub use concurrency::{QdBudget, QdLease};
pub use cost::{DttCost, EstCpuCosts, IoCostModel, QdttCost};
pub use join::{
    choose_join, cost_hash, cost_inl, enumerate_joins, join_plan_to_spec, JoinMethod, JoinPlan,
    JoinStats,
};
pub use optimizer::{AccessMethod, Optimizer, OptimizerConfig, Plan};
pub use stats::{IndexStats, TableStats};
