//! Access-path selection.
//!
//! The optimizer enumerates `{table scan, index scan} × degree ∈
//! {1, 2, 4, 8, 16, 32}` (plus the sorted-index-scan extension when
//! enabled), costs each plan with the configured [`IoCostModel`], and
//! picks the cheapest. Swapping [`DttCost`](crate::cost::DttCost) for
//! [`QdttCost`](crate::cost::QdttCost) is the entire difference between
//! the paper's old and new optimizers (§4.3).
//!
//! Estimated runtime of a plan: `max(est_io, est_cpu / capacity(degree))
//! plus degree × startup` for parallel plans — scans overlap CPU with I/O,
//! so the slower resource bounds the runtime, and parallelism pays a
//! per-worker coordination overhead.

use crate::card::{leaf_pages_touched, mackert_lohman_fetches, yao_pages};
use crate::cost::{EstCpuCosts, IoCostModel};
use crate::stats::TableStats;
use pioqo_exec::CpuConfig;
use serde::{Deserialize, Serialize};

/// The access methods the optimizer chooses among.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMethod {
    /// (Parallel) full table scan.
    TableScan,
    /// (Parallel) index scan on `C2`.
    IndexScan,
    /// Sorted index scan (extension; §3.1 notes SQL Anywhere lacks it).
    SortedIndexScan,
}

impl std::fmt::Display for AccessMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessMethod::TableScan => write!(f, "FTS"),
            AccessMethod::IndexScan => write!(f, "IS"),
            AccessMethod::SortedIndexScan => write!(f, "SortedIS"),
        }
    }
}

/// A costed plan candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Plan {
    /// Access method.
    pub method: AccessMethod,
    /// Parallel degree (1 = serial).
    pub degree: u32,
    /// Queue depth passed to the I/O cost model.
    pub queue_depth: u32,
    /// Band size passed to the I/O cost model (pages).
    pub band: u64,
    /// Estimated page fetches (I/O operations that miss the pool).
    pub est_page_fetches: f64,
    /// Estimated I/O time, µs.
    pub est_io_us: f64,
    /// Estimated (parallelism-adjusted) CPU time, µs.
    pub est_cpu_us: f64,
    /// Estimated total runtime, µs — what the optimizer minimizes.
    pub est_total_us: f64,
}

impl Plan {
    /// Short human-readable plan label ("FTS", "PIS8", "SortedIS"),
    /// matching the executor-side `PlanSpec::label` family.
    pub fn label(&self) -> String {
        match (self.method, self.degree) {
            (AccessMethod::TableScan, 1) => "FTS".to_string(),
            (AccessMethod::TableScan, d) => format!("PFTS{d}"),
            (AccessMethod::IndexScan, 1) => "IS".to_string(),
            (AccessMethod::IndexScan, d) => format!("PIS{d}"),
            (AccessMethod::SortedIndexScan, _) => "SortedIS".to_string(),
        }
    }
}

/// Optimizer knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Parallel degrees to consider (always includes 1). SQL Anywhere
    /// considers serial vs. the maximum allowable degree (32 in §4.3 —
    /// "in all three experiments a parallel plan with parallel degree 32
    /// is selected"); intermediate degrees can be added for ablations.
    pub degrees: Vec<u32>,
    /// Consider the sorted-index-scan extension.
    pub consider_sorted_is: bool,
    /// Per-worker index-scan prefetch depth assumed by the cost model
    /// (multiplies the queue depth passed to QDTT; the paper's §4.3
    /// experiments pass the parallel degree alone, i.e. depth 0).
    pub is_prefetch_depth: u32,
    /// Cap on the queue depth passed to the model ("the maximum beneficial
    /// queue depth, here 32" — §4.3).
    pub max_queue_depth: u32,
    /// CPU geometry used to discount parallel CPU work.
    pub cpu: CpuConfig,
    /// The optimizer's CPU estimate constants.
    pub est: EstCpuCosts,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            degrees: vec![1, 32],
            consider_sorted_is: false,
            is_prefetch_depth: 0,
            max_queue_depth: 32,
            cpu: CpuConfig::paper_xeon(),
            est: EstCpuCosts::default(),
        }
    }
}

impl OptimizerConfig {
    /// The configuration the admission layer uses under concurrency: all
    /// intermediate degrees plus the sorted-IS extension, and a per-worker
    /// prefetch assumption, so a shrinking queue-depth lease has degrees to
    /// step down through instead of a binary serial/32 choice.
    pub fn fine_grained() -> OptimizerConfig {
        OptimizerConfig {
            degrees: vec![1, 2, 4, 8, 16, 32],
            consider_sorted_is: true,
            is_prefetch_depth: 4,
            ..OptimizerConfig::default()
        }
    }
}

/// The access-path optimizer. Generic over the I/O cost model — the same
/// code is the paper's old optimizer with [`DttCost`](crate::cost::DttCost)
/// and the new one with [`QdttCost`](crate::cost::QdttCost).
pub struct Optimizer<'m> {
    model: &'m dyn IoCostModel,
    cfg: std::borrow::Cow<'m, OptimizerConfig>,
}

impl<'m> Optimizer<'m> {
    /// Build an optimizer over `model`, taking ownership of `cfg`.
    pub fn new(model: &'m dyn IoCostModel, cfg: OptimizerConfig) -> Optimizer<'m> {
        assert!(cfg.degrees.contains(&1), "serial plans must be considered");
        Optimizer {
            model,
            cfg: std::borrow::Cow::Owned(cfg),
        }
    }

    /// Build an optimizer over `model` borrowing `cfg` — the per-admission
    /// hot path re-costs under a shrunken queue-depth cap without cloning
    /// the configuration (and its degree list) every time.
    pub fn with_cfg(model: &'m dyn IoCostModel, cfg: &'m OptimizerConfig) -> Optimizer<'m> {
        assert!(cfg.degrees.contains(&1), "serial plans must be considered");
        Optimizer {
            model,
            cfg: std::borrow::Cow::Borrowed(cfg),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.cfg
    }

    /// The underlying I/O model's name ("DTT" / "QDTT").
    pub fn model_name(&self) -> &'static str {
        self.model.model_name()
    }

    /// Enumerate every candidate plan for the query
    /// `SELECT MAX(C1) FROM t WHERE C2 BETWEEN …` with selectivity `sel`.
    pub fn enumerate(&self, stats: &TableStats, sel: f64) -> Vec<Plan> {
        let sel = sel.clamp(0.0, 1.0);
        let mut plans = Vec::new();
        for &d in &self.cfg.degrees {
            plans.push(self.cost_fts(stats, d));
            plans.push(self.cost_is(stats, sel, d));
        }
        if self.cfg.consider_sorted_is {
            plans.push(self.cost_sorted_is(stats, sel));
        }
        plans
    }

    /// Pick the cheapest plan (ties break toward lower degree, which the
    /// enumeration order guarantees).
    pub fn choose(&self, stats: &TableStats, sel: f64) -> Plan {
        let mut scratch = Vec::new();
        self.choose_into(stats, sel, &mut scratch)
    }

    /// [`choose`](Self::choose) writing candidates into a caller-owned
    /// scratch vector, so repeated admissions reuse one allocation.
    pub fn choose_into(&self, stats: &TableStats, sel: f64, scratch: &mut Vec<Plan>) -> Plan {
        let sel = sel.clamp(0.0, 1.0);
        scratch.clear();
        for &d in &self.cfg.degrees {
            scratch.push(self.cost_fts(stats, d));
            scratch.push(self.cost_is(stats, sel, d));
        }
        if self.cfg.consider_sorted_is {
            scratch.push(self.cost_sorted_is(stats, sel));
        }
        scratch
            .iter()
            .min_by(|a, b| {
                a.est_total_us
                    .partial_cmp(&b.est_total_us)
                    .expect("finite costs")
            })
            .expect("at least one plan")
            .clone()
    }

    /// Cost one specific `(method, degree)` candidate — used by the
    /// model-accuracy harness to compare estimates against simulated
    /// runtimes plan-by-plan.
    pub fn cost_access(
        &self,
        stats: &TableStats,
        sel: f64,
        method: AccessMethod,
        degree: u32,
    ) -> Plan {
        match method {
            AccessMethod::TableScan => self.cost_fts(stats, degree),
            AccessMethod::IndexScan => self.cost_is(stats, sel.clamp(0.0, 1.0), degree),
            AccessMethod::SortedIndexScan => self.cost_sorted_is(stats, sel.clamp(0.0, 1.0)),
        }
    }

    fn parallel_overhead(&self, degree: u32) -> f64 {
        if degree > 1 {
            degree as f64 * self.cfg.est.startup_us
        } else {
            0.0
        }
    }

    fn combine(&self, io_us: f64, cpu_us: f64, degree: u32) -> f64 {
        let cap = self.cfg.cpu.capacity(degree as usize);
        io_us.max(cpu_us / cap) + self.parallel_overhead(degree)
    }

    /// Full table scan with `degree` workers: sequential I/O over the
    /// table extent; pages already cached are skipped.
    fn cost_fts(&self, stats: &TableStats, degree: u32) -> Plan {
        let qd = degree.min(self.cfg.max_queue_depth);
        let fetches = (stats.pages - stats.cached_pages) as f64;
        let io = fetches * self.model.page_cost_us(1, qd);
        let cpu = stats.pages as f64 * self.cfg.est.page_us
            + stats.rows as f64 * self.cfg.est.row_scan_us;
        Plan {
            method: AccessMethod::TableScan,
            degree,
            queue_depth: qd,
            band: 1,
            est_page_fetches: fetches,
            est_io_us: io,
            est_cpu_us: cpu,
            est_total_us: self.combine(io, cpu, degree),
        }
    }

    /// Index scan with `degree` workers: random I/O over the table extent,
    /// Yao distinct pages, Mackert–Lohman refetch through the buffer pool.
    fn cost_is(&self, stats: &TableStats, sel: f64, degree: u32) -> Plan {
        let k = (sel * stats.rows as f64).ceil() as u64;
        let qd = (degree * self.cfg.is_prefetch_depth.max(1)).min(self.cfg.max_queue_depth);
        let band = stats.extent.pages;

        // Data-page fetches: distinct pages by Yao, inflated by LRU
        // refetches when the buffer is smaller than the touched set,
        // discounted by the already-cached fraction.
        let distinct = yao_pages(stats.pages, stats.rows, k);
        let fetches_lru = mackert_lohman_fetches(stats.pages, k, stats.buffer_frames);
        let data_fetches = distinct.max(fetches_lru) * (1.0 - stats.cached_fraction());

        // Index I/O: root path + qualifying leaves.
        let leaves = leaf_pages_touched(k, stats.index.leaf_fanout) as f64;
        let index_fetches = (leaves + stats.index.height.saturating_sub(1) as f64).max(1.0);

        let io = data_fetches * self.model.page_cost_us(band, qd)
            + index_fetches * self.model.page_cost_us(stats.index.extent.pages.max(1), qd);
        let cpu = k as f64 * self.cfg.est.row_lookup_us + leaves * self.cfg.est.leaf_us;
        Plan {
            method: AccessMethod::IndexScan,
            degree,
            queue_depth: qd,
            band,
            est_page_fetches: data_fetches + index_fetches,
            est_io_us: io,
            est_cpu_us: cpu,
            est_total_us: self.combine(io, cpu, degree),
        }
    }

    /// Sorted index scan (extension): each distinct page fetched once, deep
    /// prefetch ring, plus the rid sort.
    fn cost_sorted_is(&self, stats: &TableStats, sel: f64) -> Plan {
        let k = (sel * stats.rows as f64).ceil() as u64;
        let qd = self.cfg.max_queue_depth;
        let band = stats.extent.pages;
        let distinct = yao_pages(stats.pages, stats.rows, k) * (1.0 - stats.cached_fraction());
        let leaves = leaf_pages_touched(k, stats.index.leaf_fanout) as f64;
        let io = distinct * self.model.page_cost_us(band, qd)
            + leaves * self.model.page_cost_us(stats.index.extent.pages.max(1), qd);
        let k_f = k as f64;
        let sort_cpu = if k > 1 { k_f * k_f.log2() * 0.02 } else { 0.0 };
        let cpu = k_f * self.cfg.est.row_lookup_us + leaves * self.cfg.est.leaf_us + sort_cpu;
        Plan {
            method: AccessMethod::SortedIndexScan,
            degree: 1,
            queue_depth: qd,
            band,
            est_page_fetches: distinct + leaves,
            est_io_us: io,
            est_cpu_us: cpu,
            est_total_us: self.combine(io, cpu, 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{DttCost, QdttCost};
    use pioqo_core::{CalibrationConfig, Calibrator, Method};
    use pioqo_device::presets::{consumer_pcie_ssd, hdd_7200};
    use pioqo_storage::Extent;

    fn stats(pages: u64, rpp: u32, buffer: u64) -> TableStats {
        TableStats {
            pages,
            rows: pages * rpp as u64,
            rows_per_page: rpp,
            page_size: 4096,
            extent: Extent { base: 0, pages },
            cached_pages: 0,
            buffer_frames: buffer,
            index: crate::stats::IndexStats {
                leaves: (pages * rpp as u64).div_ceil(338),
                height: 3,
                leaf_fanout: 338,
                extent: Extent {
                    base: pages,
                    pages: (pages * rpp as u64).div_ceil(338) + 4,
                },
                cached_pages: 0,
            },
        }
    }

    fn models(ssd: bool, capacity: u64) -> (pioqo_core::Dtt, pioqo_core::Qdtt) {
        let cfg = CalibrationConfig {
            band_sizes: vec![1, 64, 4096, capacity],
            queue_depths: vec![1, 2, 4, 8, 16, 32],
            max_reads: 800,
            method: Method::ActiveWait,
            repetitions: 1,
            early_stop_pct: None,
            stop_fill_factor: 1.02,
            seed: 7,
        };
        let cal = Calibrator::new(cfg);
        if ssd {
            let mut dev = consumer_pcie_ssd(capacity, 3);
            let (q, _) = cal.calibrate_qdtt(&mut dev);
            (q.to_dtt(), q)
        } else {
            let mut dev = hdd_7200(capacity, 3);
            let (q, _) = cal.calibrate_qdtt(&mut dev);
            (q.to_dtt(), q)
        }
    }

    #[test]
    fn dtt_optimizer_prefers_serial_plans() {
        let (dtt, _) = models(true, 1 << 20);
        let model = DttCost(dtt);
        let opt = Optimizer::new(&model, OptimizerConfig::default());
        let st = stats(100_000, 33, 16_384);
        for sel in [0.001, 0.01, 0.2, 0.9] {
            let plan = opt.choose(&st, sel);
            assert_eq!(plan.degree, 1, "old optimizer must stay serial (sel={sel})");
        }
    }

    #[test]
    fn qdtt_optimizer_parallelizes_on_ssd() {
        let (_, qdtt) = models(true, 1 << 20);
        let model = QdttCost(qdtt);
        let opt = Optimizer::new(&model, OptimizerConfig::default());
        let st = stats(100_000, 33, 16_384);
        let low = opt.choose(&st, 0.001);
        assert_eq!(low.method, AccessMethod::IndexScan);
        assert!(low.degree >= 16, "PIS with high degree expected: {low:?}");
        let high = opt.choose(&st, 0.9);
        assert_eq!(high.method, AccessMethod::TableScan);
        assert!(high.degree >= 8, "PFTS expected at high selectivity");
    }

    #[test]
    fn break_even_shifts_right_under_qdtt_on_ssd() {
        // Table 2's central claim: the IS/FTS crossover moves to much
        // higher selectivity when the optimizer knows about parallel I/O.
        let (dtt, qdtt) = models(true, 1 << 20);
        let old_model = DttCost(dtt);
        let new_model = QdttCost(qdtt);
        let old = Optimizer::new(&old_model, OptimizerConfig::default());
        let new = Optimizer::new(&new_model, OptimizerConfig::default());
        let st = stats(100_000, 33, 16_384);
        let crossover = |opt: &Optimizer<'_>| {
            let mut lo = 0.0f64;
            let mut hi = 1.0f64;
            for _ in 0..40 {
                let mid = (lo + hi) / 2.0;
                match opt.choose(&st, mid).method {
                    AccessMethod::IndexScan => lo = mid,
                    _ => hi = mid,
                }
            }
            (lo + hi) / 2.0
        };
        let np = crossover(&old);
        let p = crossover(&new);
        assert!(
            p > np * 1.5,
            "parallel break-even must sit well beyond the serial one: {np} vs {p}"
        );
    }

    #[test]
    fn hdd_break_even_shift_is_far_smaller_than_ssd() {
        // §4.2: on a single spindle the QDTT degenerates to (almost) the
        // DTT; Table 2: the HDD break-even shift (0.02% -> 0.05%) is tiny
        // next to the SSD one (0.4% -> 2.1%).
        let st = stats(100_000, 33, 16_384);
        let crossover = |opt: &Optimizer<'_>| {
            let mut lo = 0.0f64;
            let mut hi = 1.0f64;
            for _ in 0..40 {
                let mid = (lo + hi) / 2.0;
                match opt.choose(&st, mid).method {
                    AccessMethod::IndexScan => lo = mid,
                    _ => hi = mid,
                }
            }
            (lo + hi) / 2.0
        };
        let shift = |ssd: bool| {
            let (dtt, qdtt) = models(ssd, 1 << 20);
            let old_model = DttCost(dtt);
            let new_model = QdttCost(qdtt);
            let old = Optimizer::new(&old_model, OptimizerConfig::default());
            let new = Optimizer::new(&new_model, OptimizerConfig::default());
            crossover(&new) / crossover(&old)
        };
        let hdd_shift = shift(false);
        let ssd_shift = shift(true);
        assert!(hdd_shift < 5.0, "HDD shift should stay modest: {hdd_shift}");
        assert!(
            ssd_shift > hdd_shift,
            "SSD shift ({ssd_shift}) must exceed HDD shift ({hdd_shift})"
        );
    }

    #[test]
    fn zero_selectivity_picks_index_scan() {
        let (_, qdtt) = models(true, 1 << 20);
        let model = QdttCost(qdtt);
        let opt = Optimizer::new(&model, OptimizerConfig::default());
        let plan = opt.choose(&stats(100_000, 33, 16_384), 0.0);
        assert_eq!(plan.method, AccessMethod::IndexScan);
    }

    #[test]
    fn cached_table_discounts_io() {
        let (_, qdtt) = models(true, 1 << 20);
        let model = QdttCost(qdtt);
        let opt = Optimizer::new(&model, OptimizerConfig::default());
        let cold = stats(100_000, 33, 200_000);
        let mut warm = cold.clone();
        warm.cached_pages = 100_000; // fully cached
        let p_cold = opt.choose(&cold, 0.5);
        let p_warm = opt.choose(&warm, 0.5);
        assert!(p_warm.est_io_us < p_cold.est_io_us * 0.2);
    }

    #[test]
    fn sorted_is_wins_midrange_when_enabled() {
        let (_, qdtt) = models(true, 1 << 20);
        let model = QdttCost(qdtt);
        let cfg = OptimizerConfig {
            consider_sorted_is: true,
            ..OptimizerConfig::default()
        };
        let opt = Optimizer::new(&model, cfg);
        // Small buffer: plain IS refetches heavily in the midrange.
        let st = stats(100_000, 33, 2_000);
        let methods: Vec<_> = [0.02, 0.05, 0.1]
            .iter()
            .map(|&s| opt.choose(&st, s).method)
            .collect();
        assert!(
            methods.contains(&AccessMethod::SortedIndexScan),
            "sorted IS should win somewhere in the midrange: {methods:?}"
        );
    }

    #[test]
    fn enumerate_covers_all_degrees() {
        let (_, qdtt) = models(true, 1 << 20);
        let model = QdttCost(qdtt);
        let opt = Optimizer::new(&model, OptimizerConfig::default());
        let plans = opt.enumerate(&stats(1000, 33, 100), 0.1);
        assert_eq!(plans.len(), 4); // {1, 32} x {FTS, IS}
        assert!(plans.iter().all(|p| p.est_total_us.is_finite()));
    }
}
