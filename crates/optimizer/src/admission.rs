//! QDTT-aware admission control: the bridge between the optimizer and the
//! concurrent multi-query engine.
//!
//! §4.3's future-work paragraph says the optimizer "needs to pass a lower
//! queue depth number to the QDTT model" when queries run concurrently.
//! [`QdttAdmission`] operationalizes that: it implements the executor's
//! [`AdmissionPlanner`] hook, and on every admission it
//!
//! 1. takes a queue-depth lease from the shared [`QdBudget`] (the device's
//!    beneficial depth split over the active queries),
//! 2. gathers live [`TableStats`] — including what is *currently cached*,
//!    which under concurrency reflects the other sessions' footprints,
//! 3. re-runs plan selection with `max_queue_depth` capped at the lease, and
//! 4. lowers the winning [`Plan`] to an executable [`PlanSpec`] whose
//!    prefetch depths respect the lease.
//!
//! The lease is returned when the engine reports the query complete, so a
//! lull re-grants the full depth. Every decision is journaled in an
//! [`AdmissionDecision`] — the experiment harness reads that log to show
//! plan choice and parallel degree shifting with the concurrency level.

use crate::concurrency::{QdBudget, QdLease};
use crate::cost::QdttCost;
use crate::join::{choose_join, join_plan_to_spec, JoinMethod, JoinStats};
use crate::optimizer::{AccessMethod, Optimizer, OptimizerConfig, Plan};
use crate::stats::TableStats;
use pioqo_bufpool::BufferPool;
use pioqo_core::Qdtt;
use pioqo_exec::{
    AdmissionPlanner, FtsConfig, IsConfig, PlanSpec, QueryAdmission, SharedChoice, SortedIsConfig,
};
use pioqo_storage::{BTreeIndex, HeapTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Lower a costed [`Plan`] to the executor's [`PlanSpec`].
///
/// The operator configuration is sized from the plan's costing assumptions:
/// an index scan gets the per-worker prefetch depth the cost model assumed,
/// scaled down when a queue-depth cap clipped the plan's depth, and a
/// sorted index scan sizes its fetch ring to the plan's queue depth.
pub fn plan_to_spec(plan: &Plan, cfg: &OptimizerConfig) -> PlanSpec {
    match plan.method {
        AccessMethod::TableScan => PlanSpec::Fts(FtsConfig {
            workers: plan.degree,
            ..FtsConfig::default()
        }),
        AccessMethod::IndexScan => {
            let per_worker = if cfg.is_prefetch_depth == 0 {
                0
            } else {
                // `plan.queue_depth = (degree * pf).min(cap)`: recover the
                // per-worker share so the executor's outstanding I/O stays
                // within what the plan was costed (and leased) for.
                cfg.is_prefetch_depth
                    .min((plan.queue_depth / plan.degree.max(1)).max(1))
            };
            PlanSpec::Is(IsConfig {
                workers: plan.degree,
                prefetch_depth: per_worker,
                ..IsConfig::default()
            })
        }
        AccessMethod::SortedIndexScan => PlanSpec::SortedIs(SortedIsConfig {
            prefetch_depth: plan.queue_depth.max(1),
            leaf_prefetch: plan.queue_depth.clamp(1, 8),
            ..SortedIsConfig::default()
        }),
    }
}

/// One admission decision, journaled for the concurrency experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmissionDecision {
    /// The admitted session.
    pub session: u32,
    /// The session-local query index.
    pub query_index: u32,
    /// Queries of other sessions running at admission time.
    pub active: u32,
    /// Queue depth the lease granted this query.
    pub lease_depth: u32,
    /// The query's selectivity.
    pub selectivity: f64,
    /// The chosen access method.
    pub method: AccessMethod,
    /// The chosen parallel degree.
    pub degree: u32,
    /// Queue depth the winning plan was costed with (≤ `lease_depth`).
    pub queue_depth: u32,
    /// Executable plan label ("PIS8+pf4", ...).
    pub plan: String,
    /// The query attached to the shared-scan cursor instead of taking a
    /// lease of its own (`lease_depth`/`queue_depth` are 0 in that case:
    /// the cursor's lease, taken once at cursor start, covers it).
    pub attached: bool,
}

/// One join admission decision, journaled separately from the scan
/// decisions (a join chooses among join operators, not access paths).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinDecision {
    /// The admitted session.
    pub session: u32,
    /// Queries of other sessions running at admission time.
    pub active: u32,
    /// Queue depth the lease granted this query.
    pub lease_depth: u32,
    /// The query's outer selectivity.
    pub selectivity: f64,
    /// The chosen join operator.
    pub method: JoinMethod,
    /// Queue depth the winning plan was costed with (≤ `lease_depth`).
    pub queue_depth: u32,
    /// Hash partitions (1 for INL).
    pub partitions: u32,
    /// Executable plan label ("INL+qd8", "HHJ8").
    pub plan: String,
}

/// The QDTT-aware admission planner. See the module docs.
pub struct QdttAdmission<'a> {
    table: &'a HeapTable,
    index: &'a BTreeIndex,
    /// When set, every admission is a join against this inner table and
    /// plan choice runs through [`choose_join`] instead of the scan
    /// optimizer.
    join: Option<(&'a HeapTable, &'a BTreeIndex)>,
    join_decisions: Vec<JoinDecision>,
    model: QdttCost,
    cfg: OptimizerConfig,
    /// Per-admission working copy of `cfg` with `max_queue_depth` capped at
    /// the live lease — cloned once at construction, mutated in place on
    /// every admission instead of cloning the degree list per query.
    run_cfg: OptimizerConfig,
    /// Reused candidate buffer for `Optimizer::choose_into`.
    plan_scratch: Vec<Plan>,
    budget: QdBudget,
    leases: BTreeMap<u32, QdLease>,
    /// The lease held on behalf of the shared-scan cursor, while one is
    /// streaming. Charged once no matter how many consumers attach.
    cursor: Option<QdLease>,
    /// Journal of cursor-lease depths, one entry per cursor start — the
    /// artifact the tests use to assert sharing takes exactly one lease.
    cursor_leases: Vec<u32>,
    /// The lease held on behalf of background writeback (checkpoint
    /// flushing), while it is active. It contends exactly like a query:
    /// holding it shrinks every concurrent scan's share.
    background: Option<QdLease>,
    decisions: Vec<AdmissionDecision>,
}

impl<'a> QdttAdmission<'a> {
    /// An admission planner over the calibrated `model`, choosing plans for
    /// queries against `table`/`index` with `cfg` as the *uncontended*
    /// configuration (its `max_queue_depth` is the single-query cap; leases
    /// can only lower it). The queue-depth budget is derived from the
    /// model's beneficial depth.
    pub fn new(
        table: &'a HeapTable,
        index: &'a BTreeIndex,
        model: Qdtt,
        cfg: OptimizerConfig,
    ) -> QdttAdmission<'a> {
        let budget = QdBudget::from_model(&model);
        let run_cfg = cfg.clone();
        QdttAdmission {
            table,
            index,
            join: None,
            join_decisions: Vec::new(),
            model: QdttCost(model),
            cfg,
            run_cfg,
            plan_scratch: Vec::new(),
            budget,
            leases: BTreeMap::new(),
            cursor: None,
            cursor_leases: Vec::new(),
            background: None,
            decisions: Vec::new(),
        }
    }

    /// Turn the planner into a join planner: every admitted query joins
    /// the base table (as the outer side) against `right` through
    /// `right_index`, and admission picks INL vs. hybrid hash from the
    /// QDTT costs under the live queue-depth lease.
    pub fn with_join(
        mut self,
        right: &'a HeapTable,
        right_index: &'a BTreeIndex,
    ) -> QdttAdmission<'a> {
        self.join = Some((right, right_index));
        self
    }

    /// The join admission journal, in admission order (empty unless
    /// [`with_join`](Self::with_join) was used).
    pub fn join_decisions(&self) -> &[JoinDecision] {
        &self.join_decisions
    }

    /// True while the planner holds a lease for background writeback.
    pub fn background_lease_held(&self) -> bool {
        self.background.is_some()
    }

    /// The shared queue-depth budget (for reporting).
    pub fn budget(&self) -> &QdBudget {
        &self.budget
    }

    /// The admission journal so far, in admission order.
    pub fn decisions(&self) -> &[AdmissionDecision] {
        &self.decisions
    }

    /// Queue-depth lease granted at each shared-cursor start, in order.
    /// Its length equals the number of cursor starts: the whole point of
    /// the shared scan is that this list stays short while the number of
    /// attached consumers grows without bound.
    pub fn cursor_leases(&self) -> &[u32] {
        &self.cursor_leases
    }

    /// Consume the planner, keeping its journal.
    pub fn into_decisions(self) -> Vec<AdmissionDecision> {
        self.decisions
    }
}

impl AdmissionPlanner for QdttAdmission<'_> {
    fn admit(&mut self, q: &QueryAdmission, pool: &BufferPool) -> PlanSpec {
        if let Some((right, right_index)) = self.join {
            let lease = self.budget.acquire();
            let left = TableStats::gather(self.table, self.index, pool);
            let right_stats = TableStats::gather(right, right_index, pool);
            let js = JoinStats {
                left: &left,
                right: &right_stats,
                key_cardinality: (right.spec().c2_max as u64 + 1).min(right.spec().rows),
            };
            let max_qd = self.cfg.max_queue_depth.min(lease.depth);
            let plan = choose_join(&self.model, &self.cfg.est, &js, q.selectivity, max_qd);
            let spec = join_plan_to_spec(&plan);
            self.join_decisions.push(JoinDecision {
                session: q.session,
                active: q.active,
                lease_depth: lease.depth,
                selectivity: q.selectivity,
                method: plan.method,
                queue_depth: plan.queue_depth,
                partitions: plan.partitions,
                plan: spec.label(),
            });
            if let Some(stale) = self.leases.insert(q.session, lease) {
                debug_assert!(false, "session {} admitted twice", q.session);
                self.budget.release(stale);
            }
            return spec;
        }
        let lease = self.budget.acquire();
        let stats = TableStats::gather(self.table, self.index, pool);
        self.run_cfg.max_queue_depth = self.cfg.max_queue_depth.min(lease.depth);
        let mut scratch = std::mem::take(&mut self.plan_scratch);
        let plan = Optimizer::with_cfg(&self.model, &self.run_cfg).choose_into(
            &stats,
            q.selectivity,
            &mut scratch,
        );
        self.plan_scratch = scratch;
        let spec = plan_to_spec(&plan, &self.run_cfg);
        self.decisions.push(AdmissionDecision {
            session: q.session,
            query_index: q.query_index,
            active: q.active,
            lease_depth: lease.depth,
            selectivity: q.selectivity,
            method: plan.method,
            degree: plan.degree,
            queue_depth: plan.queue_depth,
            plan: spec.label(),
            attached: false,
        });
        // The engine pairs every admit with one complete, so a session can
        // never hold two leases; release defensively if it somehow does.
        if let Some(stale) = self.leases.insert(q.session, lease) {
            debug_assert!(false, "session {} admitted twice", q.session);
            self.budget.release(stale);
        }
        spec
    }

    fn admit_shared(
        &mut self,
        q: &QueryAdmission,
        pool: &BufferPool,
        cursor_active: bool,
    ) -> SharedChoice {
        let stats = TableStats::gather(self.table, self.index, pool);
        // Marginal cost of riding the shared cursor: pure CPU (one pass
        // over every page and row). Its device stream is already paid for
        // by the cursor's own lease, so no I/O term and no new lease.
        let attached_cpu = stats.pages as f64 * self.cfg.est.page_us
            + stats.rows as f64 * self.cfg.est.row_scan_us;
        // Cost the best solo plan under the lease this query WOULD get if
        // it were admitted on its own (hypothetical: no lease is taken).
        let depth = self.budget.share_at(self.budget.active() as u32 + 1);
        self.run_cfg.max_queue_depth = self.cfg.max_queue_depth.min(depth);
        let mut scratch = std::mem::take(&mut self.plan_scratch);
        let solo = Optimizer::with_cfg(&self.model, &self.run_cfg).choose_into(
            &stats,
            q.selectivity,
            &mut scratch,
        );
        self.plan_scratch = scratch;
        // With a cursor already streaming, attach whenever riding it is
        // cheaper than the best dedicated plan. With no cursor, attach
        // exactly when a table scan would win anyway — the first consumer
        // starts the cursor and pays its lease.
        let attach = if cursor_active {
            attached_cpu < solo.est_total_us
        } else {
            solo.method == AccessMethod::TableScan
        };
        if attach {
            self.decisions.push(AdmissionDecision {
                session: q.session,
                query_index: q.query_index,
                active: q.active,
                lease_depth: 0,
                selectivity: q.selectivity,
                method: AccessMethod::TableScan,
                degree: 1,
                queue_depth: 0,
                plan: "FTS+shared".to_string(),
                attached: true,
            });
            SharedChoice::Attach
        } else {
            SharedChoice::Solo(self.admit(q, pool))
        }
    }

    fn cursor_start(&mut self, pool: &BufferPool) -> u32 {
        let _ = pool;
        let lease = self.budget.acquire();
        let depth = lease.depth;
        self.cursor_leases.push(depth);
        if let Some(stale) = self.cursor.replace(lease) {
            debug_assert!(false, "shared cursor started twice");
            self.budget.release(stale);
        }
        depth
    }

    fn cursor_stop(&mut self) {
        if let Some(lease) = self.cursor.take() {
            self.budget.release(lease);
        }
    }

    fn complete(&mut self, session: u32) {
        if let Some(lease) = self.leases.remove(&session) {
            self.budget.release(lease);
        }
    }

    fn background_acquire(&mut self) {
        // Writeback became active: take one lease so subsequent query
        // admissions see a smaller share. Idempotent — repeated activity
        // transitions while a lease is held keep the same lease.
        if self.background.is_none() {
            self.background = Some(self.budget.acquire());
        }
    }

    fn background_release(&mut self) {
        if let Some(lease) = self.background.take() {
            self.budget.release(lease);
        }
    }

    fn depth_gauges(&self) -> (u32, u32) {
        (self.budget.active() as u32, self.budget.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_storage::{TableSpec, Tablespace};

    fn fixture() -> (HeapTable, BTreeIndex) {
        let spec = TableSpec::paper_table(33, 100_000, 5);
        let mut ts = Tablespace::new(4 * spec.n_pages() + 2000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build(
            "c2_idx",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("fits");
        (table, index)
    }

    /// SSD-like synthetic QDTT: per-page cost halves with every doubling of
    /// queue depth, at every band size.
    fn ssd_model() -> Qdtt {
        Qdtt::new(
            vec![1, 1 << 20],
            vec![1, 2, 4, 8, 16, 32],
            vec![
                100.0, 100.0, 50.0, 50.0, 25.0, 25.0, 12.0, 12.0, 6.0, 6.0, 3.0, 3.0,
            ],
        )
    }

    fn admission(session: u32, active: u32, sel: f64) -> QueryAdmission {
        QueryAdmission {
            session,
            query_index: 0,
            active,
            selectivity: sel,
            low: 0,
            high: 0,
        }
    }

    #[test]
    fn leases_shrink_and_degree_steps_down_under_concurrency() {
        let (table, index) = fixture();
        let pool = BufferPool::new(4096);
        // Index-scan-only configuration so the lease effect shows up in the
        // parallel degree (with sorted IS enabled, a serial deep-ring plan
        // can dominate at every lease level).
        let cfg = OptimizerConfig {
            consider_sorted_is: false,
            ..OptimizerConfig::fine_grained()
        };
        let mut adm = QdttAdmission::new(&table, &index, ssd_model(), cfg);
        // Admit 16 sessions without completing any: the lease shrinks from
        // the full 32 down to 2, and the chosen plans must follow.
        for s in 0..16 {
            adm.admit(&admission(s, s, 0.01), &pool);
        }
        let d = adm.decisions();
        assert_eq!(d[0].lease_depth, 32);
        assert_eq!(d[15].lease_depth, 2);
        assert!(
            d[15].queue_depth < d[0].queue_depth,
            "costed queue depth must shrink with the lease: {} vs {}",
            d[0].queue_depth,
            d[15].queue_depth
        );
        assert!(
            d[0].degree > 1,
            "uncontended, the query should parallelize: {:?}",
            d[0]
        );
        assert!(
            d[15].degree < d[0].degree,
            "parallel degree must step down as leases shrink: {} vs {}",
            d[0].degree,
            d[15].degree
        );
    }

    #[test]
    fn completion_returns_the_lease() {
        let (table, index) = fixture();
        let pool = BufferPool::new(4096);
        let mut adm =
            QdttAdmission::new(&table, &index, ssd_model(), OptimizerConfig::fine_grained());
        adm.admit(&admission(0, 0, 0.01), &pool);
        assert_eq!(adm.budget().active(), 1);
        adm.complete(0);
        assert_eq!(adm.budget().active(), 0);
        adm.admit(&admission(1, 0, 0.01), &pool);
        assert_eq!(
            adm.decisions()[1].lease_depth,
            adm.decisions()[0].lease_depth,
            "after a completion the next query gets the full depth again"
        );
    }

    #[test]
    fn completing_an_unknown_session_is_a_no_op() {
        let (table, index) = fixture();
        let mut adm =
            QdttAdmission::new(&table, &index, ssd_model(), OptimizerConfig::fine_grained());
        adm.complete(7); // engine never admitted session 7: nothing to release
        assert_eq!(adm.budget().active(), 0);
    }

    #[test]
    fn background_lease_contends_like_a_query() {
        let (table, index) = fixture();
        let pool = BufferPool::new(4096);
        let mut adm =
            QdttAdmission::new(&table, &index, ssd_model(), OptimizerConfig::fine_grained());
        adm.admit(&admission(0, 0, 0.01), &pool);
        let solo = adm.decisions()[0].lease_depth;
        adm.complete(0);
        adm.background_acquire();
        assert!(adm.background_lease_held());
        assert_eq!(adm.budget().active(), 1);
        adm.background_acquire(); // idempotent while active
        assert_eq!(adm.budget().active(), 1);
        adm.admit(&admission(1, 0, 0.01), &pool);
        assert!(
            adm.decisions()[1].lease_depth < solo,
            "writeback must shrink concurrent admissions: {} vs {}",
            solo,
            adm.decisions()[1].lease_depth
        );
        adm.complete(1);
        adm.background_release();
        assert!(!adm.background_lease_held());
        assert_eq!(adm.budget().active(), 0);
        adm.background_release(); // releasing while idle is a no-op
        assert_eq!(adm.budget().active(), 0);
    }

    #[test]
    fn plan_to_spec_respects_the_costed_queue_depth() {
        let cfg = OptimizerConfig::fine_grained();
        let plan = Plan {
            method: AccessMethod::IndexScan,
            degree: 8,
            queue_depth: 8, // capped: 8 workers x pf4 = 32 assumed, leased to 8
            band: 1000,
            est_page_fetches: 10.0,
            est_io_us: 100.0,
            est_cpu_us: 10.0,
            est_total_us: 110.0,
        };
        let PlanSpec::Is(is) = plan_to_spec(&plan, &cfg) else {
            panic!("index plan must lower to an index scan");
        };
        assert_eq!(is.workers, 8);
        assert_eq!(is.prefetch_depth, 1, "8 workers share a depth-8 lease");
        let sorted = Plan {
            method: AccessMethod::SortedIndexScan,
            degree: 1,
            queue_depth: 4,
            ..plan
        };
        let PlanSpec::SortedIs(s) = plan_to_spec(&sorted, &cfg) else {
            panic!("sorted plan must lower to a sorted index scan");
        };
        assert_eq!(s.prefetch_depth, 4);
        assert_eq!(s.leaf_prefetch, 4);
    }
}
