//! QDTT-costed join planning: index-nested-loop vs. hybrid hash.
//!
//! The two join operators in `pioqo_exec::join` have opposite I/O
//! profiles, which makes the choice between them exactly the kind of
//! decision the QDTT surface D(band, depth) was built for:
//!
//! * **INL** issues random page reads confined to the inner table's band
//!   at the probe queue depth — cheap precisely where QDTT says random
//!   reads are cheap (small band, deep queue, flash).
//! * **Hybrid hash** streams both inputs sequentially and pays a
//!   sequential write + read round trip for the spilled `(P-1)/P`
//!   fraction — nearly flat in queue depth and band size.
//!
//! So the winner flips with the device *and* with the queue-depth lease:
//! on a spindle, hash wins almost always; on flash at depth 32, INL wins
//! until admission pressure shrinks the lease and drags its random reads
//! back toward serial latency. [`choose_join`] enumerates
//! `{INL} × depths ∪ {HHJ} × partitions` under a depth cap and picks the
//! cheapest — the concurrency experiments sweep that cap to show the
//! crossover moving.

use crate::card::{mackert_lohman_fetches, yao_pages};
use crate::cost::{EstCpuCosts, IoCostModel};
use crate::stats::TableStats;
use pioqo_exec::{HashJoinConfig, InlConfig, PlanSpec};
use serde::{Deserialize, Serialize};

/// The join operators the planner chooses among.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinMethod {
    /// Index-nested-loop: sequential outer scan + random inner probes.
    IndexNestedLoop,
    /// Hybrid hash: two sequential streams + a sequential spill round trip.
    HybridHash,
}

impl std::fmt::Display for JoinMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinMethod::IndexNestedLoop => write!(f, "INL"),
            JoinMethod::HybridHash => write!(f, "HHJ"),
        }
    }
}

/// A costed join candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinPlan {
    /// Join operator.
    pub method: JoinMethod,
    /// Queue depth passed to the I/O model (probe depth for INL, ring
    /// depth for hash).
    pub queue_depth: u32,
    /// Hash partitions (1 for INL, where it is meaningless).
    pub partitions: u32,
    /// Estimated page fetches (reads + spill writes).
    pub est_page_fetches: f64,
    /// Estimated I/O time, µs.
    pub est_io_us: f64,
    /// Estimated CPU time, µs.
    pub est_cpu_us: f64,
    /// Estimated total runtime, µs — what [`choose_join`] minimizes.
    pub est_total_us: f64,
}

impl JoinPlan {
    /// Short label matching the executor's `PlanSpec::label` family
    /// ("INL+qd8", "HHJ8").
    pub fn label(&self) -> String {
        match self.method {
            JoinMethod::IndexNestedLoop => format!("INL+qd{}", self.queue_depth),
            JoinMethod::HybridHash => format!("HHJ{}", self.partitions),
        }
    }
}

/// The statistics a join costing call consumes: both sides plus the inner
/// key cardinality (distinct `C2` values — `rows / cardinality` is the
/// average number of inner matches per probe).
#[derive(Debug, Clone)]
pub struct JoinStats<'a> {
    /// Outer (probe/left) table.
    pub left: &'a TableStats,
    /// Inner (build/right) table, whose `index` field is the probe target.
    pub right: &'a TableStats,
    /// Distinct join-key values in the inner table.
    pub key_cardinality: u64,
}

impl JoinStats<'_> {
    fn avg_matches(&self) -> f64 {
        self.right.rows as f64 / self.key_cardinality.max(1) as f64
    }
}

/// Cost an index-nested-loop join at probe queue depth `qd`, with the
/// outer predicate retaining fraction `sel` of outer rows.
pub fn cost_inl(
    model: &dyn IoCostModel,
    est: &EstCpuCosts,
    js: &JoinStats<'_>,
    sel: f64,
    qd: u32,
) -> JoinPlan {
    let sel = sel.clamp(0.0, 1.0);
    let probes = (sel * js.left.rows as f64).ceil();
    let matched = probes * js.avg_matches();

    // Outer stream: sequential over the left extent, cached pages skipped.
    let outer_fetches = (js.left.pages - js.left.cached_pages) as f64;
    let outer_io = outer_fetches * model.page_cost_us(1, qd.max(1));

    // Index I/O per probe: upper levels stay hot after the first descent,
    // so steady-state each probe fetches ~one leaf from the index band.
    let idx = &js.right.index;
    let leaf_fetches = probes
        .min(idx.leaves as f64)
        .max(if probes > 0.0 { 1.0 } else { 0.0 })
        + idx.height.saturating_sub(1) as f64;
    let idx_io = leaf_fetches * model.page_cost_us(idx.extent.pages.max(1), qd.max(1));

    // Inner heap I/O: `matched` row lookups over the inner band — Yao
    // distinct pages, Mackert–Lohman refetch through the shared pool,
    // discounted by what is already cached.
    let k = matched.ceil() as u64;
    let distinct = yao_pages(js.right.pages, js.right.rows, k.min(js.right.rows));
    let ml = mackert_lohman_fetches(js.right.pages, k, js.right.buffer_frames);
    let heap_fetches = distinct.max(ml) * (1.0 - js.right.cached_fraction());
    let heap_io = heap_fetches * model.page_cost_us(js.right.extent.pages.max(1), qd.max(1));

    let io = outer_io + idx_io + heap_io;
    let cpu = js.left.pages as f64 * est.page_us
        + js.left.rows as f64 * est.row_scan_us
        + probes * est.leaf_us
        + matched * est.row_lookup_us;
    JoinPlan {
        method: JoinMethod::IndexNestedLoop,
        queue_depth: qd.max(1),
        partitions: 1,
        est_page_fetches: outer_fetches + leaf_fetches + heap_fetches,
        est_io_us: io,
        est_cpu_us: cpu,
        est_total_us: io.max(cpu),
    }
}

/// Cost a hybrid hash join with `partitions` partitions at sequential
/// ring depth `qd`, with the outer predicate retaining fraction `sel`.
pub fn cost_hash(
    model: &dyn IoCostModel,
    est: &EstCpuCosts,
    js: &JoinStats<'_>,
    sel: f64,
    partitions: u32,
    qd: u32,
) -> JoinPlan {
    let sel = sel.clamp(0.0, 1.0);
    let p = partitions.max(1) as f64;
    let seq = |pages: f64| pages * model.page_cost_us(1, qd.max(1));

    // Both inputs stream once, sequentially.
    let base_fetches = (js.right.pages - js.right.cached_pages) as f64
        + (js.left.pages - js.left.cached_pages) as f64;
    // The spilled fraction of both sides is written out and read back, all
    // sequential. Only predicate-surviving outer rows spill.
    let spill_frac = (p - 1.0) / p;
    let spill_pages = spill_frac * (js.right.pages as f64 + sel * js.left.pages as f64);
    let io = seq(base_fetches) + 2.0 * seq(spill_pages);

    let probes = sel * js.left.rows as f64;
    let cpu = (js.right.pages as f64 + js.left.pages as f64) * est.page_us
        + (js.right.rows as f64 + js.left.rows as f64) * est.row_scan_us
        + probes * est.row_lookup_us
        // Spilled rows are hashed twice (once out, once back in).
        + spill_frac * (js.right.rows as f64 * est.row_scan_us + probes * est.row_lookup_us);
    JoinPlan {
        method: JoinMethod::HybridHash,
        queue_depth: qd.max(1),
        partitions: partitions.max(1),
        est_page_fetches: base_fetches + 2.0 * spill_pages,
        est_io_us: io,
        est_cpu_us: cpu,
        est_total_us: io.max(cpu),
    }
}

/// The smallest partition count whose in-memory partition 0 of the inner
/// table fits in a quarter of the buffer pool (so the "hybrid" part is
/// honest about memory).
pub fn min_feasible_partitions(js: &JoinStats<'_>) -> u32 {
    let mem_rows = (js.right.buffer_frames * js.right.rows_per_page as u64 / 4).max(1);
    let mut p = 1u32;
    while p < 64 && js.right.rows.div_ceil(p as u64) > mem_rows {
        p *= 2;
    }
    p
}

/// Enumerate every join candidate under a queue-depth cap: INL at each
/// power-of-two probe depth up to `max_qd`, hash at each feasible
/// power-of-two partition count up to 16× the minimum.
pub fn enumerate_joins(
    model: &dyn IoCostModel,
    est: &EstCpuCosts,
    js: &JoinStats<'_>,
    sel: f64,
    max_qd: u32,
) -> Vec<JoinPlan> {
    let max_qd = max_qd.max(1);
    let mut plans = Vec::new();
    let mut qd = 1u32;
    loop {
        plans.push(cost_inl(model, est, js, sel, qd));
        if qd >= max_qd {
            break;
        }
        qd = (qd * 2).min(max_qd);
    }
    let p0 = min_feasible_partitions(js);
    let mut p = p0;
    while p <= p0 * 16 && p <= 64 {
        plans.push(cost_hash(model, est, js, sel, p, max_qd.min(8)));
        p *= 2;
    }
    plans
}

/// Pick the cheapest join plan under the queue-depth cap (the admission
/// lease, under concurrency).
pub fn choose_join(
    model: &dyn IoCostModel,
    est: &EstCpuCosts,
    js: &JoinStats<'_>,
    sel: f64,
    max_qd: u32,
) -> JoinPlan {
    enumerate_joins(model, est, js, sel, max_qd)
        .into_iter()
        .min_by(|a, b| {
            a.est_total_us
                .partial_cmp(&b.est_total_us)
                .expect("finite costs")
        })
        .expect("at least one join plan")
}

/// Lower a costed [`JoinPlan`] to the executor's [`PlanSpec`].
pub fn join_plan_to_spec(plan: &JoinPlan) -> PlanSpec {
    match plan.method {
        JoinMethod::IndexNestedLoop => PlanSpec::Inl(InlConfig {
            probe_depth: plan.queue_depth.max(1),
            ..InlConfig::default()
        }),
        JoinMethod::HybridHash => PlanSpec::Hash(HashJoinConfig {
            partitions: plan.partitions.max(1),
            io_depth: plan.queue_depth.max(1),
            ..HashJoinConfig::default()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::QdttCost;
    use crate::stats::IndexStats;
    use pioqo_core::Qdtt;
    use pioqo_storage::Extent;

    fn stats(pages: u64, rpp: u32, base: u64, buffer: u64) -> TableStats {
        let rows = pages * rpp as u64;
        let leaves = rows.div_ceil(338);
        TableStats {
            pages,
            rows,
            rows_per_page: rpp,
            page_size: 4096,
            extent: Extent { base, pages },
            cached_pages: 0,
            buffer_frames: buffer,
            index: IndexStats {
                leaves,
                height: 3,
                leaf_fanout: 338,
                extent: Extent {
                    base: base + pages,
                    pages: leaves + 4,
                },
                cached_pages: 0,
            },
        }
    }

    /// Flash-like surface: sequential (band 1) reads are cheap at any
    /// depth; random reads start ~4–5× dearer but deep queues close most
    /// of the gap (what makes INL viable at all). The 4096-page knot makes
    /// the band axis saturate like a calibrated device instead of
    /// interpolating linearly across the whole capacity.
    fn ssd_model() -> QdttCost {
        QdttCost(Qdtt::new(
            vec![1, 4096, 1 << 20],
            vec![1, 2, 4, 8, 16, 32],
            vec![
                20.0, 80.0, 90.0, //
                10.0, 40.0, 45.0, //
                5.0, 20.0, 23.0, //
                2.5, 10.0, 12.0, //
                1.5, 5.0, 6.0, //
                1.0, 2.5, 3.0,
            ],
        ))
    }

    /// Spindle-like surface: depth buys nothing, random (large band) reads
    /// are ~30× sequential.
    fn hdd_model() -> QdttCost {
        QdttCost(Qdtt::new(
            vec![1, 4096, 1 << 20],
            vec![1, 32],
            vec![300.0, 7000.0, 9000.0, 290.0, 6800.0, 8700.0],
        ))
    }

    #[test]
    fn choose_matches_brute_force_sweep() {
        // The oracle: cost every (method, qd, partitions) point directly
        // and take the argmin; `choose_join` must agree.
        let left = stats(30_000, 33, 0, 16_384);
        let right = stats(10_000, 33, 40_000, 16_384);
        let est = EstCpuCosts::default();
        for model in [ssd_model(), hdd_model()] {
            for sel in [0.001, 0.05, 0.5] {
                for max_qd in [1u32, 4, 32] {
                    let js = JoinStats {
                        left: &left,
                        right: &right,
                        key_cardinality: 50_000,
                    };
                    let mut best: Option<JoinPlan> = None;
                    let mut qd = 1;
                    loop {
                        let p = cost_inl(&model, &est, &js, sel, qd);
                        if best
                            .as_ref()
                            .is_none_or(|b| p.est_total_us < b.est_total_us)
                        {
                            best = Some(p);
                        }
                        if qd >= max_qd {
                            break;
                        }
                        qd = (qd * 2).min(max_qd);
                    }
                    let p0 = min_feasible_partitions(&js);
                    let mut parts = p0;
                    while parts <= p0 * 16 && parts <= 64 {
                        let p = cost_hash(&model, &est, &js, sel, parts, max_qd.min(8));
                        if best
                            .as_ref()
                            .is_none_or(|b| p.est_total_us < b.est_total_us)
                        {
                            best = Some(p);
                        }
                        parts *= 2;
                    }
                    let want = best.expect("non-empty sweep");
                    let got = choose_join(&model, &est, &js, sel, max_qd);
                    assert_eq!(got.label(), want.label(), "sel={sel} max_qd={max_qd}");
                    assert_eq!(got.est_total_us, want.est_total_us);
                }
            }
        }
    }

    #[test]
    fn hash_wins_on_spindles_inl_wins_on_deep_flash() {
        let left = stats(30_000, 33, 0, 16_384);
        let right = stats(10_000, 33, 40_000, 16_384);
        let est = EstCpuCosts::default();
        // Low-selectivity probe workload: few probes, INL's natural home.
        let js = JoinStats {
            left: &left,
            right: &right,
            key_cardinality: 300_000,
        };
        let hdd = hdd_model();
        let ssd = ssd_model();
        assert_eq!(
            choose_join(&hdd, &est, &js, 0.01, 32).method,
            JoinMethod::HybridHash,
            "random probes on a spindle must lose"
        );
        assert_eq!(
            choose_join(&ssd, &est, &js, 0.01, 32).method,
            JoinMethod::IndexNestedLoop,
            "deep-queue flash probes must win at low selectivity"
        );
    }

    #[test]
    fn shrinking_lease_flips_inl_to_hash() {
        // The concurrency story: at full depth INL wins on flash; as the
        // admission lease shrinks the probe stream loses its parallelism
        // and the sequential hash join takes over.
        let left = stats(30_000, 33, 0, 16_384);
        let right = stats(10_000, 33, 40_000, 16_384);
        let est = EstCpuCosts::default();
        let js = JoinStats {
            left: &left,
            right: &right,
            key_cardinality: 300_000,
        };
        let ssd = ssd_model();
        let sel = 0.02;
        let deep = choose_join(&ssd, &est, &js, sel, 32);
        let shallow = choose_join(&ssd, &est, &js, sel, 1);
        assert_eq!(deep.method, JoinMethod::IndexNestedLoop, "{deep:?}");
        assert_eq!(shallow.method, JoinMethod::HybridHash, "{shallow:?}");
    }

    #[test]
    fn selectivity_sweep_crosses_over_on_flash() {
        let left = stats(30_000, 33, 0, 16_384);
        let right = stats(10_000, 33, 40_000, 16_384);
        let est = EstCpuCosts::default();
        let js = JoinStats {
            left: &left,
            right: &right,
            key_cardinality: 300_000,
        };
        let ssd = ssd_model();
        let lo = choose_join(&ssd, &est, &js, 0.001, 32);
        let hi = choose_join(&ssd, &est, &js, 0.9, 32);
        assert_eq!(lo.method, JoinMethod::IndexNestedLoop);
        assert_eq!(
            hi.method,
            JoinMethod::HybridHash,
            "probing every outer row must lose to a hash"
        );
    }

    #[test]
    fn partition_count_respects_memory() {
        let right_small = stats(100, 33, 0, 16_384);
        let right_big = stats(200_000, 33, 0, 1_000);
        let left = stats(1_000, 33, 300_000, 1_000);
        let js_small = JoinStats {
            left: &left,
            right: &right_small,
            key_cardinality: 1_000,
        };
        let js_big = JoinStats {
            left: &left,
            right: &right_big,
            key_cardinality: 1_000_000,
        };
        assert_eq!(min_feasible_partitions(&js_small), 1);
        assert!(min_feasible_partitions(&js_big) > 1);
    }

    #[test]
    fn lowering_preserves_depth_and_partitions() {
        let left = stats(1_000, 33, 0, 4_096);
        let right = stats(1_000, 33, 2_000, 4_096);
        let est = EstCpuCosts::default();
        let js = JoinStats {
            left: &left,
            right: &right,
            key_cardinality: 10_000,
        };
        let plan = choose_join(&ssd_model(), &est, &js, 0.01, 16);
        match (&plan.method, join_plan_to_spec(&plan)) {
            (JoinMethod::IndexNestedLoop, PlanSpec::Inl(c)) => {
                assert_eq!(c.probe_depth, plan.queue_depth)
            }
            (JoinMethod::HybridHash, PlanSpec::Hash(c)) => {
                assert_eq!(c.partitions, plan.partitions);
                assert_eq!(c.io_depth, plan.queue_depth);
            }
            (m, s) => panic!("method {m:?} lowered to mismatched spec {s:?}"),
        }
    }
}
