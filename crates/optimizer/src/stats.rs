//! Catalog statistics the optimizer consumes.
//!
//! §4.3: the optimizer knows table/index geometry, the extent each object
//! occupies (for band-size estimation), and "statistics on how many table
//! and index pages are currently cached".

use pioqo_bufpool::BufferPool;
use pioqo_storage::{BTreeIndex, Extent, HeapTable};
use serde::{Deserialize, Serialize};

/// Statistics for the index on `C2`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexStats {
    /// Leaf pages.
    pub leaves: u64,
    /// Tree height (1 = root is a leaf).
    pub height: u32,
    /// Entries per leaf.
    pub leaf_fanout: u32,
    /// The index's extent on the device.
    pub extent: Extent,
    /// Index pages currently in the buffer pool.
    pub cached_pages: u64,
}

/// Statistics for a heap table and its `C2` index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableStats {
    /// Heap pages.
    pub pages: u64,
    /// Rows.
    pub rows: u64,
    /// Rows per page.
    pub rows_per_page: u32,
    /// Page size in bytes.
    pub page_size: u32,
    /// The table's extent on the device.
    pub extent: Extent,
    /// Table pages currently in the buffer pool.
    pub cached_pages: u64,
    /// Buffer pool capacity in frames (for refetch estimation).
    pub buffer_frames: u64,
    /// The `C2` index.
    pub index: IndexStats,
}

impl TableStats {
    /// Gather statistics from live objects (the "catalog lookup").
    pub fn gather(table: &HeapTable, index: &BTreeIndex, pool: &BufferPool) -> TableStats {
        let t_ext = table.extent();
        let i_ext = index.extent();
        TableStats {
            pages: table.n_pages(),
            rows: table.spec().rows,
            rows_per_page: table.spec().rows_per_page,
            page_size: table.spec().page_size,
            extent: t_ext,
            cached_pages: pool.resident_in_range(t_ext.base, t_ext.pages),
            buffer_frames: pool.capacity() as u64,
            index: IndexStats {
                leaves: index.n_leaves(),
                height: index.height(),
                leaf_fanout: index.leaf_fanout(),
                extent: i_ext,
                cached_pages: pool.resident_in_range(i_ext.base, i_ext.pages),
            },
        }
    }

    /// Fraction of table pages resident in the buffer pool.
    pub fn cached_fraction(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.cached_pages as f64 / self.pages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_storage::{TableSpec, Tablespace};

    #[test]
    fn gather_reads_geometry_and_cache() {
        let spec = TableSpec::paper_table(33, 10_000, 5);
        let mut ts = Tablespace::new(100_000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build("i", table.data().c2_entries(), 4096, &mut ts).expect("fits");
        let mut pool = BufferPool::new(64);
        // Cache three table pages and one index page.
        for p in 0..3 {
            pool.admit_prefetched(table.device_page(p)).expect("admit");
        }
        pool.admit_prefetched(index.device_page_of_leaf(0))
            .expect("admit");
        let stats = TableStats::gather(&table, &index, &pool);
        assert_eq!(stats.pages, table.n_pages());
        assert_eq!(stats.rows, 10_000);
        assert_eq!(stats.cached_pages, 3);
        assert_eq!(stats.index.cached_pages, 1);
        assert_eq!(stats.buffer_frames, 64);
        assert!(stats.cached_fraction() > 0.0);
    }
}
