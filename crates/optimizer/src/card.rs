//! Cardinality estimation: expected page fetches for an index scan.
//!
//! Two classic results the paper leans on (§2 cites Yue & Wong's analytical
//! formula; SQL Anywhere's IS cost model must also account for the small
//! buffer pool that makes pages "retrieved over and over again"):
//!
//! * **Yao's formula** (1977): the expected number of *distinct* pages
//!   touched when k records are selected uniformly without replacement from
//!   a table of m pages × n/m records each.
//! * **Mackert–Lohman** (1989): the expected number of page *fetches* when
//!   k accesses go through an LRU buffer of b frames — beyond the buffer
//!   size, re-references start missing and total fetches can exceed the
//!   table size.

/// Yao's formula: expected distinct pages touched selecting `k` of `n`
/// records uniformly at random (without replacement) from `m` pages.
///
/// Exact: `m · (1 − C(n−n/m, k) / C(n, k))`, evaluated stably in log space.
/// Edge cases: `k = 0 → 0`, `k ≥ n − n/m → m` (every page must be hit).
pub fn yao_pages(m: u64, n: u64, k: u64) -> f64 {
    if m == 0 || n == 0 || k == 0 {
        return 0.0;
    }
    let m_f = m as f64;
    if k >= n || m == 1 {
        return m_f;
    }
    let per_page = n as f64 / m_f;
    let n_f = n as f64;
    let k = k.min(n);
    let k_f = k as f64;

    // P(one specific page untouched) = C(n - n/m, k) / C(n, k).
    // For large k the O(k) product would dominate plan costing (the
    // optimizer evaluates this per candidate plan), so switch to the
    // closed form via ln-gamma: lnΓ(a+1) − lnΓ(a−k+1) − lnΓ(n+1) +
    // lnΓ(n−k+1), with a = n − n/m (fractional a is fine).
    const EXACT_K_LIMIT: u64 = 4096;
    let log_p = if k > EXACT_K_LIMIT {
        let a = n_f - per_page;
        if a - k_f + 1.0 <= 0.0 {
            return m_f;
        }
        ln_gamma(a + 1.0) - ln_gamma(a - k_f + 1.0) - ln_gamma(n_f + 1.0)
            + ln_gamma(n_f - k_f + 1.0)
    } else {
        // Exact log-space running product with early exit once the
        // probability is ~0.
        let mut log_p = 0.0f64;
        for i in 0..k {
            let numer = n_f - per_page - i as f64;
            if numer <= 0.0 {
                return m_f;
            }
            log_p += (numer / (n_f - i as f64)).ln();
            if log_p < -45.0 {
                return m_f;
            }
        }
        log_p
    };
    if log_p < -45.0 {
        // e^-45 ~ 3e-20: all pages touched, to machine precision.
        return m_f;
    }
    m_f * (1.0 - log_p.exp())
}

/// Natural log of the gamma function for positive arguments (Lanczos
/// approximation, g = 7, ~1e-13 relative accuracy — far below the noise
/// floor of any cardinality estimate).
fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    // The canonical published Lanczos(g=7) coefficients; kept verbatim even
    // though the trailing digits exceed f64 precision.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Mackert–Lohman: expected page *fetches* for `k` uniformly random
/// accesses to a table of `t` pages through an LRU buffer of `b` frames
/// (the formula behind PostgreSQL's `index_pages_fetched`).
///
/// * If the table fits in the buffer, fetches are capped at `t` (each page
///   read at most once).
/// * Otherwise fetches follow `2·t·k / (2·t + k)` until the buffer
///   saturates at `k_lim = 2·t·b / (2·t − b)`, after which every further
///   access misses with probability `(t − b)/t`.
pub fn mackert_lohman_fetches(t: u64, k: u64, b: u64) -> f64 {
    if t == 0 || k == 0 {
        return 0.0;
    }
    let t_f = t as f64;
    let k_f = k as f64;
    let b_f = (b.max(1)) as f64;
    if t_f <= b_f {
        (2.0 * t_f * k_f / (2.0 * t_f + k_f)).min(t_f)
    } else {
        let lim = 2.0 * t_f * b_f / (2.0 * t_f - b_f);
        if k_f <= lim {
            2.0 * t_f * k_f / (2.0 * t_f + k_f)
        } else {
            b_f + (k_f - lim) * (t_f - b_f) / t_f
        }
    }
}

/// Index leaf pages touched for `k` qualifying entries with `leaf_fanout`
/// entries per leaf (at least one leaf whenever `k > 0`).
pub fn leaf_pages_touched(k: u64, leaf_fanout: u32) -> u64 {
    if k == 0 {
        0
    } else {
        k.div_ceil(leaf_fanout as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yao_edges() {
        assert_eq!(yao_pages(100, 3300, 0), 0.0);
        assert_eq!(yao_pages(100, 3300, 3300), 100.0);
        assert_eq!(yao_pages(0, 0, 5), 0.0);
        assert_eq!(yao_pages(1, 33, 10), 1.0);
    }

    #[test]
    fn yao_single_record_touches_one_page() {
        let p = yao_pages(1000, 33_000, 1);
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn yao_monotone_in_k_and_bounded() {
        let mut prev = 0.0;
        for k in [1u64, 10, 100, 1000, 10_000, 33_000] {
            let p = yao_pages(1000, 33_000, k);
            assert!(p >= prev - 1e-9, "monotone violated at k={k}");
            assert!(p <= 1000.0 + 1e-9);
            assert!(p <= k as f64 + 1e-9 || k > 1000);
            prev = p;
        }
    }

    #[test]
    fn yao_many_rows_per_page_saturates_fast() {
        // 500 rows/page: selecting 1% of rows touches nearly every page.
        let m = 1000u64;
        let n = 500_000u64;
        let p = yao_pages(m, n, 5000);
        assert!(p > 0.99 * m as f64, "expected saturation, got {p}");
        // 1 row/page: selecting 1% touches exactly 1% of pages (the
        // closed-form ln-gamma path carries ~0.05 page of cancellation
        // error at this scale — noise for a cost model).
        let p1 = yao_pages(n, n, 5000);
        assert!((p1 - 5000.0).abs() < 1.0, "{p1}");
    }

    #[test]
    fn yao_matches_monte_carlo() {
        // m=50 pages, 10 rows per page, k=25.
        let (m, n, k) = (50u64, 500u64, 25u64);
        let expected = yao_pages(m, n, k);
        let mut rng = pioqo_simkit::SimRng::seeded(42);
        let trials = 4000;
        let mut total = 0usize;
        for _ in 0..trials {
            let rows = rng.distinct_below(n, k as usize);
            let pages: std::collections::BTreeSet<u64> = rows.iter().map(|r| r / 10).collect();
            total += pages.len();
        }
        let mc = total as f64 / trials as f64;
        assert!(
            (mc - expected).abs() < 0.3,
            "Yao {expected} vs Monte Carlo {mc}"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // lnΓ(n+1) = ln(n!)
        let mut ln_fact = 0.0f64;
        for n in 1..=20u32 {
            ln_fact += (n as f64).ln();
            let lg = super::ln_gamma(n as f64 + 1.0);
            assert!(
                (lg - ln_fact).abs() < 1e-10 * ln_fact.max(1.0),
                "n={n}: {lg} vs {ln_fact}"
            );
        }
        // Γ(0.5) = sqrt(pi)
        let half = super::ln_gamma(0.5);
        assert!((half - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn yao_gamma_path_continuous_with_exact_path() {
        // Values straddling the exact/closed-form switch must agree.
        let (m, n) = (250_000u64, 8_250_000u64);
        let below = yao_pages(m, n, 4096);
        let above = yao_pages(m, n, 4097);
        assert!(
            (above - below) / below < 1e-3 && above >= below,
            "discontinuity at the switch: {below} vs {above}"
        );
        // And the closed form stays monotone/bounded across a wide sweep.
        let mut prev = 0.0;
        for k in [5_000u64, 50_000, 500_000, 5_000_000] {
            let p = yao_pages(m, n, k);
            assert!(p >= prev && p <= m as f64 + 1e-6);
            prev = p;
        }
    }

    #[test]
    fn ml_table_fits_in_buffer_caps_at_table() {
        let f = mackert_lohman_fetches(100, 1_000_000, 1000);
        assert!(f <= 100.0 + 1e-9);
    }

    #[test]
    fn ml_exceeds_table_when_buffer_small() {
        // §2: "the total number of pages fetched using IS can be potentially
        // even more than the number of pages fetched using FTS."
        let t = 10_000u64;
        let b = 100u64;
        let k = 1_000_000u64;
        let f = mackert_lohman_fetches(t, k, b);
        assert!(f > t as f64, "small buffer must refetch: {f}");
    }

    #[test]
    fn ml_monotone_in_k_and_decreasing_in_b() {
        let t = 10_000;
        let mut prev = 0.0;
        for k in [1u64, 100, 10_000, 100_000, 1_000_000] {
            let f = mackert_lohman_fetches(t, k, 500);
            assert!(f >= prev);
            prev = f;
        }
        let small = mackert_lohman_fetches(t, 100_000, 100);
        let big = mackert_lohman_fetches(t, 100_000, 5000);
        assert!(big < small, "bigger buffer fewer fetches: {big} vs {small}");
    }

    #[test]
    fn ml_few_accesses_roughly_one_fetch_each() {
        let f = mackert_lohman_fetches(1_000_000, 10, 100);
        assert!((f - 10.0).abs() < 0.1);
    }

    #[test]
    fn leaf_pages() {
        assert_eq!(leaf_pages_touched(0, 338), 0);
        assert_eq!(leaf_pages_touched(1, 338), 1);
        assert_eq!(leaf_pages_touched(338, 338), 1);
        assert_eq!(leaf_pages_touched(339, 338), 2);
    }
}
