//! I/O cost model abstraction: the only difference between the paper's
//! "old" and "new" optimizers.
//!
//! §4.3: "In the cost estimation function of PIS and PFTS operators there
//! is a call to DTT function. ... We changed the cost estimation functions
//! of PIS and PFTS such that they use QDTT model instead of DTT model.
//! This time, in addition to band size, parallel degree of the operator
//! would be passed to the model as well."

use pioqo_core::{Dtt, Qdtt};
use serde::{Deserialize, Serialize};

/// Amortized per-page I/O cost as a function of band size and (for models
/// that honour it) queue depth.
pub trait IoCostModel {
    /// Cost in µs of one page read within `band` pages at device queue
    /// depth `qd`.
    fn page_cost_us(&self, band: u64, qd: u32) -> f64;

    /// Human-readable model name for reports.
    fn model_name(&self) -> &'static str;
}

/// The queue-depth-blind DTT model: the paper's *old* optimizer.
pub struct DttCost(pub Dtt);

impl IoCostModel for DttCost {
    fn page_cost_us(&self, band: u64, _qd: u32) -> f64 {
        self.0.cost(band)
    }

    fn model_name(&self) -> &'static str {
        "DTT"
    }
}

/// The queue-depth-aware QDTT model: the paper's *new* optimizer.
pub struct QdttCost(pub Qdtt);

impl IoCostModel for QdttCost {
    fn page_cost_us(&self, band: u64, qd: u32) -> f64 {
        self.0.cost(band, qd)
    }

    fn model_name(&self) -> &'static str {
        "QDTT"
    }
}

/// The optimizer's *estimate* constants for CPU work, in microseconds.
///
/// These are deliberately independent of the execution engine's true
/// constants (`pioqo_exec::CpuCosts`) and deliberately I/O-centric: the
/// paper's §4.3 observes that in SQL Anywhere "the estimated I/O cost is
/// much more than the estimated CPU cost", which is precisely why the
/// DTT-based optimizer never prefers a parallel plan — the CPU benefit of
/// parallelism never outweighs its estimated overhead. A reproduction with
/// a perfectly CPU-accurate optimizer would *not* reproduce the paper's
/// old-optimizer behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstCpuCosts {
    /// Estimated CPU per table page scanned.
    pub page_us: f64,
    /// Estimated CPU per row evaluated by a table scan.
    pub row_scan_us: f64,
    /// Estimated CPU per index-scan row lookup.
    pub row_lookup_us: f64,
    /// Estimated CPU per index leaf decoded.
    pub leaf_us: f64,
    /// Estimated per-worker startup/coordination overhead of a parallel
    /// plan.
    pub startup_us: f64,
}

impl Default for EstCpuCosts {
    fn default() -> Self {
        EstCpuCosts {
            page_us: 2.0,
            row_scan_us: 0.012,
            row_lookup_us: 0.3,
            leaf_us: 2.0,
            startup_us: 500.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtt_cost_ignores_queue_depth() {
        let m = DttCost(Dtt::new(vec![(1, 10.0), (1000, 100.0)]));
        assert_eq!(m.page_cost_us(1000, 1), m.page_cost_us(1000, 32));
        assert_eq!(m.model_name(), "DTT");
    }

    #[test]
    fn qdtt_cost_honours_queue_depth() {
        let q = Qdtt::new(vec![1, 1000], vec![1, 32], vec![10.0, 100.0, 5.0, 12.0]);
        let m = QdttCost(q);
        assert!(m.page_cost_us(1000, 32) < m.page_cost_us(1000, 1));
        assert_eq!(m.model_name(), "QDTT");
    }

    #[test]
    fn qdtt_at_depth_one_equals_its_dtt() {
        let q = Qdtt::new(vec![1, 1000], vec![1, 32], vec![10.0, 100.0, 5.0, 12.0]);
        let d = DttCost(q.to_dtt());
        let m = QdttCost(q);
        for band in [1u64, 10, 500, 1000] {
            assert!((m.page_cost_us(band, 1) - d.page_cost_us(band, 7)).abs() < 1e-9);
        }
    }
}
