//! # pioqo-bufpool — buffer pool
//!
//! An LRU page cache with pinning, sized in frames. Two properties matter
//! for the paper's experiments:
//!
//! * With a **small pool** (64 MB in §3.1), a high-selectivity index scan
//!   re-fetches table pages it already read — the effect that lets IS fetch
//!   *more* pages than the table holds (§2) and that the optimizer's
//!   Mackert–Lohman cardinality model estimates.
//! * The pool reports **how many of a table's pages are cached**, because
//!   "SQL Anywhere maintains statistics on how many table and index pages
//!   are currently cached" and the optimizer uses them (§4.3).
//!
//! The pool tracks *residency*, not payloads: logical row values live in
//! `pioqo-storage`'s column data, so frames carry no bytes. Every hit,
//! miss, eviction and refetch is counted.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod wal;

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of a page request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Page resident: it was pinned and moved to MRU.
    Hit,
    /// Page absent: the caller must perform I/O, then call
    /// [`BufferPool::admit`].
    Miss,
}

/// Errors from pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Every frame is pinned or dirty; nothing can be evicted.
    AllPinned,
    /// `unpin` on a page that is not resident or not pinned.
    NotPinned(u64),
    /// A dirty-bit operation on a page that is not resident.
    NotResident(u64),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::AllPinned => {
                write!(f, "buffer pool exhausted: all frames pinned or dirty")
            }
            PoolError::NotPinned(p) => write!(f, "page {p} is not pinned"),
            PoolError::NotResident(p) => write!(f, "page {p} is not resident"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Counters exposed by the pool.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PoolStats {
    /// Requests satisfied from the pool.
    pub hits: u64,
    /// Requests that required I/O.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Misses on pages that had been resident before (the §2 "same table
    /// pages retrieved over and over again" effect).
    pub refetches: u64,
    /// Pages admitted by prefetch rather than demand.
    pub prefetch_admissions: u64,
    /// Demand requests that hit a page a prefetch admitted.
    pub prefetch_hits: u64,
    /// Clean→dirty transitions ([`BufferPool::mark_dirty`]).
    pub pages_dirtied: u64,
    /// Dirty→clean transitions after a durable writeback
    /// ([`BufferPool::mark_clean`]).
    pub pages_flushed: u64,
}

impl PoolStats {
    /// Fold another snapshot into this one, field by field — the single
    /// reduction used by parallel harnesses and trace summaries.
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.refetches += other.refetches;
        self.prefetch_admissions += other.prefetch_admissions;
        self.prefetch_hits += other.prefetch_hits;
        self.pages_dirtied += other.pages_dirtied;
        self.pages_flushed += other.pages_flushed;
    }

    /// Counters accumulated since the `before` snapshot (`self - before`).
    /// `before` must be an earlier snapshot of the same pool.
    pub fn diff(&self, before: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            evictions: self.evictions - before.evictions,
            refetches: self.refetches - before.refetches,
            prefetch_admissions: self.prefetch_admissions - before.prefetch_admissions,
            prefetch_hits: self.prefetch_hits - before.prefetch_hits,
            pages_dirtied: self.pages_dirtied - before.pages_dirtied,
            pages_flushed: self.pages_flushed - before.pages_flushed,
        }
    }
}

/// One entry of the pool's optional event journal (see
/// [`BufferPool::set_event_log`]). Events carry no timestamp: the pool has
/// no clock; the simulation context stamps them with virtual time when it
/// drains the journal into a trace sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolEvent {
    /// Request satisfied from memory.
    Hit(u64),
    /// First demand hit on a page a prefetch admitted.
    PrefetchHit(u64),
    /// Request needs I/O (page never resident before).
    Miss(u64),
    /// Request needs I/O on a previously-resident page (a §2 refetch).
    Refetch(u64),
    /// Page evicted to make room.
    Evict(u64),
    /// Resident page transitioned clean→dirty.
    Dirty(u64),
    /// Dirty page transitioned dirty→clean after a durable writeback.
    Flush(u64),
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Frame {
    page: u64,
    pins: u32,
    prefetched: bool,
    /// Page modified in memory but not yet durably written back. Dirty
    /// frames are never evicted (eviction would silently drop the update).
    dirty: bool,
    prev: u32,
    next: u32,
}

/// Page-id → frame-index table, the pool's hottest data structure.
///
/// The default backend is **dense**: page ids are dense per tablespace
/// (tables and indexes are laid out consecutively from page 0), so a flat
/// `Vec<u32>` indexed by page id gives O(1) lookups where the original
/// `BTreeMap` paid O(log n) with pointer chasing on every single page
/// access. The vector grows geometrically to the highest page id ever
/// admitted — a few bytes per page of *addressed* extent, not of device
/// capacity. The `BTree` backend is retained as the reference model for
/// the property test and the `pioqo-bench` A/B microbenchmark.
#[derive(Debug)]
enum PageTable {
    /// `slots[page] == NIL` means not resident; `seen` is a bitset of page
    /// ids ever admitted (refetch accounting).
    Dense {
        /// Frame index per page id, `NIL` when absent.
        slots: Vec<u32>,
        /// Resident count (number of non-`NIL` slots).
        resident: usize,
        /// One bit per page id: admitted at least once since last flush.
        seen: Vec<u64>,
    },
    /// The original map-based table, kept as a comparison baseline.
    BTree {
        /// Page id → frame index.
        map: BTreeMap<u64, u32>,
        /// Page ids admitted at least once since last flush.
        seen: BTreeSet<u64>,
    },
}

impl PageTable {
    #[inline]
    fn get(&self, page: u64) -> Option<u32> {
        match self {
            PageTable::Dense { slots, .. } => match slots.get(page as usize) {
                Some(&idx) if idx != NIL => Some(idx),
                _ => None,
            },
            PageTable::BTree { map, .. } => map.get(&page).copied(),
        }
    }

    /// Insert a page that is known to be absent.
    fn insert(&mut self, page: u64, frame: u32) {
        match self {
            PageTable::Dense {
                slots, resident, ..
            } => {
                let i = page as usize;
                if i >= slots.len() {
                    let new_len = (i + 1).next_power_of_two().max(64);
                    slots.resize(new_len, NIL);
                }
                debug_assert_eq!(slots[i], NIL);
                slots[i] = frame;
                *resident += 1;
            }
            PageTable::BTree { map, .. } => {
                map.insert(page, frame);
            }
        }
    }

    /// Remove a page that is known to be present.
    fn remove(&mut self, page: u64) {
        match self {
            PageTable::Dense {
                slots, resident, ..
            } => {
                debug_assert_ne!(slots[page as usize], NIL);
                slots[page as usize] = NIL;
                *resident -= 1;
            }
            PageTable::BTree { map, .. } => {
                map.remove(&page);
            }
        }
    }

    #[inline]
    fn resident(&self) -> usize {
        match self {
            PageTable::Dense { resident, .. } => *resident,
            PageTable::BTree { map, .. } => map.len(),
        }
    }

    fn mark_seen(&mut self, page: u64) {
        match self {
            PageTable::Dense { seen, .. } => {
                let word = (page / 64) as usize;
                if word >= seen.len() {
                    let new_len = (word + 1).next_power_of_two().max(8);
                    seen.resize(new_len, 0);
                }
                seen[word] |= 1 << (page % 64);
            }
            PageTable::BTree { seen, .. } => {
                seen.insert(page);
            }
        }
    }

    #[inline]
    fn was_seen(&self, page: u64) -> bool {
        match self {
            PageTable::Dense { seen, .. } => seen
                .get((page / 64) as usize)
                .is_some_and(|w| w & (1 << (page % 64)) != 0),
            PageTable::BTree { seen, .. } => seen.contains(&page),
        }
    }

    /// Drop residency and history, keeping allocations for reuse.
    fn clear(&mut self) {
        match self {
            PageTable::Dense {
                slots,
                resident,
                seen,
            } => {
                slots.iter_mut().for_each(|s| *s = NIL);
                seen.iter_mut().for_each(|w| *w = 0);
                *resident = 0;
            }
            PageTable::BTree { map, seen } => {
                map.clear();
                seen.clear();
            }
        }
    }
}

/// An LRU buffer pool. See the crate docs.
#[derive(Debug)]
pub struct BufferPool {
    cap: usize,
    frames: Vec<Frame>,
    table: PageTable,
    free: Vec<u32>,
    /// LRU list head (least recent) and tail (most recent) among resident
    /// frames; pinned frames stay in the list but are skipped by eviction.
    head: u32,
    tail: u32,
    stats: PoolStats,
    /// Dirty resident frames right now, maintained on every clean<->dirty
    /// transition so [`BufferPool::dirty_count`] is O(1) — the metrics
    /// sampler reads it on every cadence boundary.
    dirty_now: usize,
    /// Event journal, disabled (and costless beyond one branch) by default.
    journal: Option<Vec<PoolEvent>>,
}

impl BufferPool {
    /// A pool with `capacity` frames (must be >= 1), using the dense
    /// page-table fast path.
    pub fn new(capacity: usize) -> BufferPool {
        Self::with_table(
            capacity,
            PageTable::Dense {
                slots: Vec::new(),
                resident: 0,
                seen: Vec::new(),
            },
        )
    }

    /// A pool backed by the original `BTreeMap` page table.
    ///
    /// Behaviourally identical to [`BufferPool::new`] — the property test
    /// in `tests/` replays random traces against both and asserts equal
    /// `Access` results, evictions and [`PoolStats`]; `pioqo-bench` uses
    /// it as the baseline of the page-access A/B microbenchmark.
    pub fn new_reference(capacity: usize) -> BufferPool {
        Self::with_table(
            capacity,
            PageTable::BTree {
                map: BTreeMap::new(),
                seen: BTreeSet::new(),
            },
        )
    }

    fn with_table(capacity: usize, table: PageTable) -> BufferPool {
        assert!(capacity >= 1, "pool needs at least one frame");
        assert!(capacity < NIL as usize, "pool too large for u32 links");
        BufferPool {
            cap: capacity,
            frames: Vec::new(),
            table,
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: PoolStats::default(),
            dirty_now: 0,
            journal: None,
        }
    }

    /// Enable or disable the event journal. While enabled, every hit,
    /// miss, refetch, prefetch hit and eviction is appended to an internal
    /// buffer the caller drains with [`BufferPool::take_events`].
    /// Disabling clears any undrained entries.
    pub fn set_event_log(&mut self, enabled: bool) {
        self.journal = if enabled { Some(Vec::new()) } else { None };
    }

    /// Move every journaled event (in occurrence order) into `out`.
    /// No-op when the journal is disabled.
    pub fn take_events(&mut self, out: &mut Vec<PoolEvent>) {
        if let Some(j) = &mut self.journal {
            out.append(j);
        }
    }

    #[inline]
    fn log(&mut self, ev: PoolEvent) {
        if let Some(j) = &mut self.journal {
            j.push(ev);
        }
    }

    /// Capacity in frames.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Resident page count.
    pub fn len(&self) -> usize {
        self.table.resident()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.table.resident() == 0
    }

    /// Counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// True if `page` is resident (no side effects, no pinning).
    pub fn contains(&self, page: u64) -> bool {
        self.table.get(page).is_some()
    }

    /// Number of resident pages within `[base, base+len)` — the cached-page
    /// statistic the optimizer consults per table/index extent.
    pub fn resident_in_range(&self, base: u64, len: u64) -> u64 {
        if (self.table.resident() as u64) <= len {
            // Fewer residents than range pages: walk the LRU list.
            let mut count = 0u64;
            let mut cur = self.head;
            while cur != NIL {
                let f = &self.frames[cur as usize];
                if f.page >= base && f.page < base + len {
                    count += 1;
                }
                cur = f.next;
            }
            count
        } else {
            (base..base + len)
                .filter(|&p| self.table.get(p).is_some())
                .count() as u64
        }
    }

    fn detach(&mut self, idx: u32) {
        let f = self.frames[idx as usize];
        match f.prev {
            NIL => self.head = f.next,
            p => self.frames[p as usize].next = f.next,
        }
        match f.next {
            NIL => self.tail = f.prev,
            n => self.frames[n as usize].prev = f.prev,
        }
        self.frames[idx as usize].prev = NIL;
        self.frames[idx as usize].next = NIL;
    }

    fn push_mru(&mut self, idx: u32) {
        self.frames[idx as usize].prev = self.tail;
        self.frames[idx as usize].next = NIL;
        match self.tail {
            NIL => self.head = idx,
            t => self.frames[t as usize].next = idx,
        }
        self.tail = idx;
    }

    /// Request `page` for reading. On [`Access::Hit`] the page is pinned
    /// and promoted to MRU; on [`Access::Miss`] the caller must do the I/O
    /// and then [`admit`](BufferPool::admit) the page.
    pub fn request(&mut self, page: u64) -> Access {
        if let Some(idx) = self.table.get(page) {
            self.stats.hits += 1;
            if self.frames[idx as usize].prefetched {
                self.stats.prefetch_hits += 1;
                self.frames[idx as usize].prefetched = false;
                self.log(PoolEvent::PrefetchHit(page));
            } else {
                self.log(PoolEvent::Hit(page));
            }
            self.frames[idx as usize].pins += 1;
            self.detach(idx);
            self.push_mru(idx);
            Access::Hit
        } else {
            self.stats.misses += 1;
            if self.table.was_seen(page) {
                self.stats.refetches += 1;
                self.log(PoolEvent::Refetch(page));
            } else {
                self.log(PoolEvent::Miss(page));
            }
            Access::Miss
        }
    }

    /// Make `page` resident and pinned after a demand-read I/O. Evicts the
    /// LRU unpinned frame when full. Admitting an already-resident page
    /// just pins it (two workers can race on the same miss).
    pub fn admit(&mut self, page: u64) -> Result<(), PoolError> {
        self.admit_inner(page, false, true)
    }

    /// Make `page` resident *unpinned*, as an asynchronous prefetch
    /// completion does. No-op if already resident.
    pub fn admit_prefetched(&mut self, page: u64) -> Result<(), PoolError> {
        self.admit_inner(page, true, false)
    }

    fn admit_inner(&mut self, page: u64, prefetched: bool, pin: bool) -> Result<(), PoolError> {
        if let Some(idx) = self.table.get(page) {
            if pin {
                self.frames[idx as usize].pins += 1;
                self.detach(idx);
                self.push_mru(idx);
            }
            return Ok(());
        }
        self.table.mark_seen(page);
        if prefetched {
            self.stats.prefetch_admissions += 1;
        }
        let idx = if let Some(idx) = self.free.pop() {
            idx
        } else if self.frames.len() < self.cap {
            self.frames.push(Frame {
                page: 0,
                pins: 0,
                prefetched: false,
                dirty: false,
                prev: NIL,
                next: NIL,
            });
            (self.frames.len() - 1) as u32
        } else {
            self.evict_lru()?
        };
        self.frames[idx as usize] = Frame {
            page,
            pins: u32::from(pin),
            prefetched,
            dirty: false,
            prev: NIL,
            next: NIL,
        };
        self.table.insert(page, idx);
        self.push_mru(idx);
        Ok(())
    }

    /// Evict the least-recently-used unpinned *clean* frame; returns its
    /// index. Dirty frames are skipped like pinned ones: dropping a dirty
    /// frame would lose an update that may not be WAL-durable yet, so the
    /// flusher — not the eviction path — is the only way out of dirty.
    fn evict_lru(&mut self) -> Result<u32, PoolError> {
        let mut cur = self.head;
        while cur != NIL {
            if self.frames[cur as usize].pins == 0 && !self.frames[cur as usize].dirty {
                let page = self.frames[cur as usize].page;
                self.detach(cur);
                self.table.remove(page);
                self.stats.evictions += 1;
                self.log(PoolEvent::Evict(page));
                return Ok(cur);
            }
            cur = self.frames[cur as usize].next;
        }
        Err(PoolError::AllPinned)
    }

    /// Mark a resident page dirty (modified in memory, not yet written
    /// back). Idempotent: re-dirtying a dirty page counts nothing. The
    /// page need not be pinned — the write path typically dirties while
    /// pinned, but the bit itself is what protects the frame from
    /// eviction.
    pub fn mark_dirty(&mut self, page: u64) -> Result<(), PoolError> {
        let idx = self.table.get(page).ok_or(PoolError::NotResident(page))?;
        let f = &mut self.frames[idx as usize];
        if !f.dirty {
            f.dirty = true;
            self.dirty_now += 1;
            self.stats.pages_dirtied += 1;
            self.log(PoolEvent::Dirty(page));
        }
        Ok(())
    }

    /// Mark a resident page clean after its image became durable on media.
    /// Idempotent on already-clean pages.
    pub fn mark_clean(&mut self, page: u64) -> Result<(), PoolError> {
        let idx = self.table.get(page).ok_or(PoolError::NotResident(page))?;
        let f = &mut self.frames[idx as usize];
        if f.dirty {
            f.dirty = false;
            self.dirty_now -= 1;
            self.stats.pages_flushed += 1;
            self.log(PoolEvent::Flush(page));
        }
        Ok(())
    }

    /// True if `page` is resident and dirty.
    pub fn is_dirty(&self, page: u64) -> bool {
        self.table
            .get(page)
            .is_some_and(|idx| self.frames[idx as usize].dirty)
    }

    /// Number of dirty resident pages (O(1), maintained on transitions).
    pub fn dirty_count(&self) -> usize {
        self.dirty_now
    }

    /// Append every dirty page to `out` in LRU order (coldest first), the
    /// order a background flusher wants to write them back in.
    pub fn dirty_pages(&self, out: &mut Vec<u64>) {
        let mut cur = self.head;
        while cur != NIL {
            let f = &self.frames[cur as usize];
            if f.dirty {
                out.push(f.page);
            }
            cur = f.next;
        }
    }

    /// Release one pin on `page`.
    pub fn unpin(&mut self, page: u64) -> Result<(), PoolError> {
        let idx = self.table.get(page).ok_or(PoolError::NotPinned(page))?;
        let f = &mut self.frames[idx as usize];
        if f.pins == 0 {
            return Err(PoolError::NotPinned(page));
        }
        f.pins -= 1;
        Ok(())
    }

    /// Drop every resident page and forget refetch history — the paper
    /// flushes the buffer pool at the start of each experiment (§3.2).
    /// Counters survive so callers may snapshot them first.
    ///
    /// # Panics
    /// Panics when any frame is still pinned **or dirty**: dropping a
    /// dirty frame would discard an update that may not be WAL-durable.
    /// Write back (and [`mark_clean`](Self::mark_clean)) first, or model a
    /// crash explicitly with [`discard_all`](Self::discard_all).
    pub fn flush_all(&mut self) {
        assert!(
            self.frames.iter().all(|f| f.pins == 0 || f.page == 0),
            "flush with pinned pages"
        );
        assert!(
            self.frames.iter().all(|f| !f.dirty),
            "flush with dirty pages: un-flushed updates would be dropped"
        );
        self.table.clear();
        self.frames.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Drop everything *unconditionally*, pinned and dirty frames
    /// included — the in-memory state simply ceases to exist, as it does
    /// at a crash. Only crash-modeling callers should use this; normal
    /// teardown goes through [`flush_all`](Self::flush_all).
    pub fn discard_all(&mut self) {
        self.table.clear();
        self.frames.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.dirty_now = 0;
    }

    /// Reset counters to zero.
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    /// Invariant checker used by tests: list membership matches the map,
    /// no duplicate pages, length within capacity.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert!(self.table.resident() <= self.cap);
        let mut seen = 0usize;
        let mut dirty = 0usize;
        let mut cur = self.head;
        let mut prev = NIL;
        while cur != NIL {
            let f = &self.frames[cur as usize];
            assert_eq!(f.prev, prev, "broken prev link");
            assert_eq!(self.table.get(f.page), Some(cur), "table/list mismatch");
            seen += 1;
            dirty += usize::from(f.dirty);
            prev = cur;
            cur = f.next;
        }
        assert_eq!(seen, self.table.resident(), "list length != resident count");
        assert_eq!(self.tail, prev, "tail mismatch");
        assert_eq!(dirty, self.dirty_now, "stale dirty_now counter");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_admit() {
        let mut p = BufferPool::new(4);
        assert_eq!(p.request(10), Access::Miss);
        p.admit(10).expect("admit");
        p.unpin(10).expect("unpin");
        assert_eq!(p.request(10), Access::Hit);
        p.unpin(10).expect("unpin");
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
        p.check_invariants();
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = BufferPool::new(2);
        for page in [1u64, 2] {
            assert_eq!(p.request(page), Access::Miss);
            p.admit(page).expect("admit");
            p.unpin(page).expect("unpin");
        }
        // Touch 1 so 2 becomes LRU.
        assert_eq!(p.request(1), Access::Hit);
        p.unpin(1).expect("unpin");
        assert_eq!(p.request(3), Access::Miss);
        p.admit(3).expect("admit");
        p.unpin(3).expect("unpin");
        assert!(p.contains(1));
        assert!(!p.contains(2), "LRU page 2 should have been evicted");
        assert!(p.contains(3));
        assert_eq!(p.stats().evictions, 1);
        p.check_invariants();
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let mut p = BufferPool::new(2);
        p.request(1);
        p.admit(1).expect("admit"); // stays pinned
        p.request(2);
        p.admit(2).expect("admit");
        p.unpin(2).expect("unpin");
        p.request(3);
        p.admit(3).expect("admit"); // must evict 2, not pinned 1
        assert!(p.contains(1));
        assert!(!p.contains(2));
        p.check_invariants();
    }

    #[test]
    fn all_pinned_is_an_error() {
        let mut p = BufferPool::new(1);
        p.request(1);
        p.admit(1).expect("admit");
        assert_eq!(p.admit(2), Err(PoolError::AllPinned));
    }

    #[test]
    fn refetch_accounting() {
        let mut p = BufferPool::new(1);
        p.request(1);
        p.admit(1).expect("admit");
        p.unpin(1).expect("unpin");
        p.request(2);
        p.admit(2).expect("admit"); // evicts 1
        p.unpin(2).expect("unpin");
        assert_eq!(p.request(1), Access::Miss); // refetch!
        assert_eq!(p.stats().refetches, 1);
        assert_eq!(p.stats().misses, 3);
    }

    #[test]
    fn prefetch_admission_and_hit() {
        let mut p = BufferPool::new(4);
        p.admit_prefetched(7).expect("admit");
        assert_eq!(p.stats().prefetch_admissions, 1);
        assert_eq!(p.request(7), Access::Hit);
        p.unpin(7).expect("unpin");
        assert_eq!(p.stats().prefetch_hits, 1);
        // Second hit is an ordinary hit, not a prefetch hit.
        assert_eq!(p.request(7), Access::Hit);
        p.unpin(7).expect("unpin");
        assert_eq!(p.stats().prefetch_hits, 1);
    }

    #[test]
    fn double_admit_races_pin_twice() {
        let mut p = BufferPool::new(2);
        p.request(5);
        p.admit(5).expect("admit");
        p.admit(5).expect("second admit pins again");
        p.unpin(5).expect("unpin 1");
        p.unpin(5).expect("unpin 2");
        assert_eq!(p.unpin(5), Err(PoolError::NotPinned(5)));
    }

    #[test]
    fn resident_in_range_counts_extent_pages() {
        let mut p = BufferPool::new(8);
        for page in [100u64, 101, 105, 200] {
            p.admit_prefetched(page).expect("admit");
        }
        assert_eq!(p.resident_in_range(100, 10), 3);
        assert_eq!(p.resident_in_range(0, 50), 0);
        assert_eq!(p.resident_in_range(200, 1), 1);
    }

    #[test]
    fn flush_all_clears_residency_and_history() {
        let mut p = BufferPool::new(2);
        p.request(1);
        p.admit(1).expect("admit");
        p.unpin(1).expect("unpin");
        p.flush_all();
        assert!(p.is_empty());
        assert_eq!(p.request(1), Access::Miss);
        // Not a refetch: flush cleared the history, matching the paper's
        // cold-start protocol.
        assert_eq!(p.stats().refetches, 0);
    }

    #[test]
    fn unpin_unknown_page_errors() {
        let mut p = BufferPool::new(2);
        assert_eq!(p.unpin(9), Err(PoolError::NotPinned(9)));
    }

    #[test]
    fn stats_merge_and_diff_are_inverse_field_sums() {
        let a = PoolStats {
            hits: 10,
            misses: 4,
            evictions: 2,
            refetches: 1,
            prefetch_admissions: 3,
            prefetch_hits: 2,
            pages_dirtied: 6,
            pages_flushed: 4,
        };
        let b = PoolStats {
            hits: 5,
            misses: 1,
            evictions: 0,
            refetches: 0,
            prefetch_admissions: 7,
            prefetch_hits: 1,
            pages_dirtied: 2,
            pages_flushed: 2,
        };
        let mut sum = a.clone();
        sum.merge(&b);
        assert_eq!(sum.hits, 15);
        assert_eq!(sum.prefetch_admissions, 10);
        assert_eq!(sum.pages_dirtied, 8);
        assert_eq!(sum.pages_flushed, 6);
        let back = sum.diff(&b);
        assert_eq!(back.hits, a.hits);
        assert_eq!(back.misses, a.misses);
        assert_eq!(back.evictions, a.evictions);
        assert_eq!(back.refetches, a.refetches);
        assert_eq!(back.prefetch_admissions, a.prefetch_admissions);
        assert_eq!(back.prefetch_hits, a.prefetch_hits);
        assert_eq!(back.pages_dirtied, a.pages_dirtied);
        assert_eq!(back.pages_flushed, a.pages_flushed);
    }

    #[test]
    fn dirty_pages_resist_eviction_and_flush_cleans() {
        let mut p = BufferPool::new(2);
        p.request(1);
        p.admit(1).expect("admit");
        p.mark_dirty(1).expect("resident page can be dirtied");
        p.unpin(1).expect("unpin");
        p.request(2);
        p.admit(2).expect("admit");
        p.unpin(2).expect("unpin");
        // Page 1 is LRU but dirty; eviction must take clean page 2.
        p.request(3);
        p.admit(3).expect("admit evicts the clean frame");
        p.unpin(3).expect("unpin");
        assert!(p.contains(1), "dirty page must survive eviction pressure");
        assert!(!p.contains(2));
        assert!(p.is_dirty(1));
        assert_eq!(p.dirty_count(), 1);
        let mut dirty = Vec::new();
        p.dirty_pages(&mut dirty);
        assert_eq!(dirty, vec![1]);
        p.mark_clean(1).expect("clean after durable writeback");
        assert!(!p.is_dirty(1));
        assert_eq!(p.stats().pages_dirtied, 1);
        assert_eq!(p.stats().pages_flushed, 1);
        p.check_invariants();
    }

    #[test]
    fn mark_dirty_is_idempotent_and_requires_residency() {
        let mut p = BufferPool::new(2);
        assert_eq!(p.mark_dirty(9), Err(PoolError::NotResident(9)));
        assert_eq!(p.mark_clean(9), Err(PoolError::NotResident(9)));
        p.request(1);
        p.admit(1).expect("admit");
        p.mark_dirty(1).expect("dirty");
        p.mark_dirty(1).expect("re-dirty is a no-op");
        assert_eq!(p.stats().pages_dirtied, 1);
        p.mark_clean(1).expect("clean");
        p.mark_clean(1).expect("re-clean is a no-op");
        assert_eq!(p.stats().pages_flushed, 1);
        p.unpin(1).expect("unpin");
    }

    #[test]
    fn all_dirty_pool_is_exhausted() {
        let mut p = BufferPool::new(1);
        p.request(1);
        p.admit(1).expect("admit");
        p.mark_dirty(1).expect("dirty");
        p.unpin(1).expect("unpin");
        assert_eq!(p.admit(2), Err(PoolError::AllPinned));
    }

    #[test]
    #[should_panic(expected = "flush with dirty pages")]
    fn flush_all_refuses_dirty_pages() {
        let mut p = BufferPool::new(2);
        p.request(1);
        p.admit(1).expect("admit");
        p.mark_dirty(1).expect("dirty");
        p.unpin(1).expect("unpin");
        p.flush_all();
    }

    #[test]
    fn discard_all_drops_dirty_state_like_a_crash() {
        let mut p = BufferPool::new(2);
        p.request(1);
        p.admit(1).expect("admit");
        p.mark_dirty(1).expect("dirty");
        p.discard_all();
        assert!(p.is_empty());
        assert_eq!(p.dirty_count(), 0);
        p.check_invariants();
    }

    #[test]
    fn dirty_events_are_journaled() {
        let mut p = BufferPool::new(2);
        p.set_event_log(true);
        p.request(1);
        p.admit(1).expect("admit");
        p.mark_dirty(1).expect("dirty");
        p.mark_clean(1).expect("clean");
        p.unpin(1).expect("unpin");
        let mut evs = Vec::new();
        p.take_events(&mut evs);
        assert_eq!(
            evs,
            vec![PoolEvent::Miss(1), PoolEvent::Dirty(1), PoolEvent::Flush(1)]
        );
    }

    #[test]
    fn event_journal_records_in_order_and_matches_stats() {
        let mut p = BufferPool::new(1);
        p.set_event_log(true);
        p.request(1);
        p.admit(1).expect("admit");
        p.unpin(1).expect("unpin");
        p.request(2);
        p.admit(2).expect("admit"); // evicts 1
        p.unpin(2).expect("unpin");
        p.request(1); // refetch
        let mut evs = Vec::new();
        p.take_events(&mut evs);
        assert_eq!(
            evs,
            vec![
                PoolEvent::Miss(1),
                PoolEvent::Miss(2),
                PoolEvent::Evict(1),
                PoolEvent::Refetch(1),
            ]
        );
        // Drained: a second take yields nothing.
        evs.clear();
        p.take_events(&mut evs);
        assert!(evs.is_empty());
        // Journal off by default and after disabling.
        p.set_event_log(false);
        p.request(5);
        p.take_events(&mut evs);
        assert!(evs.is_empty());
    }

    #[test]
    fn prefetch_hit_is_journaled_distinctly() {
        let mut p = BufferPool::new(4);
        p.set_event_log(true);
        p.admit_prefetched(7).expect("admit");
        assert_eq!(p.request(7), Access::Hit);
        p.unpin(7).expect("unpin");
        assert_eq!(p.request(7), Access::Hit);
        p.unpin(7).expect("unpin");
        let mut evs = Vec::new();
        p.take_events(&mut evs);
        assert_eq!(evs, vec![PoolEvent::PrefetchHit(7), PoolEvent::Hit(7)]);
    }

    #[test]
    fn single_frame_pool_works() {
        let mut p = BufferPool::new(1);
        for page in 0..100u64 {
            assert_eq!(p.request(page), Access::Miss);
            p.admit(page).expect("admit");
            p.unpin(page).expect("unpin");
        }
        assert_eq!(p.len(), 1);
        assert_eq!(p.stats().evictions, 99);
        p.check_invariants();
    }
}
