//! Write-ahead log: append, group-commit sealing, durability tracking,
//! and the prefix-valid recovery scan.
//!
//! ## Design
//!
//! The WAL is **redo-from-origin**: recovery replays every durable record
//! from the start of the WAL extent. To make replay independent of
//! (possibly torn) data-page media, the write path logs a **full page
//! image on the first touch of each page** (`WalOp::PageImage`, the
//! post-update image) and incremental [`WalOp::Update`]s afterwards — so
//! for every page the WAL ever touched, replay starts from a logged base,
//! never from disk. [`WalOp::Checkpoint`] records mark writeback progress
//! (all updates `<= flushed_through` are on media); they bound how stale
//! the media can be but are *not* needed for replay correctness.
//!
//! ## Segments
//!
//! Records become durable in **segments**: a group-commit tick seals all
//! pending records into one contiguous page-aligned image (header: magic,
//! sequence number, record count, payload length, FNV-1a checksum over the
//! payload) which the caller writes to the WAL extent as a single block
//! write. A full page image (page-sized payload) cannot fit in one WAL
//! page next to its header, which is exactly why segments span pages.
//!
//! Durability is **contiguous**: a segment's records only count as durable
//! once every earlier segment is durable too, because the recovery scan
//! ([`Wal::scan`]) stops at the first invalid/missing segment — anything
//! after a hole is unreachable and must never be acknowledged.
//!
//! This module is pure bytes and counters: it owns no clock (group-commit
//! *timing* lives in the discrete-event loop) and performs no I/O (the
//! caller writes sealed images through the device model and reports
//! completion via [`Wal::mark_durable`]).

use serde::{Deserialize, Serialize};

/// Log sequence number. Monotonic from 1; 0 means "nothing".
pub type Lsn = u64;

/// Magic leading every WAL segment header ("PWAL").
pub const WAL_MAGIC: u32 = 0x5057_414C;

/// Bytes of a segment header (magic, seq, n_records, payload_len,
/// checksum, reserved).
pub const SEGMENT_HEADER_BYTES: usize = 32;

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// An incremental row update: set column value of `slot` on `page`.
    Update {
        /// Device page the row lives on.
        page: u64,
        /// Row slot within the page.
        slot: u32,
        /// New value of the updated column.
        value: u32,
    },
    /// Full post-update page image, logged on the first touch of a page so
    /// replay never depends on data-page media.
    PageImage {
        /// Device page the image belongs to.
        page: u64,
        /// The complete encoded page (one device page).
        image: Vec<u8>,
    },
    /// Writeback progress marker: every update with `lsn <=
    /// flushed_through` is durably on media.
    Checkpoint {
        /// Highest update LSN whose page image is durably flushed.
        flushed_through: Lsn,
    },
}

/// A logged operation with its assigned LSN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Position in the log; monotonic from 1.
    pub lsn: Lsn,
    /// The operation.
    pub op: WalOp,
}

/// A group-committed batch of records, encoded and page-aligned, ready to
/// be written to the WAL extent as one block write.
#[derive(Debug, Clone)]
pub struct SealedSegment {
    /// Segment sequence number (0-based, consecutive).
    pub seq: u64,
    /// First device page of the segment within the WAL extent.
    pub start_page: u64,
    /// Number of device pages the segment spans.
    pub pages: u32,
    /// Highest LSN contained in the segment.
    pub last_lsn: Lsn,
    /// The page-aligned encoded image (`pages * page_size` bytes).
    pub image: Vec<u8>,
}

/// Counters exposed by the WAL.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// Segments sealed by group commit.
    pub segments: u64,
    /// WAL-extent pages consumed by sealed segments.
    pub pages: u64,
    /// Checkpoint records appended.
    pub checkpoints: u64,
}

/// Result of the recovery scan over a WAL extent.
#[derive(Debug, Clone, Default)]
pub struct WalScan {
    /// Every record in the valid durable prefix, in LSN order.
    pub records: Vec<WalRecord>,
    /// Valid segments scanned before the stop.
    pub segments: u64,
    /// Highest LSN recovered (0 when the log is empty).
    pub durable_lsn: Lsn,
    /// Checkpoint records seen in the prefix.
    pub checkpoints: u64,
}

/// In-flight segment bookkeeping: sealed, written, awaiting completion.
#[derive(Debug, Clone, Copy)]
struct SegMeta {
    start_page: u64,
    last_lsn: Lsn,
    durable: bool,
}

/// The write-ahead log over a fixed extent of device pages.
#[derive(Debug)]
pub struct Wal {
    base: u64,
    capacity_pages: u64,
    page_size: u32,
    next_lsn: Lsn,
    next_seq: u64,
    /// Pages of the extent consumed by sealed segments.
    cursor: u64,
    pending: Vec<WalRecord>,
    /// Sealed segments not yet durable, in seal (= sequence) order.
    inflight: Vec<SegMeta>,
    durable_lsn: Lsn,
    full: bool,
    stats: WalStats,
}

impl Wal {
    /// A WAL over `capacity_pages` device pages starting at `base`.
    pub fn new(base: u64, capacity_pages: u64, page_size: u32) -> Self {
        assert!(capacity_pages >= 1, "WAL extent cannot be empty");
        assert!(
            page_size as usize > SEGMENT_HEADER_BYTES,
            "page too small for a segment header"
        );
        Wal {
            base,
            capacity_pages,
            page_size,
            next_lsn: 1,
            next_seq: 0,
            cursor: 0,
            pending: Vec::new(),
            inflight: Vec::new(),
            durable_lsn: 0,
            full: false,
            stats: WalStats::default(),
        }
    }

    /// First device page of the extent.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Extent capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Counters.
    pub fn stats(&self) -> &WalStats {
        &self.stats
    }

    /// Append an operation; returns its LSN. Records sit in the pending
    /// buffer (volatile) until a group-commit [`seal`](Self::seal).
    pub fn append(&mut self, op: WalOp) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.stats.records += 1;
        if matches!(op, WalOp::Checkpoint { .. }) {
            self.stats.checkpoints += 1;
        }
        self.pending.push(WalRecord { lsn, op });
        lsn
    }

    /// Highest LSN assigned so far (0 when nothing was appended).
    pub fn last_lsn(&self) -> Lsn {
        self.next_lsn - 1
    }

    /// Highest LSN known durable under the contiguity rule.
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_lsn
    }

    /// True when appended records await sealing.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// True when sealed segments await their write completion.
    pub fn has_inflight(&self) -> bool {
        !self.inflight.is_empty()
    }

    /// True once a seal was refused because the extent is out of space.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Group commit: encode every pending record into one page-aligned
    /// segment. Returns `None` when nothing is pending or the extent has
    /// no room (then [`is_full`](Self::is_full) turns on and the records
    /// stay pending — the write path must stop acknowledging commits).
    pub fn seal(&mut self) -> Option<SealedSegment> {
        if self.pending.is_empty() {
            return None;
        }
        let payload = encode_records(&self.pending);
        let total = SEGMENT_HEADER_BYTES + payload.len();
        let pages = total.div_ceil(self.page_size as usize) as u64;
        if self.cursor + pages > self.capacity_pages {
            self.full = true;
            return None;
        }
        let mut image = vec![0u8; (pages * self.page_size as u64) as usize];
        image[0..4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
        image[4..12].copy_from_slice(&self.next_seq.to_le_bytes());
        image[12..16].copy_from_slice(&(self.pending.len() as u32).to_le_bytes());
        image[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        image[20..24].copy_from_slice(&fnv1a(&payload).to_le_bytes());
        image[SEGMENT_HEADER_BYTES..SEGMENT_HEADER_BYTES + payload.len()].copy_from_slice(&payload);
        let seg = SealedSegment {
            seq: self.next_seq,
            start_page: self.base + self.cursor,
            pages: pages as u32,
            last_lsn: self.pending.last().expect("pending checked non-empty").lsn,
            image,
        };
        self.inflight.push(SegMeta {
            start_page: seg.start_page,
            last_lsn: seg.last_lsn,
            durable: false,
        });
        self.pending.clear();
        self.next_seq += 1;
        self.cursor += pages;
        self.stats.segments += 1;
        self.stats.pages += pages;
        Some(seg)
    }

    /// Report that the segment starting at `start_page` finished its write
    /// durably. Advances [`durable_lsn`](Self::durable_lsn) over the
    /// longest contiguous durable prefix of sealed segments.
    ///
    /// # Panics
    /// Panics when no in-flight segment starts at `start_page`.
    pub fn mark_durable(&mut self, start_page: u64) {
        let seg = self
            .inflight
            .iter_mut()
            .find(|s| s.start_page == start_page)
            .expect("mark_durable on unknown segment");
        seg.durable = true;
        while let Some(first) = self.inflight.first() {
            if !first.durable {
                break;
            }
            self.durable_lsn = first.last_lsn;
            self.inflight.remove(0);
        }
    }

    /// Recovery scan: walk the extent from the start, validating segment
    /// headers, sequence numbers and payload checksums, and stop at the
    /// first hole or damage. `read_page` returns the media image of a
    /// device page (or `None` when the page was never written).
    pub fn scan<F>(base: u64, capacity_pages: u64, page_size: u32, mut read_page: F) -> WalScan
    where
        F: FnMut(u64) -> Option<Vec<u8>>,
    {
        let mut out = WalScan::default();
        let mut cursor = 0u64;
        let mut expect_seq = 0u64;
        while cursor < capacity_pages {
            let Some(first) = read_page(base + cursor) else {
                break;
            };
            if first.len() != page_size as usize || first.len() < SEGMENT_HEADER_BYTES {
                break;
            }
            let magic = u32::from_le_bytes(first[0..4].try_into().expect("4-byte slice"));
            if magic != WAL_MAGIC {
                break;
            }
            let seq = u64::from_le_bytes(first[4..12].try_into().expect("8-byte slice"));
            let n_records = u32::from_le_bytes(first[12..16].try_into().expect("4-byte slice"));
            let payload_len =
                u32::from_le_bytes(first[16..20].try_into().expect("4-byte slice")) as usize;
            let checksum = u32::from_le_bytes(first[20..24].try_into().expect("4-byte slice"));
            if seq != expect_seq {
                break;
            }
            let total = SEGMENT_HEADER_BYTES + payload_len;
            let pages = total.div_ceil(page_size as usize) as u64;
            if cursor + pages > capacity_pages {
                break;
            }
            // Assemble the payload across the segment's pages.
            let mut bytes = first;
            let mut whole = true;
            for p in 1..pages {
                match read_page(base + cursor + p) {
                    Some(next) if next.len() == page_size as usize => bytes.extend(next),
                    _ => {
                        whole = false;
                        break;
                    }
                }
            }
            if !whole || bytes.len() < total {
                break;
            }
            let payload = &bytes[SEGMENT_HEADER_BYTES..total];
            if fnv1a(payload) != checksum {
                break;
            }
            let Some(records) = decode_records(payload, n_records) else {
                break;
            };
            for r in &records {
                if matches!(r.op, WalOp::Checkpoint { .. }) {
                    out.checkpoints += 1;
                }
                out.durable_lsn = r.lsn;
            }
            out.records.extend(records);
            out.segments += 1;
            cursor += pages;
            expect_seq += 1;
        }
        out
    }
}

/// FNV-1a over `bytes` — same construction as the storage page codec, so
/// a single damaged payload byte is detected with overwhelming
/// probability.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

const TAG_UPDATE: u8 = 1;
const TAG_PAGE_IMAGE: u8 = 2;
const TAG_CHECKPOINT: u8 = 3;

fn encode_records(records: &[WalRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        out.extend(r.lsn.to_le_bytes());
        match &r.op {
            WalOp::Update { page, slot, value } => {
                out.push(TAG_UPDATE);
                out.extend(page.to_le_bytes());
                out.extend(slot.to_le_bytes());
                out.extend(value.to_le_bytes());
            }
            WalOp::PageImage { page, image } => {
                out.push(TAG_PAGE_IMAGE);
                out.extend(page.to_le_bytes());
                out.extend((image.len() as u32).to_le_bytes());
                out.extend(image.iter());
            }
            WalOp::Checkpoint { flushed_through } => {
                out.push(TAG_CHECKPOINT);
                out.extend(flushed_through.to_le_bytes());
            }
        }
    }
    out
}

/// Decode exactly `n_records` records from a checksum-verified payload.
/// Returns `None` on any structural mismatch (truncation, bad tag,
/// trailing garbage) — the scan treats that like damage and stops.
fn decode_records(payload: &[u8], n_records: u32) -> Option<Vec<WalRecord>> {
    let mut records = Vec::with_capacity(n_records as usize);
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let s = payload.get(*at..*at + n)?;
        *at += n;
        Some(s)
    };
    for _ in 0..n_records {
        let lsn = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
        let tag = take(&mut at, 1)?[0];
        let op = match tag {
            TAG_UPDATE => WalOp::Update {
                page: u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?),
                slot: u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?),
                value: u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?),
            },
            TAG_PAGE_IMAGE => {
                let page = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
                let len = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
                let image = take(&mut at, len)?.to_vec();
                WalOp::PageImage { page, image }
            }
            TAG_CHECKPOINT => WalOp::Checkpoint {
                flushed_through: u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?),
            },
            _ => return None,
        };
        records.push(WalRecord { lsn, op });
    }
    if at != payload.len() {
        return None;
    }
    Some(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    const PS: u32 = 4096;

    /// Write sealed segments into a page map, as the device path would.
    fn write_seg(media: &mut BTreeMap<u64, Vec<u8>>, seg: &SealedSegment, page_size: u32) {
        for p in 0..seg.pages as u64 {
            let from = (p * page_size as u64) as usize;
            media.insert(
                seg.start_page + p,
                seg.image[from..from + page_size as usize].to_vec(),
            );
        }
    }

    fn scan_map(media: &BTreeMap<u64, Vec<u8>>, base: u64, cap: u64) -> WalScan {
        Wal::scan(base, cap, PS, |p| media.get(&p).cloned())
    }

    #[test]
    fn append_seal_scan_roundtrip() {
        let mut wal = Wal::new(100, 64, PS);
        let l1 = wal.append(WalOp::PageImage {
            page: 7,
            image: vec![0xAB; PS as usize],
        });
        let l2 = wal.append(WalOp::Update {
            page: 7,
            slot: 3,
            value: 42,
        });
        assert_eq!((l1, l2), (1, 2));
        let seg = wal.seal().expect("pending records seal");
        assert_eq!(seg.start_page, 100);
        assert!(seg.pages >= 2, "a full page image spans multiple WAL pages");
        assert_eq!(wal.durable_lsn(), 0, "sealed is not yet durable");
        wal.mark_durable(seg.start_page);
        assert_eq!(wal.durable_lsn(), 2);

        let mut media = BTreeMap::new();
        write_seg(&mut media, &seg, PS);
        let scan = scan_map(&media, 100, 64);
        assert_eq!(scan.segments, 1);
        assert_eq!(scan.durable_lsn, 2);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(
            scan.records[1].op,
            WalOp::Update {
                page: 7,
                slot: 3,
                value: 42
            }
        );
        match &scan.records[0].op {
            WalOp::PageImage { page, image } => {
                assert_eq!(*page, 7);
                assert_eq!(image.len(), PS as usize);
            }
            other => panic!("expected page image, got {other:?}"),
        }
    }

    #[test]
    fn scan_stops_at_damaged_segment() {
        let mut wal = Wal::new(0, 64, PS);
        let mut media = BTreeMap::new();
        let mut segs = Vec::new();
        for i in 0..3u32 {
            wal.append(WalOp::Update {
                page: 1,
                slot: i,
                value: i,
            });
            let seg = wal.seal().expect("seal");
            write_seg(&mut media, &seg, PS);
            segs.push(seg);
        }
        // Damage a payload byte of the middle segment.
        let page = segs[1].start_page;
        media.get_mut(&page).expect("segment page")[SEGMENT_HEADER_BYTES + 1] ^= 0xFF;
        let scan = scan_map(&media, 0, 64);
        assert_eq!(scan.segments, 1, "scan must stop at the damaged segment");
        assert_eq!(scan.durable_lsn, 1);
    }

    #[test]
    fn scan_stops_at_hole_even_with_valid_later_segments() {
        let mut wal = Wal::new(0, 64, PS);
        let mut media = BTreeMap::new();
        wal.append(WalOp::Update {
            page: 1,
            slot: 0,
            value: 0,
        });
        let a = wal.seal().expect("seal a");
        wal.append(WalOp::Update {
            page: 1,
            slot: 1,
            value: 1,
        });
        let b = wal.seal().expect("seal b");
        // Only b reaches media: a was in flight at the crash.
        write_seg(&mut media, &b, PS);
        let scan = scan_map(&media, 0, 64);
        assert_eq!(scan.segments, 0, "a hole hides everything after it");
        // Contiguity: marking only b durable must not advance durable_lsn.
        wal.mark_durable(b.start_page);
        assert_eq!(wal.durable_lsn(), 0);
        wal.mark_durable(a.start_page);
        assert_eq!(wal.durable_lsn(), 2, "prefix closes once a lands");
    }

    #[test]
    fn empty_extent_scans_empty() {
        let media = BTreeMap::new();
        let scan = scan_map(&media, 0, 16);
        assert_eq!(scan.segments, 0);
        assert_eq!(scan.durable_lsn, 0);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn full_extent_refuses_seal_and_flags() {
        let mut wal = Wal::new(0, 1, PS);
        wal.append(WalOp::PageImage {
            page: 0,
            image: vec![0; PS as usize],
        });
        assert!(wal.seal().is_none(), "image + header exceeds one page");
        assert!(wal.is_full());
        assert!(wal.has_pending(), "records stay pending when full");
    }

    #[test]
    fn checkpoint_records_are_counted() {
        let mut wal = Wal::new(0, 64, PS);
        wal.append(WalOp::Update {
            page: 0,
            slot: 0,
            value: 9,
        });
        wal.append(WalOp::Checkpoint { flushed_through: 1 });
        assert_eq!(wal.stats().checkpoints, 1);
        let seg = wal.seal().expect("seal");
        let mut media = BTreeMap::new();
        write_seg(&mut media, &seg, PS);
        let scan = scan_map(&media, 0, 64);
        assert_eq!(scan.checkpoints, 1);
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn sealing_is_deterministic() {
        let run = || {
            let mut wal = Wal::new(10, 32, PS);
            for i in 0..20u32 {
                wal.append(WalOp::Update {
                    page: i as u64 % 5,
                    slot: i,
                    value: i * 7,
                });
            }
            wal.seal().expect("seal").image
        };
        assert_eq!(run(), run(), "identical appends seal identical bytes");
    }
}
