//! Property test: the dense-table `BufferPool` is observationally
//! identical to the reference `BTreeMap`-backed pool.
//!
//! Both pools replay the same randomized trace of requests, admits,
//! prefetches, unpins and flushes; after every operation the `Access`
//! results, error values, resident set size and the full `PoolStats`
//! (hits, misses, evictions, refetches, prefetch counters) must agree,
//! and at the end the resident sets themselves are compared page by page.

use pioqo_bufpool::{Access, BufferPool, PoolError};
use proptest::prelude::*;

/// One step of a trace: an opcode and a page argument.
type Op = (u8, u64);

fn stats_eq(a: &BufferPool, b: &BufferPool) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        format!("{:?}", a.stats()),
        format!("{:?}", b.stats()),
        "stats diverged: dense={:?} reference={:?}",
        a.stats(),
        b.stats()
    );
    prop_assert_eq!(a.len(), b.len(), "resident counts diverged");
    Ok(())
}

/// Replay `ops` against a dense pool and a reference pool in lockstep.
fn replay(cap: usize, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut dense = BufferPool::new(cap);
    let mut reference = BufferPool::new_reference(cap);
    // Pages currently holding pins (same for both pools by induction).
    let mut pinned: Vec<u64> = Vec::new();

    for &(code, page) in ops {
        // Never wedge the trace: with every frame pinned, unpin first.
        let code = if pinned.len() >= cap { 7 } else { code };
        match code {
            // Demand request, admit on miss, sometimes keep the pin.
            0..=5 => {
                let a = dense.request(page);
                let b = reference.request(page);
                prop_assert_eq!(a, b, "request({}) diverged", page);
                if a == Access::Miss {
                    let ra = dense.admit(page);
                    let rb = reference.admit(page);
                    prop_assert_eq!(&ra, &rb, "admit({}) diverged", page);
                    if ra.is_err() {
                        stats_eq(&dense, &reference)?;
                        continue;
                    }
                }
                if code % 2 == 0 {
                    prop_assert_eq!(dense.unpin(page), Ok(()));
                    prop_assert_eq!(reference.unpin(page), Ok(()));
                } else {
                    pinned.push(page);
                }
            }
            // Asynchronous prefetch completion (admits unpinned).
            6 => {
                let ra = dense.admit_prefetched(page);
                let rb = reference.admit_prefetched(page);
                prop_assert_eq!(ra, rb, "admit_prefetched({}) diverged", page);
            }
            // Release a tracked pin (or probe an unpinned page's error).
            7 => {
                if let Some(i) = pinned
                    .len()
                    .checked_sub(1)
                    .map(|last| (page as usize) % (last + 1))
                {
                    let p = pinned.swap_remove(i);
                    prop_assert_eq!(dense.unpin(p), Ok(()));
                    prop_assert_eq!(reference.unpin(p), Ok(()));
                } else {
                    prop_assert_eq!(dense.unpin(page), Err(PoolError::NotPinned(page)));
                    prop_assert_eq!(reference.unpin(page), Err(PoolError::NotPinned(page)));
                }
            }
            // Cold-start flush (requires no pins outstanding).
            8 => {
                for p in pinned.drain(..) {
                    dense.unpin(p).expect("tracked pin");
                    reference.unpin(p).expect("tracked pin");
                }
                dense.flush_all();
                reference.flush_all();
            }
            // Read-only probes.
            _ => {
                prop_assert_eq!(dense.contains(page), reference.contains(page));
                let (base, len) = (page.saturating_sub(16), 64);
                prop_assert_eq!(
                    dense.resident_in_range(base, len),
                    reference.resident_in_range(base, len)
                );
            }
        }
        stats_eq(&dense, &reference)?;
    }

    // Final deep comparison: identical resident sets and internal
    // consistency on both backends.
    dense.check_invariants();
    reference.check_invariants();
    for &(_, page) in ops {
        prop_assert_eq!(
            dense.contains(page),
            reference.contains(page),
            "final residency of page {} diverged",
            page
        );
    }
    prop_assert_eq!(dense.resident_in_range(0, 1 << 17), dense.len() as u64);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_pool_matches_reference_model(
        cap in 1usize..48,
        ops in prop::collection::vec((0u8..10, 0u64..4096), 0usize..600),
    ) {
        replay(cap, &ops)?;
    }

    #[test]
    fn dense_pool_matches_reference_on_wide_page_domain(
        cap in 1usize..16,
        ops in prop::collection::vec((0u8..10, 0u64..100_000), 0usize..300),
    ) {
        replay(cap, &ops)?;
    }
}
