//! Selectivity sweeps and break-even search (Fig. 4, Table 2).

use crate::experiments::{Experiment, MethodSpec};
use serde::{Deserialize, Serialize};

/// One point of a runtime curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Predicate selectivity (fraction).
    pub selectivity: f64,
    /// Query runtime in seconds (virtual time).
    pub runtime_s: f64,
    /// Observed mean device queue depth.
    pub mean_qd: f64,
    /// Observed read throughput, MB/s.
    pub throughput_mb_s: f64,
}

/// Run `method` across `selectivities` on cold device+pool per point.
///
/// Points are independent cold runs (each builds its own device and pool
/// and seeds itself from the experiment config), so they fan out across
/// the harness thread pool; results come back in selectivity order and
/// are identical at any thread count.
pub fn runtime_curve(
    exp: &Experiment,
    method: MethodSpec,
    selectivities: &[f64],
) -> Vec<SweepPoint> {
    pioqo_simkit::par::par_map(exp.cfg.seed, selectivities, |_rng, &sel| {
        let m = exp
            .run_cold(method, sel)
            .expect("sweep experiment scan completes without pool exhaustion");
        SweepPoint {
            selectivity: sel,
            runtime_s: m.runtime.as_secs_f64(),
            mean_qd: m.io.mean_queue_depth,
            throughput_mb_s: m.io.throughput_mb_s,
        }
    })
}

/// The selectivity at which the runtime curves of `index_method` and
/// `table_method` cross — the paper's *break-even point*. Bisection on the
/// sign of `t_index − t_table` within `[lo, hi]`; assumes the index method
/// wins at `lo` and loses at `hi` (returns a bound if not).
pub fn break_even(
    exp: &Experiment,
    index_method: MethodSpec,
    table_method: MethodSpec,
    lo: f64,
    hi: f64,
    iterations: u32,
) -> f64 {
    // The bisection itself is inherently sequential, but the two cold
    // runs compared at each probe are independent — run them as a pair on
    // the harness pool.
    let faster = |sel: f64| {
        let methods = [index_method, table_method];
        let times = pioqo_simkit::par::par_map(exp.cfg.seed, &methods, |_rng, &m| {
            exp.run_cold(m, sel)
                .expect("sweep break-even scan completes without pool exhaustion")
                .runtime
        });
        times[0] < times[1]
    };
    let mut lo = lo;
    let mut hi = hi;
    if !faster(lo) {
        return lo; // index never wins in this range
    }
    if faster(hi) {
        return hi; // index always wins in this range
    }
    for _ in 0..iterations {
        let mid = (lo * hi).sqrt().max((lo + hi) / 4.0); // geometric-ish mid
        if faster(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentConfig;

    fn small_exp(name: &str) -> Experiment {
        Experiment::build(
            ExperimentConfig::by_name(name)
                .expect("exists")
                .scaled_down(200),
        )
    }

    #[test]
    fn curves_are_monotone_enough_for_is() {
        // IS runtime grows with selectivity (more rows, more I/O).
        let exp = small_exp("E33-SSD");
        let pts = runtime_curve(
            &exp,
            MethodSpec::Is {
                workers: 1,
                prefetch: 0,
            },
            &[0.001, 0.01, 0.1],
        );
        assert!(pts[0].runtime_s < pts[2].runtime_s);
    }

    #[test]
    fn fts_runtime_flat_across_selectivity() {
        let exp = small_exp("E33-SSD");
        let pts = runtime_curve(&exp, MethodSpec::Fts { workers: 1 }, &[0.001, 0.5]);
        let ratio = pts[1].runtime_s / pts[0].runtime_s;
        assert!((0.8..=1.3).contains(&ratio), "FTS should not care: {ratio}");
    }

    #[test]
    fn break_even_found_between_extremes() {
        let exp = small_exp("E33-SSD");
        let be = break_even(
            &exp,
            MethodSpec::Is {
                workers: 1,
                prefetch: 0,
            },
            MethodSpec::Fts { workers: 1 },
            1e-5,
            0.9,
            12,
        );
        assert!(be > 1e-5 && be < 0.9, "break-even inside the bracket: {be}");
        // IS wins below, FTS wins above.
        let below = exp
            .run_cold(
                MethodSpec::Is {
                    workers: 1,
                    prefetch: 0,
                },
                be / 4.0,
            )
            .expect("runs")
            .runtime;
        let below_fts = exp
            .run_cold(MethodSpec::Fts { workers: 1 }, be / 4.0)
            .expect("runs")
            .runtime;
        assert!(below < below_fts);
    }
}
