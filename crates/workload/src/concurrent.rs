//! Concurrent multi-session workloads over the experiment fixtures — the
//! §4.3 "multiple queries are running on the system concurrently" study.
//!
//! A *cell* is one (device, session count) point: N closed-loop sessions
//! of range-MAX queries interleaved on one shared event loop, each query
//! admitted through [`QdttAdmission`] so it is re-optimized under its
//! queue-depth lease. [`concurrency_grid`] sweeps sessions ∈ {1, 2, 4, 8,
//! 16} per device — the CSV it feeds shows plan choice and parallel degree
//! shifting as concurrency rises. [`session_export`] produces the canonical
//! 8-session observability bundle (report JSON + per-session Perfetto
//! tracks) that CI schema-checks and the determinism tests byte-compare.
//!
//! Every cell runs on its own fresh device and flushed pool with a model
//! calibrated once per device, and the engine itself is a serial
//! discrete-event loop, so all outputs are byte-identical across runs and
//! across any worker-thread count.

use crate::experiments::{DeviceKind, Experiment, ExperimentConfig};
use crate::opteval::calibrate;
use pioqo_core::Qdtt;
use pioqo_exec::{
    CpuConfig, CpuCosts, ExecError, MultiEngine, QuerySpec, SimContext, ThinkTime, WorkloadReport,
    WorkloadSpec,
};
use pioqo_obs::{RingSink, TraceSink};
use pioqo_optimizer::{AdmissionDecision, OptimizerConfig, QdttAdmission};
use pioqo_simkit::par::par_map_weighted_threads;
use pioqo_simkit::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the concurrency grid (and of single cells).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcurrencyConfig {
    /// Rows in the shared table.
    pub rows: u64,
    /// Rows per page.
    pub rows_per_page: u32,
    /// Buffer pool frames shared by all sessions of a cell.
    pub buffer_frames: usize,
    /// Session counts to sweep.
    pub session_counts: Vec<u32>,
    /// Queries each session issues.
    pub queries_per_session: u32,
    /// Per-query selectivities, cycled per session.
    pub selectivities: Vec<f64>,
    /// Mean exponential think time between a session's queries, µs.
    pub think_mean_us: u64,
    /// Master seed (dataset, device jitter, think times).
    pub seed: u64,
}

impl Default for ConcurrencyConfig {
    fn default() -> ConcurrencyConfig {
        ConcurrencyConfig {
            rows: 40_000,
            rows_per_page: 33,
            buffer_frames: 512,
            session_counts: vec![1, 2, 4, 8, 16],
            queries_per_session: 3,
            selectivities: vec![0.001, 0.01, 0.05],
            think_mean_us: 2_000,
            seed: 42,
        }
    }
}

impl ConcurrencyConfig {
    /// The experiment fixture for one device of the grid.
    pub fn experiment(&self, device: DeviceKind) -> ExperimentConfig {
        ExperimentConfig {
            name: format!("C{}-{device}", self.rows_per_page),
            table: format!("T{}", self.rows_per_page),
            rows_per_page: self.rows_per_page,
            rows: self.rows,
            device,
            buffer_frames: self.buffer_frames,
            seed: self.seed,
        }
    }

    /// The workload spec for one cell of the grid.
    pub fn workload(&self, sessions: u32) -> WorkloadSpec {
        WorkloadSpec {
            sessions,
            queries_per_session: self.queries_per_session,
            think: ThinkTime::Exponential {
                mean: SimDuration::from_micros(self.think_mean_us),
            },
            selectivities: self.selectivities.clone(),
            seed: self.seed,
            horizon: None,
            writes: None,
            shared_scans: false,
            record_limit: None,
        }
    }
}

/// Run one concurrent cell: fresh device, flushed pool, QDTT admission
/// over the calibrated `model`. Returns the engine's report and the
/// admission journal.
pub fn run_cell(
    exp: &Experiment,
    model: &Qdtt,
    opt_cfg: &OptimizerConfig,
    spec: WorkloadSpec,
) -> Result<(WorkloadReport, Vec<AdmissionDecision>), ExecError> {
    run_cell_traced(exp, model, opt_cfg, spec, &mut pioqo_obs::NullSink)
}

/// [`run_cell`] with a trace sink: each session gets its own track
/// (`session0`, `session1`, ...) next to the engine's `io`/`pool` tracks.
pub fn run_cell_traced(
    exp: &Experiment,
    model: &Qdtt,
    opt_cfg: &OptimizerConfig,
    spec: WorkloadSpec,
    trace: &mut dyn TraceSink,
) -> Result<(WorkloadReport, Vec<AdmissionDecision>), ExecError> {
    let mut device = exp.make_device();
    let mut pool = exp.make_pool();
    let mut planner = QdttAdmission::new(
        exp.dataset.table(),
        exp.dataset.index(),
        model.clone(),
        opt_cfg.clone(),
    );
    let base = QuerySpec::range_max(exp.dataset.table(), Some(exp.dataset.index()), 0, 0);
    let mut ctx = SimContext::new(
        &mut *device,
        &mut pool,
        CpuConfig::paper_xeon(),
        CpuCosts::default(),
    );
    ctx.set_trace_sink(trace);
    let report = MultiEngine::new(spec, base, &mut planner).run(&mut ctx)?;
    drop(ctx);
    Ok((report, planner.into_decisions()))
}

/// One row of the concurrency grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcurrencyCell {
    /// Device under test ("HDD", "SSD", "RAID8").
    pub device: String,
    /// Concurrent sessions in this cell.
    pub sessions: u32,
    /// Queries completed across all sessions.
    pub completed: u64,
    /// First admission to last completion, milliseconds of virtual time.
    pub makespan_ms: f64,
    /// Mean query latency, µs.
    pub mean_latency_us: f64,
    /// 95th-percentile query latency bucket, µs.
    pub p95_latency_us: u64,
    /// 99th-percentile query latency bucket, µs.
    pub p99_latency_us: u64,
    /// Max/min completed-query ratio across sessions.
    pub fairness: f64,
    /// Mean queue-depth lease granted at admission.
    pub mean_lease_depth: f64,
    /// Smallest lease granted at admission.
    pub min_lease_depth: u32,
    /// Mean chosen parallel degree.
    pub mean_degree: f64,
    /// Largest chosen parallel degree.
    pub max_degree: u32,
    /// How often each plan label was chosen.
    pub plan_counts: BTreeMap<String, u64>,
}

impl ConcurrencyCell {
    /// The most frequently chosen plan label (ties break lexically).
    pub fn dominant_plan(&self) -> String {
        self.plan_counts
            .iter()
            .max_by_key(|(label, n)| (**n, std::cmp::Reverse(label.as_str())))
            .map(|(label, _)| label.clone())
            .unwrap_or_default()
    }

    /// CSV header matching [`ConcurrencyCell::csv_row`].
    pub fn csv_header() -> &'static str {
        "device,sessions,completed,makespan_ms,mean_latency_us,p95_latency_us,\
         p99_latency_us,fairness,mean_lease_depth,min_lease_depth,mean_degree,\
         max_degree,dominant_plan,plans"
    }

    /// One CSV row (plan counts rendered `label:count|label:count`).
    pub fn csv_row(&self) -> String {
        let plans = self
            .plan_counts
            .iter()
            .map(|(label, n)| format!("{label}:{n}"))
            .collect::<Vec<_>>()
            .join("|");
        format!(
            "{},{},{},{:.3},{:.1},{},{},{:.3},{:.2},{},{:.2},{},{},{}",
            self.device,
            self.sessions,
            self.completed,
            self.makespan_ms,
            self.mean_latency_us,
            self.p95_latency_us,
            self.p99_latency_us,
            self.fairness,
            self.mean_lease_depth,
            self.min_lease_depth,
            self.mean_degree,
            self.max_degree,
            self.dominant_plan(),
            plans,
        )
    }

    fn from_run(
        device: DeviceKind,
        sessions: u32,
        report: &WorkloadReport,
        admissions: &[AdmissionDecision],
    ) -> ConcurrencyCell {
        let n = admissions.len().max(1) as f64;
        ConcurrencyCell {
            device: device.to_string(),
            sessions,
            completed: report.total_completed(),
            makespan_ms: report.makespan.as_micros_f64() / 1_000.0,
            mean_latency_us: report.query_latency_us.mean(),
            p95_latency_us: report.p95_latency_us,
            p99_latency_us: report.p99_latency_us,
            fairness: report.fairness_ratio(),
            mean_lease_depth: admissions.iter().map(|a| a.lease_depth as f64).sum::<f64>() / n,
            min_lease_depth: admissions.iter().map(|a| a.lease_depth).min().unwrap_or(0),
            mean_degree: admissions.iter().map(|a| a.degree as f64).sum::<f64>() / n,
            max_degree: admissions.iter().map(|a| a.degree).max().unwrap_or(0),
            plan_counts: report.plan_counts.clone(),
        }
    }
}

/// Sweep the concurrency grid: for each device, calibrate once, then run
/// every session count on its own fresh device and flushed pool. Cells
/// fan out over `threads` harness workers; the result is byte-identical
/// for any thread count, including 1.
pub fn concurrency_grid(
    devices: &[DeviceKind],
    cfg: &ConcurrencyConfig,
    opt_cfg: &OptimizerConfig,
    threads: usize,
) -> Result<Vec<ConcurrencyCell>, ExecError> {
    // Calibration itself fans out over the global harness pool; run it
    // serially per device so the grid's parallelism is purely per-cell.
    let fixtures: Vec<(DeviceKind, Experiment, Qdtt)> = devices
        .iter()
        .map(|&device| {
            let exp = Experiment::build(cfg.experiment(device));
            let model = calibrate(&exp).qdtt;
            (device, exp, model)
        })
        .collect();
    let cells: Vec<(usize, u32)> = (0..fixtures.len())
        .flat_map(|d| cfg.session_counts.iter().map(move |&s| (d, s)))
        .collect();
    // Cell cost grows with the session count, so LPT placement by
    // `sessions` keeps the 16-session stragglers off one worker's tail;
    // the weights change scheduling only, never the bytes.
    let results = par_map_weighted_threads(
        threads,
        cfg.seed ^ 0xC0C0,
        &cells,
        |&(_, sessions)| u64::from(sessions),
        |_rng, &(d, sessions)| {
            let (device, exp, model) = &fixtures[d];
            let (report, admissions) = run_cell(exp, model, opt_cfg, cfg.workload(sessions))?;
            Ok(ConcurrencyCell::from_run(
                *device,
                sessions,
                &report,
                &admissions,
            ))
        },
    );
    results.into_iter().collect()
}

/// Render grid rows as the `repro --concurrency` CSV.
pub fn grid_csv(cells: &[ConcurrencyCell]) -> String {
    let mut out = String::from(ConcurrencyCell::csv_header());
    out.push('\n');
    for cell in cells {
        out.push_str(&cell.csv_row());
        out.push('\n');
    }
    out
}

/// The canonical 8-session observability bundle (CI's schema-check target
/// and the determinism tests' byte-identity artifact).
#[derive(Debug, Clone)]
pub struct SessionExport {
    /// The engine's full report.
    pub report: WorkloadReport,
    /// The admission journal, in admission order.
    pub admissions: Vec<AdmissionDecision>,
    /// `report` as pretty JSON.
    pub report_json: String,
    /// Chrome trace-event JSON with one track per session plus the
    /// engine's `io`/`pool` tracks.
    pub chrome_json: String,
}

/// Run the canonical 8-session SSD workload with tracing and export it.
pub fn session_export(seed: u64) -> Result<SessionExport, ExecError> {
    let cfg = ConcurrencyConfig {
        seed,
        ..ConcurrencyConfig::default()
    };
    let exp = Experiment::build(cfg.experiment(DeviceKind::Ssd));
    let model = calibrate(&exp).qdtt;
    let opt_cfg = OptimizerConfig::fine_grained();
    let mut sink = RingSink::with_capacity(1 << 16);
    let (report, admissions) = run_cell_traced(&exp, &model, &opt_cfg, cfg.workload(8), &mut sink)?;
    let report_json = report.to_json();
    let chrome_json = sink.to_chrome_json();
    Ok(SessionExport {
        report,
        admissions,
        report_json,
        chrome_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ConcurrencyConfig {
        ConcurrencyConfig {
            rows: 8_000,
            session_counts: vec![1, 4],
            queries_per_session: 2,
            selectivities: vec![0.01],
            ..ConcurrencyConfig::default()
        }
    }

    #[test]
    fn grid_is_thread_count_invariant_and_repeatable() {
        let cfg = tiny();
        let opt = OptimizerConfig::fine_grained();
        let devices = [DeviceKind::Ssd];
        let a = concurrency_grid(&devices, &cfg, &opt, 1).expect("threads=1");
        let b = concurrency_grid(&devices, &cfg, &opt, 4).expect("threads=4");
        let c = concurrency_grid(&devices, &cfg, &opt, 1).expect("rerun");
        assert_eq!(grid_csv(&a), grid_csv(&b), "grid differs by thread count");
        assert_eq!(grid_csv(&a), grid_csv(&c), "grid differs across runs");
    }

    #[test]
    fn leases_shrink_as_sessions_rise_on_ssd() {
        let cfg = tiny();
        let opt = OptimizerConfig::fine_grained();
        let cells = concurrency_grid(&[DeviceKind::Ssd], &cfg, &opt, 1).expect("grid");
        assert_eq!(cells.len(), 2);
        let (one, four) = (&cells[0], &cells[1]);
        assert_eq!(one.sessions, 1);
        assert_eq!(four.sessions, 4);
        assert_eq!(one.completed, 2);
        assert_eq!(four.completed, 8);
        assert!(
            four.min_lease_depth < one.min_lease_depth,
            "leases must shrink under concurrency: {} vs {}",
            one.min_lease_depth,
            four.min_lease_depth
        );
    }

    #[test]
    fn session_export_has_one_track_per_session() {
        let export = session_export(7).expect("export runs");
        assert_eq!(export.report.per_session.len(), 8);
        for s in 0..8 {
            assert!(
                export.chrome_json.contains(&format!("session{s}")),
                "missing session{s} track"
            );
        }
        assert!(export.chrome_json.contains("\"traceEvents\""));
        assert_eq!(
            export.admissions.len() as u64,
            export.report.total_completed()
        );
    }
}
