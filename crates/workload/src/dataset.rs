//! A built dataset: heap table + `C2` B+-tree laid out in a tablespace.

use pioqo_storage::{range_for_selectivity, BTreeIndex, HeapTable, TableSpec, Tablespace};

/// Table + index + layout, ready to scan.
pub struct Dataset {
    table: HeapTable,
    index: BTreeIndex,
    device_capacity: u64,
}

impl Dataset {
    /// Generate a `T{rpp}` dataset of `rows` rows.
    pub fn build(rows_per_page: u32, rows: u64, seed: u64) -> Dataset {
        let spec = TableSpec::paper_table(rows_per_page, rows, seed);
        // Device sized to data plus slack: the table's extent (the index
        // scan's band) occupies a realistic fraction of the device.
        let est_index_pages = rows.div_ceil(300) + 64;
        let device_capacity = (spec.n_pages() + est_index_pages) * 2 + 4096;
        let mut ts = Tablespace::new(device_capacity);
        let table = HeapTable::create(spec, &mut ts).expect("tablespace sized to fit table");
        let index = BTreeIndex::build(
            &format!("{}_c2_idx", table.spec().name),
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("tablespace sized to fit index");
        Dataset {
            table,
            index,
            device_capacity,
        }
    }

    /// The heap table.
    pub fn table(&self) -> &HeapTable {
        &self.table
    }

    /// The `C2` index.
    pub fn index(&self) -> &BTreeIndex {
        &self.index
    }

    /// Device capacity (pages) the dataset was laid out for.
    pub fn device_capacity(&self) -> u64 {
        self.device_capacity
    }

    /// Upper bound of the `C2` domain (for selectivity → range mapping).
    pub fn c2_max(&self) -> u32 {
        self.table.spec().c2_max
    }

    /// Ground-truth answer of query Q at `selectivity` (naive evaluation).
    pub fn oracle_max(&self, selectivity: f64) -> Option<u32> {
        let (low, high) = range_for_selectivity(selectivity, self.c2_max());
        self.table.data().naive_max_c1(low, high)
    }

    /// Ground-truth matching-row count at `selectivity`.
    pub fn oracle_count(&self, selectivity: f64) -> u64 {
        let (low, high) = range_for_selectivity(selectivity, self.c2_max());
        self.table.data().count_matching(low, high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_places_table_then_index() {
        let d = Dataset::build(33, 50_000, 3);
        assert_eq!(d.table().extent().base, 0);
        assert_eq!(d.index().extent().base, d.table().extent().end());
        assert!(d.index().extent().end() <= d.device_capacity());
    }

    #[test]
    fn oracle_consistent_with_index() {
        let d = Dataset::build(33, 20_000, 3);
        for sel in [0.01, 0.2] {
            let (low, high) = range_for_selectivity(sel, d.c2_max());
            let via_index = d.index().range(low, high).map_or(0, |r| r.len());
            assert_eq!(via_index, d.oracle_count(sel));
        }
    }
}
