//! The join-crossover grid: INL vs hybrid hash across devices and
//! admission pressure.
//!
//! For each device the grid calibrates a QDTT model once, then sweeps the
//! open-session count. Each cell takes the queue-depth lease a session
//! would hold at that concurrency ([`QdBudget::share_at`]), costs both
//! join methods under the lease with the QDTT surface, and *runs* both
//! lowered plans on a cold device to validate the choice. The interesting
//! output is where the INL↔HHJ crossover sits per device — deep flash
//! lets index-nested-loop win until admission pressure shrinks the lease,
//! spindles prefer the hash join's sequential partitioned I/O almost
//! everywhere.

use crate::experiments::DeviceKind;
use pioqo_bufpool::BufferPool;
use pioqo_core::{CalibrationConfig, Calibrator, Qdtt};
use pioqo_device::{presets, DeviceModel};
use pioqo_exec::{
    execute, CpuConfig, CpuCosts, ExecError, JoinClause, Predicate, QuerySpec, ScanMetrics,
    SimContext,
};
use pioqo_optimizer::{
    choose_join, enumerate_joins, join_plan_to_spec, EstCpuCosts, JoinMethod, JoinPlan, JoinStats,
    QdBudget, QdttCost, TableStats,
};
use pioqo_simkit::par::par_map_weighted_threads;
use pioqo_storage::{range_for_selectivity, BTreeIndex, Extent, HeapTable, TableSpec, Tablespace};
use serde::{Deserialize, Serialize};

/// Knobs of the join grid. Defaults keep a full three-device sweep under
/// a few seconds of wall clock while leaving the crossover visible.
#[derive(Debug, Clone)]
pub struct JoinGridConfig {
    /// Data/determinism seed.
    pub seed: u64,
    /// Rows in the outer (probe-side) table.
    pub left_rows: u64,
    /// Rows in the inner (build-side) table.
    pub right_rows: u64,
    /// Rows per page in both tables.
    pub rows_per_page: u32,
    /// Key domain: `C2 ∈ [0, key_max]` on both sides, so the expected
    /// match count per outer row is `right_rows / (key_max + 1)`.
    pub key_max: u32,
    /// Outer-side predicate selectivity.
    pub selectivity: f64,
    /// Open-session counts to sweep (the admission-pressure axis).
    pub session_counts: Vec<u32>,
    /// Buffer pool frames per run.
    pub buffer_frames: usize,
}

impl Default for JoinGridConfig {
    fn default() -> JoinGridConfig {
        JoinGridConfig {
            seed: 42,
            left_rows: 40_000,
            right_rows: 80_000,
            rows_per_page: 33,
            key_max: 9_999,
            selectivity: 0.01,
            session_counts: vec![1, 4, 16],
            buffer_frames: 2_048,
        }
    }
}

/// One (device, sessions) point: estimates for both methods under the
/// lease, the optimizer's pick, and the measured runtimes backing it up.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinCell {
    /// Device label ("HDD", "SSD", "RAID8").
    pub device: String,
    /// Open sessions sharing the queue-depth budget.
    pub sessions: u32,
    /// The per-session queue-depth lease at this concurrency.
    pub lease_depth: u32,
    /// Outer predicate selectivity.
    pub selectivity: f64,
    /// Cheapest INL estimate under the lease, µs.
    pub inl_est_us: f64,
    /// Queue depth of that INL plan.
    pub inl_depth: u32,
    /// Cheapest hybrid-hash estimate under the lease, µs.
    pub hash_est_us: f64,
    /// Partition count of that hash plan.
    pub hash_partitions: u32,
    /// The optimizer's pick ("INL+qd8", "HHJ8", ...).
    pub chosen: String,
    /// Measured INL runtime, µs of virtual time.
    pub inl_run_us: f64,
    /// Measured hybrid-hash runtime, µs of virtual time.
    pub hash_run_us: f64,
    /// Whether the estimated winner also won on the simulated device.
    pub agree: bool,
    /// Whether both operators returned identical (answer, fingerprint).
    pub answers_match: bool,
}

impl JoinCell {
    /// CSV header matching [`JoinCell::csv_row`].
    pub fn csv_header() -> &'static str {
        "device,sessions,lease_depth,selectivity,inl_est_us,inl_depth,\
         hash_est_us,hash_partitions,chosen,inl_run_us,hash_run_us,agree,answers_match"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:.1},{},{:.1},{},{},{:.1},{:.1},{},{}",
            self.device,
            self.sessions,
            self.lease_depth,
            self.selectivity,
            self.inl_est_us,
            self.inl_depth,
            self.hash_est_us,
            self.hash_partitions,
            self.chosen,
            self.inl_run_us,
            self.hash_run_us,
            self.agree,
            self.answers_match,
        )
    }
}

/// The two-table join fixture: outer + inner heaps, a `C2` index on each
/// (the inner one probed by INL, the outer one feeding the stats), and a
/// spill extent for the hash join's partitions.
struct JoinFixture {
    left: HeapTable,
    left_index: BTreeIndex,
    right: HeapTable,
    right_index: BTreeIndex,
    spill: Extent,
    capacity: u64,
}

fn build_fixture(cfg: &JoinGridConfig) -> JoinFixture {
    let lspec = TableSpec {
        c2_max: cfg.key_max,
        ..TableSpec::paper_table(cfg.rows_per_page, cfg.left_rows, cfg.seed ^ 0x10)
    };
    let rspec = TableSpec {
        name: "T_inner".to_string(),
        c2_max: cfg.key_max,
        ..TableSpec::paper_table(cfg.rows_per_page, cfg.right_rows, cfg.seed ^ 0x20)
    };
    let mut ts = Tablespace::new(5 * (lspec.n_pages() + rspec.n_pages()) + 4_000);
    let left = HeapTable::create(lspec, &mut ts).expect("tablespace sized to fit");
    let right = HeapTable::create(rspec, &mut ts).expect("tablespace sized to fit");
    let left_index = BTreeIndex::build(
        "outer_c2",
        left.data().c2_entries(),
        left.spec().page_size,
        &mut ts,
    )
    .expect("tablespace sized to fit");
    let right_index = BTreeIndex::build(
        "inner_c2",
        right.data().c2_entries(),
        right.spec().page_size,
        &mut ts,
    )
    .expect("tablespace sized to fit");
    let spill = ts
        .alloc("join_spill", 2 * (left.n_pages() + right.n_pages()) + 64)
        .expect("tablespace sized to fit");
    let capacity = ts.capacity();
    JoinFixture {
        left,
        left_index,
        right,
        right_index,
        spill,
        capacity,
    }
}

fn make_device(kind: DeviceKind, capacity: u64, seed: u64) -> Box<dyn DeviceModel> {
    match kind {
        DeviceKind::Hdd => Box::new(presets::hdd_7200(capacity, seed ^ 0xD15C)),
        DeviceKind::Ssd => Box::new(presets::consumer_pcie_ssd(capacity, seed ^ 0xF1A5)),
        DeviceKind::Raid8 => Box::new(presets::raid_15k(8, capacity, seed ^ 0x8A1D)),
    }
}

/// Execute one join method on a cold device and flushed pool.
fn run_join(
    fx: &JoinFixture,
    kind: DeviceKind,
    cfg: &JoinGridConfig,
    plan: pioqo_exec::PlanSpec,
    low: u32,
    high: u32,
) -> Result<ScanMetrics, ExecError> {
    let mut device = make_device(kind, fx.capacity, cfg.seed);
    let mut pool = BufferPool::new(cfg.buffer_frames);
    let mut ctx = SimContext::new(
        &mut *device,
        &mut pool,
        CpuConfig::paper_xeon(),
        CpuCosts::default(),
    );
    let q = QuerySpec::scan(&fx.left)
        .filter(Predicate::c2_between(low, high))
        .with_plan(plan)
        .join(JoinClause {
            right: &fx.right,
            right_index: Some(&fx.right_index),
            spill: Some(fx.spill),
        });
    execute(&mut ctx, &q)
}

fn best_of(plans: &[JoinPlan], method: JoinMethod) -> Option<JoinPlan> {
    plans
        .iter()
        .filter(|p| p.method == method)
        .min_by(|a, b| {
            a.est_total_us
                .partial_cmp(&b.est_total_us)
                .expect("cost estimates are finite")
        })
        .cloned()
}

/// Sweep devices × session counts. Per device: calibrate once, then for
/// each session count cost both joins under the [`QdBudget::share_at`]
/// lease, pick, and run both plans cold. Byte-identical output at any
/// `threads` count.
pub fn join_grid(
    devices: &[DeviceKind],
    cfg: &JoinGridConfig,
    threads: usize,
) -> Result<Vec<JoinCell>, ExecError> {
    let fx = build_fixture(cfg);
    // Calibration fans out on its own; keep it serial per device so cell
    // parallelism stays flat (same structure as `concurrency_grid`).
    let models: Vec<(DeviceKind, Qdtt)> = devices
        .iter()
        .map(|&kind| {
            let cal = Calibrator::new(CalibrationConfig::for_device(
                fx.capacity,
                cfg.seed ^ 0xCA11,
            ));
            let (qdtt, _) = cal.calibrate_qdtt_with(|| make_device(kind, fx.capacity, cfg.seed));
            (kind, qdtt)
        })
        .collect();
    let cells: Vec<(usize, u32)> = (0..models.len())
        .flat_map(|d| cfg.session_counts.iter().map(move |&s| (d, s)))
        .collect();
    let results = par_map_weighted_threads(
        threads,
        cfg.seed ^ 0x1013,
        &cells,
        |&(_, sessions)| u64::from(sessions),
        |_rng, &(d, sessions)| {
            let (kind, model) = &models[d];
            run_grid_cell(&fx, *kind, model, cfg, sessions)
        },
    );
    results.into_iter().collect()
}

fn run_grid_cell(
    fx: &JoinFixture,
    kind: DeviceKind,
    model: &Qdtt,
    cfg: &JoinGridConfig,
    sessions: u32,
) -> Result<JoinCell, ExecError> {
    let lease_depth = QdBudget::from_model(model).share_at(sessions).max(1);
    let pool = BufferPool::new(cfg.buffer_frames);
    let left = TableStats::gather(&fx.left, &fx.left_index, &pool);
    let right = TableStats::gather(&fx.right, &fx.right_index, &pool);
    let js = JoinStats {
        left: &left,
        right: &right,
        key_cardinality: u64::from(cfg.key_max) + 1,
    };
    let cost_model = QdttCost(model.clone());
    let est = EstCpuCosts::default();
    let plans = enumerate_joins(&cost_model, &est, &js, cfg.selectivity, lease_depth);
    let chosen = choose_join(&cost_model, &est, &js, cfg.selectivity, lease_depth);
    let inl = best_of(&plans, JoinMethod::IndexNestedLoop).ok_or(ExecError::Internal {
        detail: "join enumeration produced no INL plan",
    })?;
    let hash = best_of(&plans, JoinMethod::HybridHash).ok_or(ExecError::Internal {
        detail: "join enumeration produced no hash plan",
    })?;

    let (low, high) = range_for_selectivity(cfg.selectivity, cfg.key_max);
    let inl_run = run_join(fx, kind, cfg, join_plan_to_spec(&inl), low, high)?;
    let hash_run = run_join(fx, kind, cfg, join_plan_to_spec(&hash), low, high)?;

    let est_winner = chosen.method;
    let measured_winner = if inl_run.runtime <= hash_run.runtime {
        JoinMethod::IndexNestedLoop
    } else {
        JoinMethod::HybridHash
    };
    Ok(JoinCell {
        device: kind.to_string(),
        sessions,
        lease_depth,
        selectivity: cfg.selectivity,
        inl_est_us: inl.est_total_us,
        inl_depth: inl.queue_depth,
        hash_est_us: hash.est_total_us,
        hash_partitions: hash.partitions,
        chosen: chosen.label(),
        inl_run_us: inl_run.runtime.as_micros_f64(),
        hash_run_us: hash_run.runtime.as_micros_f64(),
        agree: est_winner == measured_winner,
        answers_match: inl_run.max_c1 == hash_run.max_c1
            && inl_run.rows_matched == hash_run.rows_matched
            && inl_run.fingerprint == hash_run.fingerprint,
    })
}

/// Render grid rows as the `repro --joins` CSV.
pub fn join_grid_csv(cells: &[JoinCell]) -> String {
    let mut out = String::from(JoinCell::csv_header());
    out.push('\n');
    for cell in cells {
        out.push_str(&cell.csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> JoinGridConfig {
        JoinGridConfig {
            left_rows: 8_000,
            right_rows: 4_000,
            key_max: 1_999,
            session_counts: vec![1, 16],
            ..JoinGridConfig::default()
        }
    }

    #[test]
    fn grid_cells_validate_and_are_thread_count_invariant() {
        let cfg = quick_cfg();
        let devices = [DeviceKind::Ssd, DeviceKind::Hdd];
        let a = join_grid(&devices, &cfg, 1).expect("grid runs");
        let b = join_grid(&devices, &cfg, 4).expect("grid runs");
        assert_eq!(a.len(), 4);
        assert_eq!(join_grid_csv(&a), join_grid_csv(&b), "threads leaked in");
        for c in &a {
            assert!(
                c.answers_match,
                "{}/{}: operators disagree",
                c.device, c.sessions
            );
            assert!(c.inl_est_us > 0.0 && c.hash_est_us > 0.0);
            assert!(c.lease_depth >= 1);
        }
    }

    #[test]
    fn deeper_lease_favors_inl_more_than_shallow() {
        // The INL estimate must improve (or hold) as the lease deepens,
        // while the hash estimate barely moves — that differential is the
        // whole crossover story.
        let cfg = quick_cfg();
        let cells = join_grid(&[DeviceKind::Ssd], &cfg, 1).expect("grid runs");
        let deep = &cells[0]; // 1 session
        let shallow = &cells[1]; // 16 sessions
        assert!(deep.lease_depth > shallow.lease_depth);
        assert!(deep.inl_est_us <= shallow.inl_est_us);
    }
}
