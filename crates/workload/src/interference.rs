//! Scan-vs-checkpoint interference: what background writeback does to
//! scan tail latency.
//!
//! The ROADMAP asks for the mixed read/write scenario the paper leaves
//! open: a write workload (WAL group commit + background flusher) sharing
//! the device with N closed-loop scan sessions under QDTT-aware
//! admission. Each [`InterferenceCell`] is one (session count, flusher
//! on/off) point on the same SSD fixture: identical dataset, identical
//! calibrated model, identical scan schedule seed — the only difference
//! is whether the write system is running. Comparing the scan latency
//! p99 across the pair isolates the cost of checkpoint I/O contending in
//! the device queue *and* of the flusher's background queue-depth lease
//! shrinking every admission (`QdttAdmission::background_acquire`).
//!
//! The write table and its WAL live in the dataset's slack pages (the
//! capacity headroom `Dataset::build` reserves past the index), so scans
//! and checkpoints really do share one device with disjoint extents.

use crate::concurrent::ConcurrencyConfig;
use crate::experiments::{DeviceKind, Experiment};
use crate::opteval::calibrate;
use pioqo_core::Qdtt;
use pioqo_device::MediaStore;
use pioqo_exec::{
    CpuConfig, CpuCosts, ExecError, MultiEngine, QuerySpec, SimContext, WorkloadReport,
    WorkloadSpec, WriteConfig, WriteSystem,
};
use pioqo_optimizer::{OptimizerConfig, QdttAdmission};
use pioqo_storage::{Extent, HeapTable, TableSpec, Tablespace};
use serde::{Deserialize, Serialize};

/// One (session count, flusher on/off) point of the interference sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceCell {
    /// Concurrent scan sessions.
    pub sessions: u32,
    /// Whether the write system (WAL + background flusher) was running.
    pub flusher: bool,
    /// Queries completed across all sessions.
    pub completed: u64,
    /// First admission to last completion, milliseconds of virtual time.
    pub makespan_ms: f64,
    /// Mean scan latency, µs.
    pub mean_latency_us: f64,
    /// 99th-percentile scan latency bucket, µs.
    pub p99_latency_us: u64,
    /// Commits acknowledged by the write system (0 with the flusher off).
    pub commits_acked: u64,
    /// Dirty data pages written back (0 with the flusher off).
    pub data_page_flushes: u64,
    /// Checkpoint records logged (0 with the flusher off).
    pub checkpoints: u64,
}

impl InterferenceCell {
    /// CSV header matching [`InterferenceCell::csv_row`].
    pub fn csv_header() -> &'static str {
        "sessions,flusher,completed,makespan_ms,mean_latency_us,p99_latency_us,\
         commits_acked,data_page_flushes,checkpoints"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.3},{:.1},{},{},{},{}",
            self.sessions,
            if self.flusher { "on" } else { "off" },
            self.completed,
            self.makespan_ms,
            self.mean_latency_us,
            self.p99_latency_us,
            self.commits_acked,
            self.data_page_flushes,
            self.checkpoints,
        )
    }

    fn from_report(sessions: u32, flusher: bool, report: &WorkloadReport) -> InterferenceCell {
        let w = report.writes.as_ref();
        InterferenceCell {
            sessions,
            flusher,
            completed: report.total_completed(),
            makespan_ms: report.makespan.as_micros_f64() / 1_000.0,
            mean_latency_us: report.query_latency_us.mean(),
            p99_latency_us: report.query_latency_us.quantile_lo(99, 100),
            commits_acked: w.map_or(0, |s| s.commits_acked),
            data_page_flushes: w.map_or(0, |s| s.data_page_flushes),
            checkpoints: w.map_or(0, |s| s.checkpoints),
        }
    }
}

/// The write-side fixture: a heap table plus WAL extent carved out of the
/// dataset's slack pages so both workloads share one device.
struct WriteSide {
    table: HeapTable,
    wal: Extent,
}

fn write_side(exp: &Experiment, write_rows: u64, seed: u64) -> WriteSide {
    let used = exp.dataset.index().extent().end();
    let mut ts = Tablespace::new(exp.dataset.device_capacity());
    ts.alloc("scan-data", used)
        .expect("mirror of the dataset layout fits by construction");
    let spec = TableSpec {
        name: format!("W{}", exp.cfg.rows_per_page),
        ..TableSpec::paper_table(exp.cfg.rows_per_page, write_rows, seed)
    };
    let table = HeapTable::create(spec, &mut ts).expect("write table fits in the dataset slack");
    let wal = ts
        .alloc("wal", 2_048)
        .expect("WAL fits in the dataset slack");
    WriteSide { table, wal }
}

/// Run one point: fresh device and pool, QDTT admission over `model`,
/// optionally with the write system sharing the event loop.
fn run_point(
    exp: &Experiment,
    model: &Qdtt,
    opt_cfg: &OptimizerConfig,
    spec: WorkloadSpec,
    ws: Option<&mut WriteSystem>,
) -> Result<WorkloadReport, ExecError> {
    let mut device = exp.make_device();
    let mut pool = exp.make_pool();
    let mut planner = QdttAdmission::new(
        exp.dataset.table(),
        exp.dataset.index(),
        model.clone(),
        opt_cfg.clone(),
    );
    let base = QuerySpec::range_max(exp.dataset.table(), Some(exp.dataset.index()), 0, 0);
    let mut ctx = SimContext::new(
        &mut *device,
        &mut pool,
        CpuConfig::paper_xeon(),
        CpuCosts::default(),
    );
    let engine = MultiEngine::new(spec, base, &mut planner);
    match ws {
        Some(ws) => engine.run_with_writes(&mut ctx, ws),
        None => engine.run(&mut ctx),
    }
}

/// Sweep scan sessions × {flusher off, on} on the SSD fixture. Cells come
/// back in sweep order: for each session count, the flusher-off point
/// first, then flusher-on. Fully deterministic in `cfg.seed`.
pub fn interference_sweep(
    cfg: &ConcurrencyConfig,
    writes: &WriteConfig,
    write_rows: u64,
    opt_cfg: &OptimizerConfig,
) -> Result<Vec<InterferenceCell>, ExecError> {
    let exp = Experiment::build(cfg.experiment(DeviceKind::Ssd));
    let model = calibrate(&exp).qdtt;
    let side = write_side(&exp, write_rows, cfg.seed ^ 0x57AB);
    let mut cells = Vec::new();
    for &sessions in &cfg.session_counts {
        for flusher in [false, true] {
            let spec = cfg.workload(sessions);
            let report = if flusher {
                let mut ws = WriteSystem::new(
                    writes.clone(),
                    &side.table,
                    side.wal,
                    MediaStore::new(side.table.spec().page_size),
                );
                run_point(&exp, &model, opt_cfg, spec, Some(&mut ws))?
            } else {
                run_point(&exp, &model, opt_cfg, spec, None)?
            };
            cells.push(InterferenceCell::from_report(sessions, flusher, &report));
        }
    }
    Ok(cells)
}

/// Render sweep rows as the `repro --interference` CSV.
pub fn interference_csv(cells: &[InterferenceCell]) -> String {
    let mut out = String::from(InterferenceCell::csv_header());
    out.push('\n');
    for cell in cells {
        out.push_str(&cell.csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_simkit::SimDuration;

    fn tiny() -> ConcurrencyConfig {
        ConcurrencyConfig {
            rows: 8_000,
            session_counts: vec![1, 4],
            queries_per_session: 2,
            selectivities: vec![0.01],
            ..ConcurrencyConfig::default()
        }
    }

    fn busy_writes() -> WriteConfig {
        WriteConfig {
            writers: 4,
            commits_per_writer: 16,
            think: SimDuration::from_micros_f64(300.0),
            group_commit: SimDuration::from_micros_f64(150.0),
            flush_interval: SimDuration::from_micros_f64(500.0),
            flush_batch: 8,
            seed: 7,
            ..WriteConfig::default()
        }
    }

    #[test]
    fn sweep_is_deterministic_and_pairs_differ_only_by_flusher() {
        let cfg = tiny();
        let opt = OptimizerConfig::fine_grained();
        let a = interference_sweep(&cfg, &busy_writes(), 2_000, &opt).expect("sweep");
        let b = interference_sweep(&cfg, &busy_writes(), 2_000, &opt).expect("rerun");
        assert_eq!(interference_csv(&a), interference_csv(&b));
        assert_eq!(a.len(), 4, "2 session counts x flusher off/on");
        for pair in a.chunks(2) {
            let (off, on) = (&pair[0], &pair[1]);
            assert_eq!(off.sessions, on.sessions);
            assert!(!off.flusher && on.flusher);
            // Same scan schedule either way; only the device contention
            // and admission leases may move.
            assert_eq!(off.completed, on.completed);
            assert_eq!(off.commits_acked, 0);
            assert!(on.commits_acked > 0, "write side must make progress");
            assert!(on.data_page_flushes > 0, "flusher must write back pages");
        }
    }
}
