//! The paper's experimental configurations (Table 1) at simulation scale.
//!
//! §3.1: tables T1 (one row per page), T33 (typical) and T500 (tiny rows),
//! each run on HDD and on SSD with a deliberately small 64 MB buffer pool;
//! every experiment starts with a flushed pool. Row counts are scaled down
//! from the paper's multi-GB tables, with the buffer:table ratio kept in
//! the same regime (table ≫ pool) so the break-even physics is preserved —
//! see DESIGN.md §1.

use crate::dataset::Dataset;
use pioqo_bufpool::BufferPool;
use pioqo_device::presets::{consumer_pcie_ssd, hdd_7200, raid_15k, PAGE_SIZE};
use pioqo_device::DeviceModel;
use pioqo_exec::{
    execute, CpuConfig, CpuCosts, ExecError, FtsConfig, IsConfig, PlanSpec, QuerySpec, ScanMetrics,
    SimContext, SortedIsConfig,
};
use pioqo_obs::{MetricsRegistry, NullSink, TraceSink};
use pioqo_storage::range_for_selectivity;
use serde::{Deserialize, Serialize};

/// Storage device under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Commodity 7200 RPM hard drive.
    Hdd,
    /// Consumer PCIe SSD.
    Ssd,
    /// 8-spindle 15K RAID array (used by the calibration figures).
    Raid8,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::Hdd => write!(f, "HDD"),
            DeviceKind::Ssd => write!(f, "SSD"),
            DeviceKind::Raid8 => write!(f, "RAID8"),
        }
    }
}

/// One experiment row of the paper's Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Experiment id, e.g. "E33-SSD".
    pub name: String,
    /// Table name, e.g. "T33".
    pub table: String,
    /// Rows per page.
    pub rows_per_page: u32,
    /// Total rows (simulation scale).
    pub rows: u64,
    /// Device.
    pub device: DeviceKind,
    /// Buffer pool size in frames (the paper's 64 MB = 16384 4-KiB frames).
    pub buffer_frames: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The six rows of Table 1, at simulation scale.
    pub fn table1() -> Vec<ExperimentConfig> {
        let mut v = Vec::new();
        for &device in &[DeviceKind::Hdd, DeviceKind::Ssd] {
            for &(rpp, rows) in &[
                (1u32, 1u64 << 21), // T1: 2 M pages = 8 GiB
                (33, 8_000_000),    // T33: ~242 K pages ≈ 0.95 GiB
                (500, 32_000_000),  // T500: 64 K pages = 256 MiB
            ] {
                v.push(ExperimentConfig {
                    name: format!("E{rpp}-{device}"),
                    table: format!("T{rpp}"),
                    rows_per_page: rpp,
                    rows,
                    device,
                    buffer_frames: 16_384, // 64 MB of 4 KiB frames
                    seed: 0xDB * rpp as u64 + u64::from(device == DeviceKind::Ssd),
                });
            }
        }
        v
    }

    /// Look up a Table 1 row by name ("E33-SSD", case-insensitive).
    pub fn by_name(name: &str) -> Option<ExperimentConfig> {
        Self::table1()
            .into_iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// A scaled-down variant (for fast tests): divides the row count.
    pub fn scaled_down(mut self, factor: u64) -> ExperimentConfig {
        self.rows = (self.rows / factor).max(1000);
        self
    }
}

/// How to execute the query (maps 1:1 onto an executor entry point).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MethodSpec {
    /// (Parallel) full table scan.
    Fts {
        /// Parallel degree.
        workers: u32,
    },
    /// (Parallel) index scan.
    Is {
        /// Parallel degree.
        workers: u32,
        /// Per-worker prefetch depth (§3.3); 0 disables.
        prefetch: u32,
    },
    /// Sorted index scan (extension).
    SortedIs {
        /// Phase-3 prefetch ring depth.
        prefetch: u32,
    },
}

impl MethodSpec {
    /// Lower to the executor's plan description.
    pub fn to_plan_spec(self) -> PlanSpec {
        match self {
            MethodSpec::Fts { workers } => PlanSpec::Fts(FtsConfig {
                workers,
                ..FtsConfig::default()
            }),
            MethodSpec::Is { workers, prefetch } => PlanSpec::Is(IsConfig {
                workers,
                prefetch_depth: prefetch,
                ..IsConfig::default()
            }),
            MethodSpec::SortedIs { prefetch } => PlanSpec::SortedIs(SortedIsConfig {
                prefetch_depth: prefetch,
                ..SortedIsConfig::default()
            }),
        }
    }
}

impl std::fmt::Display for MethodSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodSpec::Fts { workers: 1 } => write!(f, "FTS"),
            MethodSpec::Fts { workers } => write!(f, "PFTS{workers}"),
            MethodSpec::Is {
                workers: 1,
                prefetch: 0,
            } => write!(f, "IS"),
            MethodSpec::Is { workers, prefetch } if *prefetch == 0 => {
                write!(f, "PIS{workers}")
            }
            MethodSpec::Is { workers, prefetch } => write!(f, "PIS{workers}+pf{prefetch}"),
            MethodSpec::SortedIs { prefetch } => write!(f, "SortedIS+pf{prefetch}"),
        }
    }
}

/// A fully built experiment: config + generated dataset.
pub struct Experiment {
    /// The configuration.
    pub cfg: ExperimentConfig,
    /// Table, index, and their device extents.
    pub dataset: Dataset,
}

impl Experiment {
    /// Generate the dataset for `cfg` (deterministic in `cfg.seed`).
    pub fn build(cfg: ExperimentConfig) -> Experiment {
        let dataset = Dataset::build(cfg.rows_per_page, cfg.rows, cfg.seed);
        Experiment { cfg, dataset }
    }

    /// A fresh instance of this experiment's device (cold, deterministic).
    pub fn make_device(&self) -> Box<dyn DeviceModel> {
        let cap = self.dataset.device_capacity();
        match self.cfg.device {
            DeviceKind::Hdd => Box::new(hdd_7200(cap, self.cfg.seed ^ 0xD15C)),
            DeviceKind::Ssd => Box::new(consumer_pcie_ssd(cap, self.cfg.seed ^ 0xF1A5)),
            DeviceKind::Raid8 => Box::new(raid_15k(8, cap, self.cfg.seed ^ 0x8A1D)),
        }
    }

    /// A fresh (flushed) buffer pool, as the paper's protocol requires.
    pub fn make_pool(&self) -> BufferPool {
        BufferPool::new(self.cfg.buffer_frames)
    }

    /// The page size used throughout.
    pub fn page_size(&self) -> u32 {
        PAGE_SIZE
    }

    /// Execute query Q at `selectivity` with `method` on a cold device and
    /// flushed pool (the paper's per-point protocol, §3.2).
    pub fn run_cold(&self, method: MethodSpec, selectivity: f64) -> Result<ScanMetrics, ExecError> {
        let mut device = self.make_device();
        let mut pool = self.make_pool();
        self.run_with(&mut *device, &mut pool, method, selectivity)
    }

    /// Execute query Q on a cold device that is simultaneously serving
    /// `streams` synthetic concurrent queries (each a serial random-read
    /// loop) — the §4.3 future-work scenario.
    pub fn run_under_load(
        &self,
        method: MethodSpec,
        selectivity: f64,
        streams: u32,
    ) -> Result<ScanMetrics, ExecError> {
        let mut device = pioqo_device::WithBackgroundLoad::new(
            LoadableDevice(self.make_device()),
            streams,
            1,
            self.cfg.seed ^ 0xB6,
        );
        let mut pool = self.make_pool();
        self.run_with(&mut device, &mut pool, method, selectivity)
    }

    /// Execute against caller-provided device/pool (for warm-cache and
    /// concurrency studies).
    pub fn run_with(
        &self,
        device: &mut dyn DeviceModel,
        pool: &mut BufferPool,
        method: MethodSpec,
        selectivity: f64,
    ) -> Result<ScanMetrics, ExecError> {
        self.run_with_traced(device, pool, method, selectivity, &mut NullSink)
    }

    /// [`Experiment::run_with`] plus a trace sink: when the sink is enabled
    /// the scan streams sim-time events into it (see `pioqo-obs`).
    pub fn run_with_traced(
        &self,
        device: &mut dyn DeviceModel,
        pool: &mut BufferPool,
        method: MethodSpec,
        selectivity: f64,
        trace: &mut dyn TraceSink,
    ) -> Result<ScanMetrics, ExecError> {
        let (low, high) = range_for_selectivity(selectivity, self.dataset.c2_max());
        let mut ctx = SimContext::new(device, pool, CpuConfig::paper_xeon(), CpuCosts::default());
        ctx.set_trace_sink(trace);
        let q = QuerySpec::range_max(self.dataset.table(), Some(self.dataset.index()), low, high)
            .with_plan(method.to_plan_spec());
        execute(&mut ctx, &q)
    }

    /// [`Experiment::run_with`] plus a metrics registry: counters,
    /// histograms and sim-time series accumulate into `metrics` and are
    /// folded once after the scan (see `pioqo_obs::MetricsRegistry`).
    pub fn run_with_metrics(
        &self,
        device: &mut dyn DeviceModel,
        pool: &mut BufferPool,
        method: MethodSpec,
        selectivity: f64,
        metrics: &mut MetricsRegistry,
    ) -> Result<ScanMetrics, ExecError> {
        let (low, high) = range_for_selectivity(selectivity, self.dataset.c2_max());
        let mut ctx = SimContext::new(device, pool, CpuConfig::paper_xeon(), CpuCosts::default());
        ctx.set_metrics(metrics);
        let q = QuerySpec::range_max(self.dataset.table(), Some(self.dataset.index()), low, high)
            .with_plan(method.to_plan_spec());
        let out = execute(&mut ctx, &q);
        ctx.fold_metrics();
        out
    }
}

/// Newtype so `WithBackgroundLoad` (generic over `D: DeviceModel`) can wrap
/// a boxed device.
struct LoadableDevice(Box<dyn DeviceModel>);

impl DeviceModel for LoadableDevice {
    fn page_size(&self) -> u32 {
        self.0.page_size()
    }
    fn capacity_pages(&self) -> u64 {
        self.0.capacity_pages()
    }
    fn submit(&mut self, now: pioqo_simkit::SimTime, req: pioqo_device::IoRequest) {
        self.0.submit(now, req)
    }
    fn next_event(&self) -> Option<pioqo_simkit::SimTime> {
        self.0.next_event()
    }
    fn advance(&mut self, now: pioqo_simkit::SimTime, out: &mut Vec<pioqo_device::IoCompletion>) {
        self.0.advance(now, out)
    }
    fn outstanding(&self) -> usize {
        self.0.outstanding()
    }
    fn name(&self) -> &str {
        self.0.name()
    }
    fn reset_state(&mut self) {
        self.0.reset_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows_matching_the_paper() {
        let t = ExperimentConfig::table1();
        assert_eq!(t.len(), 6);
        let names: Vec<_> = t.iter().map(|e| e.name.as_str()).collect();
        for expected in [
            "E1-HDD", "E1-SSD", "E33-HDD", "E33-SSD", "E500-HDD", "E500-SSD",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // Buffer pool is the paper's 64 MB everywhere.
        assert!(t.iter().all(|e| e.buffer_frames * 4096 == 64 << 20));
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(ExperimentConfig::by_name("e33-ssd").is_some());
        assert!(ExperimentConfig::by_name("E999-SSD").is_none());
    }

    #[test]
    fn cold_runs_agree_across_methods() {
        let cfg = ExperimentConfig::by_name("E33-SSD")
            .expect("exists")
            .scaled_down(400); // 20 000 rows
        let exp = Experiment::build(cfg);
        let sel = 0.05;
        let fts = exp
            .run_cold(MethodSpec::Fts { workers: 1 }, sel)
            .expect("runs");
        let pfts = exp
            .run_cold(MethodSpec::Fts { workers: 8 }, sel)
            .expect("runs");
        let is = exp
            .run_cold(
                MethodSpec::Is {
                    workers: 4,
                    prefetch: 4,
                },
                sel,
            )
            .expect("runs");
        let sorted = exp
            .run_cold(MethodSpec::SortedIs { prefetch: 16 }, sel)
            .expect("runs");
        assert_eq!(fts.max_c1, pfts.max_c1);
        assert_eq!(fts.max_c1, is.max_c1);
        assert_eq!(fts.max_c1, sorted.max_c1);
        assert_eq!(
            fts.max_c1,
            exp.dataset.oracle_max(sel),
            "scan answer must match the oracle"
        );
    }

    #[test]
    fn background_load_slows_a_scan() {
        let cfg = ExperimentConfig::by_name("E33-SSD")
            .expect("exists")
            .scaled_down(400);
        let exp = Experiment::build(cfg);
        let m = MethodSpec::Is {
            workers: 8,
            prefetch: 0,
        };
        let alone = exp.run_cold(m, 0.05).expect("runs");
        let crowded = exp.run_under_load(m, 0.05, 24).expect("runs");
        assert_eq!(alone.max_c1, crowded.max_c1);
        assert!(
            crowded.runtime > alone.runtime,
            "24 concurrent streams must slow the scan: {} vs {}",
            alone.runtime,
            crowded.runtime
        );
    }

    #[test]
    fn method_spec_display_names_match_paper() {
        assert_eq!(format!("{}", MethodSpec::Fts { workers: 1 }), "FTS");
        assert_eq!(format!("{}", MethodSpec::Fts { workers: 32 }), "PFTS32");
        assert_eq!(
            format!(
                "{}",
                MethodSpec::Is {
                    workers: 1,
                    prefetch: 0
                }
            ),
            "IS"
        );
        assert_eq!(
            format!(
                "{}",
                MethodSpec::Is {
                    workers: 32,
                    prefetch: 0
                }
            ),
            "PIS32"
        );
    }
}
