//! Old-vs-new optimizer evaluation (Fig. 8).
//!
//! For an experiment: calibrate the device (once), build the DTT-based
//! "old" optimizer and the QDTT-based "new" one, let each choose a plan at
//! every selectivity, execute the chosen plans in the simulator, and report
//! runtimes plus the speedup — §4.3's protocol.

use crate::experiments::{Experiment, MethodSpec};
use pioqo_core::{CalibrationConfig, Calibrator, Dtt, Qdtt};
use pioqo_optimizer::{
    AccessMethod, DttCost, Optimizer, OptimizerConfig, Plan, QdttCost, TableStats,
};
use serde::{Deserialize, Serialize};

/// One Fig. 8 point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptEvalPoint {
    /// Predicate selectivity.
    pub selectivity: f64,
    /// The old (DTT) optimizer's plan, rendered like the paper ("IS",
    /// "PFTS32"...).
    pub old_plan: String,
    /// Old plan's measured runtime, seconds.
    pub old_runtime_s: f64,
    /// The new (QDTT) optimizer's plan.
    pub new_plan: String,
    /// New plan's measured runtime, seconds.
    pub new_runtime_s: f64,
    /// `old_runtime / new_runtime` — the paper's speedup curve.
    pub speedup: f64,
}

/// Calibrated models for an experiment's device.
pub struct CalibratedModels {
    /// The queue-depth-blind model (old optimizer).
    pub dtt: Dtt,
    /// The queue-depth-aware model (new optimizer).
    pub qdtt: Qdtt,
}

/// Calibrate the experiment's device with the paper's defaults.
///
/// Grid points run in parallel on the harness pool, one fresh cold
/// device per point (`calibrate_qdtt_with`), so the result is identical
/// at any thread count.
pub fn calibrate(exp: &Experiment) -> CalibratedModels {
    let dev = exp.make_device();
    let cfg = CalibrationConfig::for_device(dev.capacity_pages(), exp.cfg.seed ^ 0xCA11);
    let cal = Calibrator::new(cfg);
    let (qdtt, _) = cal.calibrate_qdtt_with(|| exp.make_device());
    CalibratedModels {
        dtt: qdtt.to_dtt(),
        qdtt,
    }
}

/// Map an optimizer plan onto an executable method spec.
pub fn plan_to_method(plan: &Plan, is_prefetch: u32) -> MethodSpec {
    match plan.method {
        AccessMethod::TableScan => MethodSpec::Fts {
            workers: plan.degree,
        },
        AccessMethod::IndexScan => MethodSpec::Is {
            workers: plan.degree,
            prefetch: is_prefetch,
        },
        AccessMethod::SortedIndexScan => MethodSpec::SortedIs {
            prefetch: plan.queue_depth,
        },
    }
}

/// Catalog statistics as the optimizer sees them at plan time (cold pool).
pub fn cold_stats(exp: &Experiment) -> TableStats {
    let pool = exp.make_pool();
    TableStats::gather(exp.dataset.table(), exp.dataset.index(), &pool)
}

/// Run the full Fig. 8 protocol over `selectivities`.
pub fn evaluate(
    exp: &Experiment,
    models: &CalibratedModels,
    opt_cfg: &OptimizerConfig,
    selectivities: &[f64],
) -> Vec<OptEvalPoint> {
    let old_model = DttCost(models.dtt.clone());
    let new_model = QdttCost(models.qdtt.clone());
    let stats = cold_stats(exp);

    // Each selectivity plans and executes independently against its own
    // cold device+pool — fan the points out across the harness pool.
    // (Optimizers are built per point: they are a couple of pointers, and
    // `Optimizer` borrows a `dyn IoCostModel` that carries no Sync bound.)
    pioqo_simkit::par::par_map(exp.cfg.seed, selectivities, |_rng, &sel| {
        let old = Optimizer::new(&old_model, opt_cfg.clone());
        let new = Optimizer::new(&new_model, opt_cfg.clone());
        let old_plan = old.choose(&stats, sel);
        let new_plan = new.choose(&stats, sel);
        let old_method = plan_to_method(&old_plan, opt_cfg.is_prefetch_depth);
        let new_method = plan_to_method(&new_plan, opt_cfg.is_prefetch_depth);
        let old_m = exp.run_cold(old_method, sel).expect("old plan runs");
        let new_m = exp.run_cold(new_method, sel).expect("new plan runs");
        let old_s = old_m.runtime.as_secs_f64();
        let new_s = new_m.runtime.as_secs_f64();
        OptEvalPoint {
            selectivity: sel,
            old_plan: format!("{old_method}"),
            old_runtime_s: old_s,
            new_plan: format!("{new_method}"),
            new_runtime_s: new_s,
            speedup: if new_s > 0.0 { old_s / new_s } else { 1.0 },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentConfig;

    #[test]
    fn qdtt_optimizer_never_loses_badly_on_ssd() {
        // Large enough that per-worker startup does not dominate the
        // scan (at tiny scale staying serial is the *correct* choice).
        let cfg = ExperimentConfig::by_name("E33-SSD")
            .expect("exists")
            .scaled_down(20); // 400 000 rows
        let exp = Experiment::build(cfg);
        let models = calibrate(&exp);
        let pts = evaluate(
            &exp,
            &models,
            &OptimizerConfig::default(),
            &[0.002, 0.05, 0.5],
        );
        for p in &pts {
            assert!(p.speedup > 0.8, "new optimizer should not regress: {p:?}");
        }
        // Somewhere the new optimizer should clearly win.
        assert!(
            pts.iter().any(|p| p.speedup > 2.0),
            "expected a clear QDTT win: {pts:?}"
        );
    }

    #[test]
    fn old_optimizer_runs_serial_plans() {
        let cfg = ExperimentConfig::by_name("E33-SSD")
            .expect("exists")
            .scaled_down(200);
        let exp = Experiment::build(cfg);
        let models = calibrate(&exp);
        let pts = evaluate(&exp, &models, &OptimizerConfig::default(), &[0.01, 0.3]);
        for p in &pts {
            assert!(
                p.old_plan == "IS" || p.old_plan == "FTS",
                "old optimizer must be serial: {}",
                p.old_plan
            );
        }
    }
}
