//! Session-scale study: how far the closed-loop session count can grow
//! before the engine (not the simulated machine) becomes the bottleneck.
//!
//! The concurrency grid ([`crate::concurrent`]) stops at 16 sessions —
//! enough to show plan choice shifting under queue-depth leases. This
//! module pushes the same machinery to 1K/10K/100K sessions running an
//! *overlapping-scan* workload (every query is a selectivity-0.4 range
//! MAX, i.e. a table scan), and compares two execution modes on identical
//! specs:
//!
//! * **unshared** — every admitted query runs its own (P)FTS cursor;
//! * **shared** — queries ride the cooperative [`pioqo_exec::ScanHub`]
//!   cursor, admitted at marginal cost by `QdttAdmission::admit_shared`.
//!
//! Answers are byte-identical either way (the tests assert it); what
//! changes is the simulated device traffic and, dominantly, the harness
//! wall-clock — one circular cursor replaces N interleaved scan drivers.
//! Virtual-time throughput and tail latency land in
//! [`SessionScaleCell`]; wall-clock throughput is measured by the bench
//! binary, which re-runs single cells under a timer (this crate stays
//! wall-clock-free so results remain byte-deterministic).

use crate::concurrent::run_cell;
use crate::experiments::{DeviceKind, Experiment, ExperimentConfig};
use crate::opteval::calibrate;
use pioqo_core::Qdtt;
use pioqo_exec::{ExecError, ThinkTime, WorkloadSpec};
use pioqo_optimizer::OptimizerConfig;
use pioqo_simkit::par::par_map_threads;
use pioqo_simkit::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration of the session-scale sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionScaleConfig {
    /// Rows in the shared table (kept small: the point is session count,
    /// not table size).
    pub rows: u64,
    /// Rows per page.
    pub rows_per_page: u32,
    /// Buffer pool frames shared by all sessions.
    pub buffer_frames: usize,
    /// Session counts to sweep.
    pub session_counts: Vec<u32>,
    /// Queries each session issues.
    pub queries_per_session: u32,
    /// The single (scan-friendly) selectivity every query uses.
    pub selectivity: f64,
    /// Mean exponential think time between a session's queries, µs.
    pub think_mean_us: u64,
    /// Per-query record cap in the report ([`WorkloadSpec::record_limit`]);
    /// at 100K sessions the full record vector dominates memory.
    pub record_limit: Option<u64>,
    /// Largest session count that still runs an *unshared* cell. Without
    /// sharing, every device completion polls every running scan driver,
    /// so unshared wall-clock grows with sessions² — the 10K baseline
    /// alone costs ~10 minutes of harness time. `None` removes the cap.
    pub unshared_cap: Option<u32>,
    /// Master seed.
    pub seed: u64,
}

impl Default for SessionScaleConfig {
    fn default() -> SessionScaleConfig {
        SessionScaleConfig {
            rows: 9_900,
            rows_per_page: 33,
            // Smaller than the 300-page table on purpose: a pool that
            // swallows the whole table turns every plan into cached CPU
            // and there is nothing left to share.
            buffer_frames: 128,
            session_counts: vec![1_000, 10_000, 100_000],
            queries_per_session: 1,
            selectivity: 0.4,
            think_mean_us: 2_000,
            record_limit: Some(10_000),
            unshared_cap: Some(1_000),
            seed: 42,
        }
    }
}

impl SessionScaleConfig {
    /// The experiment fixture (SSD — the device where shared scans earn
    /// their keep; a spindle serializes everything anyway).
    pub fn experiment(&self) -> ExperimentConfig {
        ExperimentConfig {
            name: format!("S{}-SSD", self.rows_per_page),
            table: format!("T{}", self.rows_per_page),
            rows_per_page: self.rows_per_page,
            rows: self.rows,
            device: DeviceKind::Ssd,
            buffer_frames: self.buffer_frames,
            seed: self.seed,
        }
    }

    /// The workload spec for one cell.
    pub fn workload(&self, sessions: u32, shared: bool) -> WorkloadSpec {
        WorkloadSpec {
            sessions,
            queries_per_session: self.queries_per_session,
            think: ThinkTime::Exponential {
                mean: SimDuration::from_micros(self.think_mean_us),
            },
            selectivities: vec![self.selectivity],
            seed: self.seed,
            horizon: None,
            writes: None,
            shared_scans: shared,
            record_limit: self.record_limit,
        }
    }
}

/// One (session count, execution mode) point of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionScaleCell {
    /// Concurrent sessions.
    pub sessions: u32,
    /// Whether queries rode the shared-scan cursor.
    pub shared: bool,
    /// Queries completed across all sessions.
    pub completed: u64,
    /// First admission to last completion, milliseconds of virtual time.
    pub makespan_ms: f64,
    /// Mean query latency, µs.
    pub mean_latency_us: f64,
    /// 99th-percentile query latency bucket, µs.
    pub p99_latency_us: u64,
    /// Max/min completed-query ratio across sessions.
    pub fairness: f64,
    /// Consumers that attached to a shared cursor.
    pub attaches: u64,
    /// Shared cursors started (device streams paid for).
    pub cursor_starts: u64,
    /// `attaches / completed`.
    pub attach_rate: f64,
    /// Completed queries per second of *virtual* time.
    pub queries_per_sim_s: f64,
}

impl SessionScaleCell {
    /// CSV header matching [`SessionScaleCell::csv_row`].
    pub fn csv_header() -> &'static str {
        "sessions,shared,completed,makespan_ms,mean_latency_us,p99_latency_us,\
         fairness,attaches,cursor_starts,attach_rate,queries_per_sim_s"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.3},{:.1},{},{:.3},{},{},{:.4},{:.1}",
            self.sessions,
            self.shared,
            self.completed,
            self.makespan_ms,
            self.mean_latency_us,
            self.p99_latency_us,
            self.fairness,
            self.attaches,
            self.cursor_starts,
            self.attach_rate,
            self.queries_per_sim_s,
        )
    }
}

/// Build the sweep's fixture once: dataset plus the calibrated QDTT model
/// every cell shares (calibration is deterministic per seed, so sharing it
/// changes nothing except wall-clock).
pub fn session_scale_fixture(cfg: &SessionScaleConfig) -> (Experiment, Qdtt) {
    let exp = Experiment::build(cfg.experiment());
    let model = calibrate(&exp).qdtt;
    (exp, model)
}

/// Run one cell on a fresh device and flushed pool.
pub fn session_scale_cell(
    exp: &Experiment,
    model: &Qdtt,
    cfg: &SessionScaleConfig,
    sessions: u32,
    shared: bool,
) -> Result<SessionScaleCell, ExecError> {
    let opt_cfg = OptimizerConfig::fine_grained();
    let (report, _admissions) = run_cell(exp, model, &opt_cfg, cfg.workload(sessions, shared))?;
    let makespan_s = report.makespan.as_micros_f64() / 1_000_000.0;
    Ok(SessionScaleCell {
        sessions,
        shared,
        completed: report.total_completed(),
        makespan_ms: report.makespan.as_micros_f64() / 1_000.0,
        mean_latency_us: report.query_latency_us.mean(),
        p99_latency_us: report.p99_latency_us,
        fairness: report.fairness_ratio(),
        attaches: report.shared.attaches,
        cursor_starts: report.shared.cursor_starts,
        attach_rate: report.shared_attach_rate(),
        queries_per_sim_s: if makespan_s > 0.0 {
            report.total_completed() as f64 / makespan_s
        } else {
            0.0
        },
    })
}

/// Sweep `session_counts` × {unshared, shared}. Cells fan out over
/// `threads` harness workers; output is byte-identical for any thread
/// count, including 1.
pub fn session_scale_sweep(
    cfg: &SessionScaleConfig,
    threads: usize,
) -> Result<Vec<SessionScaleCell>, ExecError> {
    let fixture = session_scale_fixture(cfg);
    let mut cells: Vec<(u32, bool)> = Vec::new();
    for &s in &cfg.session_counts {
        if cfg.unshared_cap.is_none_or(|cap| s <= cap) {
            cells.push((s, false));
        }
        cells.push((s, true));
    }
    let results = par_map_threads(
        threads,
        cfg.seed ^ 0x5E55,
        &cells,
        |_rng, &(sessions, shared)| {
            session_scale_cell(&fixture.0, &fixture.1, cfg, sessions, shared)
        },
    );
    results.into_iter().collect()
}

/// Render sweep rows as the `repro --session-scale` CSV.
pub fn session_scale_csv(cells: &[SessionScaleCell]) -> String {
    let mut out = String::from(SessionScaleCell::csv_header());
    out.push('\n');
    for cell in cells {
        out.push_str(&cell.csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SessionScaleConfig {
        SessionScaleConfig {
            rows: 3_300,
            buffer_frames: 48,
            session_counts: vec![64],
            ..SessionScaleConfig::default()
        }
    }

    #[test]
    fn sweep_is_thread_count_invariant_and_repeatable() {
        let cfg = tiny();
        let a = session_scale_sweep(&cfg, 1).expect("threads=1");
        let b = session_scale_sweep(&cfg, 4).expect("threads=4");
        let c = session_scale_sweep(&cfg, 1).expect("rerun");
        assert_eq!(session_scale_csv(&a), session_scale_csv(&b));
        assert_eq!(session_scale_csv(&a), session_scale_csv(&c));
    }

    #[test]
    fn shared_cells_attach_and_answer_like_unshared() {
        let cfg = tiny();
        let cells = session_scale_sweep(&cfg, 2).expect("sweep");
        assert_eq!(cells.len(), 2);
        let unshared = &cells[0];
        let shared = &cells[1];
        assert!(!unshared.shared);
        assert!(shared.shared);
        assert_eq!(unshared.completed, 64);
        assert_eq!(shared.completed, 64);
        assert_eq!(unshared.attaches, 0);
        assert!(
            shared.attach_rate > 0.9,
            "an all-scan workload should attach nearly always: {}",
            shared.attach_rate
        );
        assert!(
            shared.cursor_starts < shared.attaches,
            "cursors must be shared: {} starts for {} attaches",
            shared.cursor_starts,
            shared.attaches
        );
    }
}
