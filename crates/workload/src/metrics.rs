//! Metrics capture harness: run experiment cells with the always-on
//! metrics registry enabled and export one merged, deterministic bundle.
//!
//! The shape mirrors [`crate::trace`]: a *cell* is one workload point,
//! every cell runs on its own simulated device, buffer pool and registry
//! (in parallel via `par_map_threads`), and the per-cell snapshots merge
//! in cell order under cell-label prefixes. Because the registry is
//! integer-only and keyed off the virtual clock, all four exports —
//! Prometheus text exposition, time-series CSV, summary JSON, and the
//! SLO verdict JSON — are byte-identical across runs and across any
//! worker-thread count (enforced by `tests/determinism.rs` and CI).
//!
//! Two cell kinds cover the instrumented subsystems end to end: a
//! single-query scan (engine/pool/device series, I/O histograms) and a
//! multi-session closed-loop workload under QDTT admission with shared
//! scans and the write system running (admission gauges, `ScanHub`
//! attach/detach counters, WAL group-commit and flush-lag metrics).

use crate::experiments::{Experiment, ExperimentConfig, MethodSpec};
use crate::opteval::calibrate;
use crate::trace::TraceError;
use pioqo_device::MediaStore;
use pioqo_exec::{
    CpuConfig, CpuCosts, MultiEngine, QuerySpec, SimContext, ThinkTime, WorkloadSpec, WriteConfig,
    WriteSystem,
};
use pioqo_obs::{
    evaluate_slos, slo_report_json, MetricsRegistry, MetricsSnapshot, SloCheck, SloSpec, SloVerdict,
};
use pioqo_optimizer::{OptimizerConfig, QdttAdmission};
use pioqo_simkit::par::par_map_threads;
use pioqo_simkit::SimDuration;
use pioqo_storage::{HeapTable, TableSpec, Tablespace};

/// What one metrics cell executes.
#[derive(Debug, Clone)]
pub enum CellKind {
    /// One cold query Q: `method` at `selectivity`.
    Scan {
        /// Access method to execute.
        method: MethodSpec,
        /// Predicate selectivity.
        selectivity: f64,
    },
    /// A closed-loop multi-session workload under QDTT admission.
    Sessions {
        /// Concurrent sessions.
        sessions: u32,
        /// Enable the shared-scan cursor.
        shared: bool,
        /// Run the write system (WAL + flusher) alongside the scans.
        writes: bool,
    },
}

/// One point of a metrics capture.
#[derive(Debug, Clone)]
pub struct MetricsCell {
    /// Table 1 row name, e.g. `"E33-SSD"` (case-insensitive).
    pub experiment: String,
    /// Row-count divisor applied to the Table 1 config (1 = full scale).
    pub scale_down: u64,
    /// Master seed for the cell's dataset and device.
    pub seed: u64,
    /// The workload to run.
    pub kind: CellKind,
}

impl MetricsCell {
    /// The label whose sanitized form prefixes this cell's metric names.
    pub fn label(&self) -> String {
        match &self.kind {
            CellKind::Scan {
                method,
                selectivity,
            } => format!("{}/{}@{}", self.experiment, method, selectivity),
            CellKind::Sessions {
                sessions,
                shared,
                writes,
            } => format!(
                "{}/SES{}{}{}",
                self.experiment,
                sessions,
                if *shared { "-shared" } else { "" },
                if *writes { "-writes" } else { "" }
            ),
        }
    }
}

/// The default capture scenario: the §2 queue-depth cell (PIS n = 8), an
/// FTS contrast cell, and an 8-session shared-scan cell with the write
/// system running, all on scaled-down Table 1 rows.
pub fn default_metrics_cells(seed: u64) -> Vec<MetricsCell> {
    vec![
        MetricsCell {
            experiment: "E33-SSD".to_string(),
            scale_down: 256,
            seed,
            kind: CellKind::Scan {
                method: MethodSpec::Is {
                    workers: 8,
                    prefetch: 0,
                },
                selectivity: 0.01,
            },
        },
        MetricsCell {
            experiment: "E33-SSD".to_string(),
            scale_down: 256,
            seed,
            kind: CellKind::Scan {
                method: MethodSpec::Fts { workers: 1 },
                selectivity: 0.01,
            },
        },
        MetricsCell {
            experiment: "E33-SSD".to_string(),
            scale_down: 256,
            seed,
            kind: CellKind::Sessions {
                sessions: 8,
                shared: true,
                writes: true,
            },
        },
    ]
}

/// The default SLO roster over [`default_metrics_cells`]: generous enough
/// to pass on the committed fixture, tight enough that a subsystem going
/// quiet (absent metric) or an order-of-magnitude regression fails.
pub fn default_slos() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "pis8_io_p99_us".to_string(),
            check: SloCheck::HistP99AtMost {
                hist: "e33_ssd_pis8_0_01_io_latency_us".to_string(),
                limit: 20_000,
            },
        },
        SloSpec {
            name: "shared_cursor_attaches".to_string(),
            check: SloCheck::CounterAtLeast {
                counter: "e33_ssd_ses8_shared_writes_shared_attach_total".to_string(),
                limit: 1,
            },
        },
        SloSpec {
            name: "wal_flush_lag_drains".to_string(),
            check: SloCheck::SeriesLastAtMost {
                series: "e33_ssd_ses8_shared_writes_wal_flush_lag_lsn".to_string(),
                limit: 64,
            },
        },
        SloSpec {
            name: "fts_pool_miss_permille".to_string(),
            check: SloCheck::RatioPermilleAtMost {
                num: "e33_ssd_fts_0_01_pool_misses_total".to_string(),
                den: "e33_ssd_fts_0_01_io_pages_read_total".to_string(),
                limit: 1_000,
            },
        },
    ]
}

/// A finished capture: four deterministic text documents ready to write
/// to `metrics.prom`, `series.csv`, `metrics.json` and `slo.json`.
#[derive(Debug, Clone)]
pub struct MetricsBundle {
    /// Prometheus text exposition of every counter/gauge/histogram.
    pub prometheus: String,
    /// All sim-time series as `series,t_us,value` rows.
    pub series_csv: String,
    /// Summary JSON (counters, gauges, histogram digests, series digests).
    pub summary_json: String,
    /// SLO verdicts as machine-readable JSON.
    pub slo_json: String,
    /// Every series as Chrome counter tracks (Perfetto-loadable, same
    /// schema `pioqo-lint trace-check` validates).
    pub counters_json: String,
    /// The merged snapshot the documents were rendered from.
    pub snapshot: MetricsSnapshot,
    /// The evaluated verdicts (also rendered into `slo_json`).
    pub verdicts: Vec<SloVerdict>,
}

impl MetricsBundle {
    /// True when every SLO passed.
    pub fn slo_pass(&self) -> bool {
        self.verdicts.iter().all(|v| v.pass)
    }
}

fn run_cell(cell: &MetricsCell, cadence: SimDuration) -> Result<MetricsSnapshot, TraceError> {
    let mut cfg = ExperimentConfig::by_name(&cell.experiment)
        .ok_or_else(|| TraceError::UnknownExperiment(cell.experiment.clone()))?
        .scaled_down(cell.scale_down);
    cfg.seed = cell.seed;
    let exp = Experiment::build(cfg);
    let mut registry = MetricsRegistry::enabled(cadence);
    match &cell.kind {
        CellKind::Scan {
            method,
            selectivity,
        } => {
            let mut device = exp.make_device();
            let mut pool = exp.make_pool();
            exp.run_with_metrics(
                device.as_mut(),
                &mut pool,
                *method,
                *selectivity,
                &mut registry,
            )?;
        }
        CellKind::Sessions {
            sessions,
            shared,
            writes,
        } => {
            run_sessions_cell(&exp, *sessions, *shared, *writes, &mut registry)?;
        }
    }
    Ok(registry.snapshot(&cell.label()))
}

/// Run the multi-session cell: QDTT admission over a model calibrated on
/// the cell's own fixture, optionally with shared scans and the write
/// system sharing the event loop (the write table and WAL live in the
/// dataset's slack pages, as in `crate::interference`).
fn run_sessions_cell(
    exp: &Experiment,
    sessions: u32,
    shared: bool,
    writes: bool,
    registry: &mut MetricsRegistry,
) -> Result<(), TraceError> {
    let model = calibrate(exp).qdtt;
    let mut planner = QdttAdmission::new(
        exp.dataset.table(),
        exp.dataset.index(),
        model,
        OptimizerConfig::default(),
    );
    let spec = WorkloadSpec {
        sessions,
        queries_per_session: 3,
        think: ThinkTime::Exponential {
            mean: SimDuration::from_micros(2_000),
        },
        selectivities: vec![0.001, 0.01, 0.05],
        seed: exp.cfg.seed,
        horizon: None,
        writes: None,
        shared_scans: shared,
        record_limit: None,
    };
    let base = QuerySpec::range_max(exp.dataset.table(), Some(exp.dataset.index()), 0, 0);
    let mut device = exp.make_device();
    let mut pool = exp.make_pool();
    let mut ctx = SimContext::new(
        &mut *device,
        &mut pool,
        CpuConfig::paper_xeon(),
        CpuCosts::default(),
    );
    ctx.set_metrics(registry);
    let engine = MultiEngine::new(spec, base, &mut planner);
    if writes {
        let used = exp.dataset.index().extent().end();
        let mut ts = Tablespace::new(exp.dataset.device_capacity());
        ts.alloc("scan-data", used)
            .expect("mirror of the dataset layout fits by construction");
        let wspec = TableSpec {
            name: format!("W{}", exp.cfg.rows_per_page),
            ..TableSpec::paper_table(exp.cfg.rows_per_page, 2_000, exp.cfg.seed ^ 0x57AB)
        };
        let table =
            HeapTable::create(wspec, &mut ts).expect("write table fits in the dataset slack");
        let wal = ts
            .alloc("wal", 2_048)
            .expect("WAL fits in the dataset slack");
        let mut ws = WriteSystem::new(
            WriteConfig::default(),
            &table,
            wal,
            MediaStore::new(table.spec().page_size),
        );
        engine.run_with_writes(&mut ctx, &mut ws)?;
    } else {
        engine.run(&mut ctx)?;
    }
    ctx.fold_metrics();
    Ok(())
}

/// Run every cell (its own device, pool and registry) and merge the
/// snapshots in cell order. `threads` bounds the worker pool; the output
/// is byte-identical for any value, including 1.
pub fn capture_metrics(
    cells: &[MetricsCell],
    cadence: SimDuration,
    slos: &[SloSpec],
    threads: usize,
) -> Result<MetricsBundle, TraceError> {
    let results = par_map_threads(threads, 0x4D45, cells, |_rng, cell| run_cell(cell, cadence));
    let mut snapshot = MetricsSnapshot::default();
    for r in results {
        snapshot.merge(&r?);
    }
    let verdicts = evaluate_slos(&snapshot, slos);
    Ok(MetricsBundle {
        prometheus: snapshot.to_prometheus(),
        series_csv: snapshot.series_csv(),
        summary_json: snapshot.summary_json(),
        slo_json: slo_report_json(&verdicts),
        counters_json: snapshot.chrome_counters_json(),
        snapshot,
        verdicts,
    })
}

/// [`default_metrics_cells`] shrunk for tests and smoke runs.
pub fn small_metrics_cells(seed: u64) -> Vec<MetricsCell> {
    let mut cells = default_metrics_cells(seed);
    for c in &mut cells {
        c.scale_down = 1024;
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_simkit::SimTime;

    #[test]
    fn capture_is_thread_count_invariant_and_repeatable() {
        let cells = small_metrics_cells(7);
        let cadence = SimDuration::from_millis(1);
        let slos = default_slos();
        let a = capture_metrics(&cells, cadence, &slos, 1).expect("threads=1");
        let b = capture_metrics(&cells, cadence, &slos, 4).expect("threads=4");
        let c = capture_metrics(&cells, cadence, &slos, 1).expect("second run");
        assert_eq!(a.prometheus, b.prometheus, "prometheus differs by threads");
        assert_eq!(a.series_csv, b.series_csv, "series csv differs by threads");
        assert_eq!(a.summary_json, b.summary_json, "summary differs by threads");
        assert_eq!(a.slo_json, b.slo_json, "slo differs by threads");
        assert_eq!(a.prometheus, c.prometheus, "prometheus differs across runs");
        assert_eq!(a.series_csv, c.series_csv, "series csv differs across runs");
    }

    #[test]
    fn default_cells_exercise_every_subsystem() {
        let cells = small_metrics_cells(7);
        let bundle = capture_metrics(&cells, SimDuration::from_millis(1), &[], 2).expect("runs");
        let s = &bundle.snapshot;
        // Engine + device + pool from the scan cells.
        assert!(s
            .counters
            .contains_key("e33_ssd_pis8_0_01_io_pages_read_total"));
        assert!(s
            .series
            .contains_key("e33_ssd_pis8_0_01_engine_queue_depth"));
        assert!(s.hists.contains_key("e33_ssd_pis8_0_01_io_latency_us"));
        // Shared scans, admission and WAL from the sessions cell.
        let ses = "e33_ssd_ses8_shared_writes";
        assert!(s.counters[&format!("{ses}_shared_attach_total")] >= 1);
        assert!(s.counters[&format!("{ses}_admission_total")] >= 1);
        assert!(s
            .hists
            .contains_key(&format!("{ses}_wal_group_commit_records")));
        assert!(s.series.contains_key(&format!("{ses}_wal_flush_lag_lsn")));
        assert!(s
            .series
            .contains_key(&format!("{ses}_admission_active_leases")));
        // The PIS n=8 cell should show the §2 plateau in its depth series.
        let depth = &s.series["e33_ssd_pis8_0_01_engine_queue_depth"];
        assert!(depth.max_value() >= 4, "depth series: {:?}", depth.points);
        // Exports are well formed.
        assert!(bundle.prometheus.contains("# TYPE"));
        assert!(bundle.series_csv.starts_with("series,t_us,value"));
        let _t = SimTime::ZERO; // keep the import honest under cfg(test)
    }

    #[test]
    fn default_slos_pass_on_the_default_cells() {
        let cells = small_metrics_cells(7);
        let slos = default_slos();
        let bundle = capture_metrics(&cells, SimDuration::from_millis(1), &slos, 2).expect("runs");
        for v in &bundle.verdicts {
            assert!(
                v.pass,
                "SLO {} failed: found={} observed={} limit={}",
                v.name, v.found, v.observed, v.limit
            );
        }
        assert!(bundle.slo_pass());
        assert!(bundle.slo_json.contains("\"pass\": true"));
    }

    #[test]
    fn unknown_experiment_is_reported() {
        let cells = vec![MetricsCell {
            experiment: "E7-TAPE".to_string(),
            scale_down: 1,
            seed: 0,
            kind: CellKind::Scan {
                method: MethodSpec::Fts { workers: 1 },
                selectivity: 0.5,
            },
        }];
        match capture_metrics(&cells, SimDuration::from_millis(1), &[], 1) {
            Err(TraceError::UnknownExperiment(name)) => assert_eq!(name, "E7-TAPE"),
            other => panic!("expected UnknownExperiment, got {other:?}"),
        }
    }
}
