//! Trace capture harness: run experiment cells with tracing enabled and
//! export one merged, deterministic observability bundle.
//!
//! A *cell* is one (Table 1 experiment, access method, selectivity) point.
//! [`capture_trace`] executes every cell — in parallel via
//! `pioqo_simkit::par_map_threads`, each cell on its own simulated device
//! and buffer pool with its own event ring — then merges the per-cell
//! results in cell order into:
//!
//! * a Chrome trace-event JSON document (Perfetto-loadable), with track
//!   names prefixed by the cell label so the cells render side by side;
//! * the combined histogram CSV (`hist,bucket_lo,bucket_hi,count`);
//! * a summary JSON with per-cell and workload-total counters.
//!
//! Everything is keyed off the virtual clock and per-cell seeds, and the
//! merge order is the submission order of the cells, so all three exports
//! are byte-identical across runs and across any worker-thread count.

use crate::experiments::{Experiment, ExperimentConfig, MethodSpec};
use pioqo_bufpool::PoolStats;
use pioqo_exec::{ExecError, ResilienceStats, ScanMetrics};
use pioqo_obs::{chrome_trace_json, HistSet, RingSink, TraceEvent};
use pioqo_simkit::par::par_map_threads;
use serde::Serialize;

/// One (experiment, method, selectivity) point of a trace capture.
#[derive(Debug, Clone)]
pub struct TraceCell {
    /// Table 1 row name, e.g. `"E33-SSD"` (case-insensitive).
    pub experiment: String,
    /// Row-count divisor applied to the Table 1 config (1 = full scale).
    pub scale_down: u64,
    /// Master seed for the cell's dataset and device.
    pub seed: u64,
    /// Access method to execute.
    pub method: MethodSpec,
    /// Predicate selectivity for query Q.
    pub selectivity: f64,
}

impl TraceCell {
    /// The label used to prefix this cell's tracks and summary row.
    pub fn label(&self) -> String {
        format!("{}/{}@{}", self.experiment, self.method, self.selectivity)
    }
}

/// The default capture scenario: the paper's §2 queue-depth observation
/// (PIS with n = 8 workers drives the device at depth 8) plus an FTS and a
/// sorted-IS cell for contrast, all on scaled-down Table 1 rows.
pub fn default_trace_cells(seed: u64) -> Vec<TraceCell> {
    vec![
        TraceCell {
            experiment: "E33-SSD".to_string(),
            scale_down: 256,
            seed,
            method: MethodSpec::Is {
                workers: 8,
                prefetch: 0,
            },
            selectivity: 0.01,
        },
        TraceCell {
            experiment: "E33-SSD".to_string(),
            scale_down: 256,
            seed,
            method: MethodSpec::Fts { workers: 1 },
            selectivity: 0.01,
        },
        TraceCell {
            experiment: "E33-HDD".to_string(),
            scale_down: 256,
            seed,
            method: MethodSpec::SortedIs { prefetch: 8 },
            selectivity: 0.01,
        },
    ]
}

/// Errors a capture can hit.
#[derive(Debug)]
pub enum TraceError {
    /// The cell named a Table 1 experiment that does not exist.
    UnknownExperiment(String),
    /// The scan itself failed.
    Exec(ExecError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::UnknownExperiment(name) => {
                write!(f, "unknown Table 1 experiment: {name}")
            }
            TraceError::Exec(e) => write!(f, "scan failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<ExecError> for TraceError {
    fn from(e: ExecError) -> TraceError {
        TraceError::Exec(e)
    }
}

/// Everything one cell produced, before merging.
struct CellCapture {
    label: String,
    tracks: Vec<String>,
    events: Vec<TraceEvent>,
    recorded: u64,
    dropped: u64,
    metrics: ScanMetrics,
}

/// Per-cell row of the summary JSON.
#[derive(Debug, Clone, Serialize)]
pub struct CellSummary {
    /// Cell label (`experiment/method@selectivity`).
    pub label: String,
    /// Virtual runtime in seconds.
    pub runtime_secs: f64,
    /// Rows satisfying the predicate.
    pub rows_matched: u64,
    /// Pages transferred from the device.
    pub pages_read: u64,
    /// I/O operations completed.
    pub io_ops: u64,
    /// Most populated queue-depth bucket (lower bound).
    pub modal_queue_depth: u64,
    /// Median per-I/O latency bucket, µs.
    pub p50_io_latency_us: u64,
    /// 99th-percentile per-I/O latency bucket, µs.
    pub p99_io_latency_us: u64,
    /// Buffer-pool counters for the cell.
    pub pool: PoolStats,
    /// Fault-handling counters for the cell.
    pub resilience: ResilienceStats,
    /// Events the ring accepted.
    pub events_recorded: u64,
    /// Events the ring discarded (capacity overflow; oldest first).
    pub events_dropped: u64,
}

/// Workload-total tail of the summary JSON.
#[derive(Debug, Clone, Serialize)]
pub struct TraceTotals {
    /// Field-wise sum of every cell's pool counters.
    pub pool: PoolStats,
    /// Field-wise sum of every cell's fault counters.
    pub resilience: ResilienceStats,
    /// Most populated queue-depth bucket across all cells.
    pub modal_queue_depth: u64,
    /// 99th-percentile I/O latency bucket across all cells, µs.
    pub p99_io_latency_us: u64,
    /// Events accepted across all rings.
    pub events_recorded: u64,
    /// Events discarded across all rings.
    pub events_dropped: u64,
}

#[derive(Debug, Clone, Serialize)]
struct TraceSummary {
    cells: Vec<CellSummary>,
    totals: TraceTotals,
}

/// A finished capture: three deterministic text documents ready to write
/// to `trace.json`, `hists.csv` and `summary.json`.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Chrome trace-event JSON (load in Perfetto or `chrome://tracing`).
    pub chrome_json: String,
    /// Merged histogram CSV across all cells.
    pub hist_csv: String,
    /// Per-cell + total summary JSON.
    pub summary_json: String,
    /// Combined histograms (also rendered into `hist_csv`).
    pub hists: HistSet,
    /// Per-cell summary rows (also rendered into `summary_json`).
    pub cells: Vec<CellSummary>,
}

fn run_cell(cell: &TraceCell, ring_capacity: usize) -> Result<CellCapture, TraceError> {
    let mut cfg = ExperimentConfig::by_name(&cell.experiment)
        .ok_or_else(|| TraceError::UnknownExperiment(cell.experiment.clone()))?
        .scaled_down(cell.scale_down);
    cfg.seed = cell.seed;
    let exp = Experiment::build(cfg);
    let mut device = exp.make_device();
    let mut pool = exp.make_pool();
    let mut sink = RingSink::with_capacity(ring_capacity);
    let metrics = exp.run_with_traced(
        device.as_mut(),
        &mut pool,
        cell.method,
        cell.selectivity,
        &mut sink,
    )?;
    Ok(CellCapture {
        label: cell.label(),
        tracks: sink.track_names().to_vec(),
        events: sink.events().copied().collect(),
        recorded: sink.recorded(),
        dropped: sink.dropped(),
        metrics,
    })
}

/// Run every cell (its own device, pool and event ring) and merge the
/// results in cell order. `threads` bounds the worker pool; the output is
/// byte-identical for any value, including 1.
pub fn capture_trace(
    cells: &[TraceCell],
    ring_capacity: usize,
    threads: usize,
) -> Result<TraceBundle, TraceError> {
    let results = par_map_threads(threads, 0xB5, cells, |_rng, cell| {
        run_cell(cell, ring_capacity)
    });
    let mut caps = Vec::with_capacity(results.len());
    for r in results {
        caps.push(r?);
    }

    // One global track table: cell-local ids are remapped by a per-cell
    // offset, and names get the cell label as a prefix.
    let mut tracks: Vec<String> = Vec::new();
    let mut events: Vec<TraceEvent> = Vec::new();
    for cap in &caps {
        let base = tracks.len() as u32;
        for name in &cap.tracks {
            tracks.push(format!("{}/{}", cap.label, name));
        }
        for ev in &cap.events {
            let mut ev = *ev;
            ev.track += base;
            events.push(ev);
        }
    }
    let chrome_json = chrome_trace_json(&tracks, events.iter());

    let mut hists = HistSet::new();
    let mut totals = TraceTotals {
        pool: PoolStats::default(),
        resilience: ResilienceStats::default(),
        modal_queue_depth: 0,
        p99_io_latency_us: 0,
        events_recorded: 0,
        events_dropped: 0,
    };
    let mut cell_rows = Vec::with_capacity(caps.len());
    for cap in &caps {
        let m = &cap.metrics;
        hists.merge(&m.hists);
        totals.pool.merge(&m.pool);
        totals.resilience.merge(&m.resilience);
        totals.events_recorded += cap.recorded;
        totals.events_dropped += cap.dropped;
        cell_rows.push(CellSummary {
            label: cap.label.clone(),
            runtime_secs: m.runtime_secs(),
            rows_matched: m.rows_matched,
            pages_read: m.io.pages_read,
            io_ops: m.io.io_ops,
            modal_queue_depth: m.hists.queue_depth.mode_lo(),
            p50_io_latency_us: m.hists.io_latency_us.quantile_lo(50, 100),
            p99_io_latency_us: m.hists.io_latency_us.quantile_lo(99, 100),
            pool: m.pool.clone(),
            resilience: m.resilience,
            events_recorded: cap.recorded,
            events_dropped: cap.dropped,
        });
    }
    totals.modal_queue_depth = hists.queue_depth.mode_lo();
    totals.p99_io_latency_us = hists.io_latency_us.quantile_lo(99, 100);

    let hist_csv = hists.to_csv();
    let summary = TraceSummary {
        cells: cell_rows,
        totals,
    };
    let summary_json = match serde_json::to_string_pretty(&summary) {
        Ok(s) => s,
        Err(_) => String::from("{}"),
    };
    Ok(TraceBundle {
        chrome_json,
        hist_csv,
        summary_json,
        hists,
        cells: summary.cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cells() -> Vec<TraceCell> {
        let mut cells = default_trace_cells(7);
        for c in &mut cells {
            c.scale_down = 1024;
        }
        cells
    }

    #[test]
    fn capture_is_thread_count_invariant_and_repeatable() {
        let cells = small_cells();
        let a = capture_trace(&cells, 1 << 14, 1).expect("threads=1 capture");
        let b = capture_trace(&cells, 1 << 14, 4).expect("threads=4 capture");
        let c = capture_trace(&cells, 1 << 14, 1).expect("second threads=1 capture");
        assert_eq!(
            a.chrome_json, b.chrome_json,
            "chrome json differs by thread count"
        );
        assert_eq!(a.hist_csv, b.hist_csv, "hist csv differs by thread count");
        assert_eq!(
            a.summary_json, b.summary_json,
            "summary differs by thread count"
        );
        assert_eq!(
            a.chrome_json, c.chrome_json,
            "chrome json differs across runs"
        );
        assert_eq!(
            a.summary_json, c.summary_json,
            "summary differs across runs"
        );
    }

    #[test]
    fn pis8_cell_has_modal_queue_depth_eight() {
        // The paper's §2 observation: PIS with n workers drives the device
        // at queue depth n.
        let cells = default_trace_cells(7);
        let bundle = capture_trace(&cells[..1], 1 << 14, 1).expect("capture");
        assert_eq!(
            bundle.cells[0].modal_queue_depth, 8,
            "PIS n=8 should keep 8 I/Os outstanding most of the time"
        );
        assert!(bundle.cells[0].events_recorded > 0);
    }

    #[test]
    fn chrome_json_carries_cell_prefixed_tracks() {
        let cells = small_cells();
        let bundle = capture_trace(&cells[..1], 1 << 12, 1).expect("capture");
        assert!(bundle.chrome_json.contains("E33-SSD/PIS8@0.01/io"));
        assert!(bundle.chrome_json.contains("\"traceEvents\""));
        assert!(bundle
            .hist_csv
            .starts_with("hist,bucket_lo,bucket_hi,count"));
    }

    #[test]
    fn unknown_experiment_is_reported() {
        let cells = vec![TraceCell {
            experiment: "E7-TAPE".to_string(),
            scale_down: 1,
            seed: 0,
            method: MethodSpec::Fts { workers: 1 },
            selectivity: 0.5,
        }];
        match capture_trace(&cells, 64, 1) {
            Err(TraceError::UnknownExperiment(name)) => assert_eq!(name, "E7-TAPE"),
            other => panic!("expected UnknownExperiment, got {other:?}"),
        }
    }
}
