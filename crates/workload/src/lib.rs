//! # pioqo-workload — the paper's experiments as a library
//!
//! Everything the reproduction harness (and downstream users) need to run
//! the paper's evaluation:
//!
//! * [`ExperimentConfig::table1`] — the six E1/E33/E500 × HDD/SSD
//!   configurations of Table 1 at simulation scale;
//! * [`Experiment`] — builds the dataset, manufactures cold devices and
//!   flushed 64 MB buffer pools, and executes query Q with any
//!   [`MethodSpec`] (FTS/PFTS/IS/PIS/sorted-IS);
//! * [`sweep`] — runtime-vs-selectivity curves and break-even bisection
//!   (Fig. 4, Table 2);
//! * [`opteval`] — calibrate → optimize (DTT vs QDTT) → execute (Fig. 8);
//! * [`concurrent`] — the §4.3 concurrency grid: N closed-loop sessions
//!   under QDTT-aware admission control, per device;
//! * [`interference`] — scan-vs-checkpoint interference: the same scan
//!   sessions with the crash-consistent write path (WAL + background
//!   flusher) on and off, isolating what writeback does to scan p99;
//! * [`joins`] — the join-crossover grid: INL vs hybrid hash costed and
//!   executed per device and per queue-depth lease;
//! * [`sessions`] — the session-scale study: 1K/10K/100K closed-loop
//!   sessions on overlapping scans, cooperative shared-scan cursor vs
//!   one cursor per query.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod concurrent;
pub mod dataset;
pub mod experiments;
pub mod interference;
pub mod joins;
pub mod metrics;
pub mod opteval;
pub mod sessions;
pub mod sweep;
pub mod trace;

pub use concurrent::{
    concurrency_grid, grid_csv, run_cell, run_cell_traced, session_export, ConcurrencyCell,
    ConcurrencyConfig, SessionExport,
};
pub use dataset::Dataset;
pub use experiments::{DeviceKind, Experiment, ExperimentConfig, MethodSpec};
pub use interference::{interference_csv, interference_sweep, InterferenceCell};
pub use joins::{join_grid, join_grid_csv, JoinCell, JoinGridConfig};
pub use metrics::{
    capture_metrics, default_metrics_cells, default_slos, small_metrics_cells, CellKind,
    MetricsBundle, MetricsCell,
};
pub use opteval::{
    calibrate, cold_stats, evaluate, plan_to_method, CalibratedModels, OptEvalPoint,
};
pub use sessions::{
    session_scale_cell, session_scale_csv, session_scale_fixture, session_scale_sweep,
    SessionScaleCell, SessionScaleConfig,
};
pub use sweep::{break_even, runtime_curve, SweepPoint};
pub use trace::{capture_trace, default_trace_cells, TraceBundle, TraceCell, TraceError};
