//! Deterministic column data generation.
//!
//! The paper inserts uniformly distributed random integers into every
//! column (§3.1). We generate `C1` and `C2` from a seeded RNG so a given
//! [`TableSpec`] always produces identical data — a requirement for
//! reproducible experiments and for checking scan results against a naive
//! evaluator.

use crate::spec::TableSpec;
use pioqo_simkit::SimRng;

/// In-memory column data for a table.
///
/// The experiments never ship padding bytes around: the simulator charges
/// I/O time per *page* while the logical values live in these compact
/// columns (see DESIGN.md §1). Physical page bytes are produced on demand
/// by the page codec when a test or the real-file path needs them.
#[derive(Debug, Clone)]
pub struct ColumnData {
    c1: Vec<u32>,
    c2: Vec<u32>,
}

impl ColumnData {
    /// Generate data for `spec` (uniform `C1`, uniform `C2 ∈ [0, c2_max]`).
    pub fn generate(spec: &TableSpec) -> ColumnData {
        let mut master = SimRng::seeded(spec.seed);
        let mut r1 = master.fork(0xC1);
        let mut r2 = master.fork(0xC2);
        let n = spec.rows as usize;
        let mut c1 = Vec::with_capacity(n);
        let mut c2 = Vec::with_capacity(n);
        for _ in 0..n {
            c1.push(r1.in_range(0, u32::MAX as u64) as u32);
            c2.push(r2.in_range(0, spec.c2_max as u64) as u32);
        }
        ColumnData { c1, c2 }
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.c1.len() as u64
    }

    /// `C1` value of `row`.
    #[inline]
    pub fn c1(&self, row: u64) -> u32 {
        self.c1[row as usize]
    }

    /// `C2` value of `row`.
    #[inline]
    pub fn c2(&self, row: u64) -> u32 {
        self.c2[row as usize]
    }

    /// All `(C2, row)` pairs — input to the index bulk loader.
    pub fn c2_entries(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.c2.iter().enumerate().map(|(i, &k)| (k, i as u64))
    }

    /// Naive evaluation of the paper's query
    /// `SELECT MAX(C1) FROM T WHERE C2 BETWEEN low AND high` — the oracle
    /// all scan operators are validated against.
    pub fn naive_max_c1(&self, low: u32, high: u32) -> Option<u32> {
        self.c2
            .iter()
            .zip(&self.c1)
            .filter(|&(&c2, _)| c2 >= low && c2 <= high)
            .map(|(_, &c1)| c1)
            .max()
    }

    /// Number of rows matching `C2 BETWEEN low AND high`.
    pub fn count_matching(&self, low: u32, high: u32) -> u64 {
        self.c2.iter().filter(|&&v| v >= low && v <= high).count() as u64
    }
}

/// The `[low, high]` predicate range centred in the `C2` domain whose
/// expected selectivity is `sel` (fraction in `[0, 1]`).
pub fn range_for_selectivity(sel: f64, c2_max: u32) -> (u32, u32) {
    let domain = c2_max as f64 + 1.0;
    let width = (sel.clamp(0.0, 1.0) * domain).round();
    if width <= 0.0 {
        // Empty range: high < low selects nothing.
        return (1, 0);
    }
    let width = width as u64;
    let low = ((domain as u64 - width) / 2) as u32;
    let high = (low as u64 + width - 1).min(c2_max as u64) as u32;
    (low, high)
}

/// Exact expected selectivity of `C2 BETWEEN low AND high` over a uniform
/// domain `[0, c2_max]`.
pub fn selectivity_of_range(low: u32, high: u32, c2_max: u32) -> f64 {
    if high < low {
        return 0.0;
    }
    (high as f64 - low as f64 + 1.0) / (c2_max as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rows: u64) -> TableSpec {
        TableSpec::paper_table(33, rows, 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ColumnData::generate(&spec(1000));
        let b = ColumnData::generate(&spec(1000));
        for r in 0..1000 {
            assert_eq!(a.c1(r), b.c1(r));
            assert_eq!(a.c2(r), b.c2(r));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = spec(1000);
        s2.seed = 43;
        let a = ColumnData::generate(&spec(1000));
        let b = ColumnData::generate(&s2);
        let same = (0..1000).filter(|&r| a.c2(r) == b.c2(r)).count();
        assert!(same < 10);
    }

    #[test]
    fn selectivity_ranges_hit_target() {
        let data = ColumnData::generate(&spec(200_000));
        for target in [0.001, 0.01, 0.1, 0.5] {
            let (lo, hi) = range_for_selectivity(target, u32::MAX - 1);
            let got = data.count_matching(lo, hi) as f64 / 200_000.0;
            assert!(
                (got - target).abs() < target * 0.2 + 0.001,
                "target {target}, got {got}"
            );
            let exact = selectivity_of_range(lo, hi, u32::MAX - 1);
            assert!((exact - target).abs() < 0.001);
        }
    }

    #[test]
    fn zero_and_full_selectivity() {
        let (lo, hi) = range_for_selectivity(0.0, 1000);
        assert!(hi < lo);
        assert_eq!(selectivity_of_range(lo, hi, 1000), 0.0);
        let (lo, hi) = range_for_selectivity(1.0, 1000);
        assert_eq!((lo, hi), (0, 1000));
        assert!((selectivity_of_range(lo, hi, 1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn naive_oracle_matches_manual_filter() {
        let data = ColumnData::generate(&spec(5000));
        let (lo, hi) = range_for_selectivity(0.05, u32::MAX - 1);
        let expected = (0..5000u64)
            .filter(|&r| data.c2(r) >= lo && data.c2(r) <= hi)
            .map(|r| data.c1(r))
            .max();
        assert_eq!(data.naive_max_c1(lo, hi), expected);
        assert_eq!(data.naive_max_c1(5, 4), None);
    }

    #[test]
    fn c2_entries_cover_all_rows() {
        let data = ColumnData::generate(&spec(777));
        let v: Vec<_> = data.c2_entries().collect();
        assert_eq!(v.len(), 777);
        assert!(v.iter().enumerate().all(|(i, &(_, r))| r == i as u64));
    }
}
