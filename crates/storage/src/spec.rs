//! Table specifications.
//!
//! The paper's workload tables (§3.1) are defined entirely by their row
//! count and their rows-per-page (RPP): T1 (one huge row per page), T33
//! (typical), T500 (many tiny rows per page). Columns are `C1` and `C2`
//! (uniform random integers) plus padding that fixes the row size; a
//! non-clustered index exists on `C2` and none on `C1`.

use serde::{Deserialize, Serialize};

/// Fixed per-page header size used by the page codec (bytes).
pub const PAGE_HEADER_BYTES: u32 = 32;

/// Logical description of a workload table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSpec {
    /// Table name (e.g. "T33").
    pub name: String,
    /// Total row count.
    pub rows: u64,
    /// Rows stored per page (the paper's RPP knob).
    pub rows_per_page: u32,
    /// Page size in bytes.
    pub page_size: u32,
    /// Seed for deterministic column data.
    pub seed: u64,
    /// `C2` values are uniform in `[0, c2_max]`; the BETWEEN predicate's
    /// selectivity is controlled against this domain.
    pub c2_max: u32,
}

impl TableSpec {
    /// A spec in the paper's style: `Tn` with `n` rows per page.
    pub fn paper_table(rows_per_page: u32, rows: u64, seed: u64) -> TableSpec {
        TableSpec {
            name: format!("T{rows_per_page}"),
            rows,
            rows_per_page,
            page_size: 4096,
            seed,
            c2_max: u32::MAX - 1,
        }
    }

    /// Number of heap pages the table occupies.
    pub fn n_pages(&self) -> u64 {
        self.rows.div_ceil(self.rows_per_page as u64)
    }

    /// Row size in bytes, derived so `rows_per_page` rows exactly fill the
    /// page payload (this is what the paper's padding columns achieve).
    pub fn row_bytes(&self) -> u32 {
        (self.page_size - PAGE_HEADER_BYTES) / self.rows_per_page
    }

    /// Padding bytes per row beyond the two 4-byte integer columns.
    pub fn pad_bytes(&self) -> u32 {
        self.row_bytes().saturating_sub(8)
    }

    /// Heap page holding `row`.
    #[inline]
    pub fn page_of_row(&self, row: u64) -> u64 {
        row / self.rows_per_page as u64
    }

    /// Slot of `row` within its page.
    #[inline]
    pub fn slot_of_row(&self, row: u64) -> u32 {
        (row % self.rows_per_page as u64) as u32
    }

    /// Rows stored on heap page `page` (the last page may be partial).
    pub fn rows_in_page(&self, page: u64) -> std::ops::Range<u64> {
        let start = page * self.rows_per_page as u64;
        let end = (start + self.rows_per_page as u64).min(self.rows);
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_geometry() {
        let t1 = TableSpec::paper_table(1, 1000, 0);
        assert_eq!(t1.name, "T1");
        assert_eq!(t1.n_pages(), 1000);
        assert_eq!(t1.row_bytes(), 4064);

        let t33 = TableSpec::paper_table(33, 330, 0);
        assert_eq!(t33.n_pages(), 10);
        assert_eq!(t33.row_bytes(), 123);

        let t500 = TableSpec::paper_table(500, 1001, 0);
        assert_eq!(t500.n_pages(), 3); // 500 + 500 + 1
        assert_eq!(t500.rows_in_page(2), 1000..1001);
    }

    #[test]
    fn row_addressing_round_trips() {
        let t = TableSpec::paper_table(33, 1_000, 0);
        for row in [0u64, 32, 33, 999] {
            let p = t.page_of_row(row);
            let s = t.slot_of_row(row);
            assert_eq!(p * 33 + s as u64, row);
            assert!(t.rows_in_page(p).contains(&row));
        }
    }

    #[test]
    fn padding_accounts_for_columns() {
        let t = TableSpec::paper_table(33, 100, 0);
        assert_eq!(t.pad_bytes(), t.row_bytes() - 8);
    }
}
