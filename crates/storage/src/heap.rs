//! Heap tables: the paper's `Ti` tables bound to a device extent.

use crate::gen::ColumnData;
use crate::page::{encode_heap_page, HeapPage};
use crate::spec::TableSpec;
use crate::tablespace::{Extent, Tablespace, TablespaceError};
use bytes::Bytes;

/// A heap table: spec + deterministic column data + its extent on disk.
#[derive(Debug, Clone)]
pub struct HeapTable {
    spec: TableSpec,
    data: ColumnData,
    extent: Extent,
}

impl HeapTable {
    /// Generate the table's data and allocate its extent from `ts`.
    pub fn create(spec: TableSpec, ts: &mut Tablespace) -> Result<HeapTable, TablespaceError> {
        let extent = ts.alloc(&spec.name, spec.n_pages())?;
        let data = ColumnData::generate(&spec);
        Ok(HeapTable { spec, data, extent })
    }

    /// The table's logical description.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// The table's typed row schema (`C1 u32, C2 u32` for paper tables).
    pub fn schema(&self) -> crate::schema::Schema {
        crate::schema::Schema::paper()
    }

    /// The table's column data (also the oracle for result checking).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The table's extent on the device.
    pub fn extent(&self) -> Extent {
        self.extent
    }

    /// Number of heap pages.
    pub fn n_pages(&self) -> u64 {
        self.spec.n_pages()
    }

    /// Device page backing table page `local`.
    #[inline]
    pub fn device_page(&self, local: u64) -> u64 {
        self.extent.device_page(local)
    }

    /// `(C1, C2)` of `row`.
    #[inline]
    pub fn row(&self, row: u64) -> (u32, u32) {
        (self.data.c1(row), self.data.c2(row))
    }

    /// Evaluate the scan predicate over one page: returns the max `C1`
    /// among rows on page `local` with `C2 ∈ [low, high]`, plus the number
    /// of rows examined (always the full page — FTS must touch every row).
    pub fn scan_page_max(&self, local: u64, low: u32, high: u32) -> (Option<u32>, u32) {
        let mut best: Option<u32> = None;
        let range = self.spec.rows_in_page(local);
        let examined = (range.end - range.start) as u32;
        for r in range {
            let c2 = self.data.c2(r);
            if c2 >= low && c2 <= high {
                let c1 = self.data.c1(r);
                best = Some(best.map_or(c1, |b| b.max(c1)));
            }
        }
        (best, examined)
    }

    /// Materialize the physical image of table page `local` (page codec).
    pub fn page_image(&self, local: u64) -> Bytes {
        let rows: Vec<(u32, u32)> = self
            .spec
            .rows_in_page(local)
            .map(|r| (self.data.c1(r), self.data.c2(r)))
            .collect();
        encode_heap_page(&self.spec, local, &rows)
    }

    /// Decode helper used by round-trip tests.
    pub fn decode_image(&self, image: &[u8]) -> Result<HeapPage, crate::page::PageCodecError> {
        crate::page::decode_heap_page(&self.spec, image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: u64, rpp: u32) -> HeapTable {
        let spec = TableSpec::paper_table(rpp, rows, 21);
        let mut ts = Tablespace::new(spec.n_pages() + 10);
        HeapTable::create(spec, &mut ts).expect("fits")
    }

    #[test]
    fn page_scan_agrees_with_oracle() {
        let t = table(10_000, 33);
        let (low, high) = crate::gen::range_for_selectivity(0.2, u32::MAX - 1);
        let mut best: Option<u32> = None;
        for p in 0..t.n_pages() {
            let (m, examined) = t.scan_page_max(p, low, high);
            assert!(examined > 0);
            best = match (best, m) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        assert_eq!(best, t.data().naive_max_c1(low, high));
    }

    #[test]
    fn page_image_round_trips() {
        let t = table(100, 33);
        for p in [0u64, 1, 3] {
            let img = t.page_image(p);
            let page = t.decode_image(&img).expect("decodes");
            assert_eq!(page.page_no, p);
            let expected: Vec<_> = t.spec().rows_in_page(p).map(|r| t.row(r)).collect();
            assert_eq!(page.rows, expected);
        }
    }

    #[test]
    fn device_mapping_uses_extent() {
        let spec = TableSpec::paper_table(1, 50, 3);
        let mut ts = Tablespace::new(1000);
        ts.alloc("other", 100).expect("fits");
        let t = HeapTable::create(spec, &mut ts).expect("fits");
        assert_eq!(t.extent().base, 100);
        assert_eq!(t.device_page(0), 100);
        assert_eq!(t.device_page(49), 149);
    }

    #[test]
    fn create_fails_when_tablespace_full() {
        let spec = TableSpec::paper_table(1, 50, 3);
        let mut ts = Tablespace::new(10);
        assert!(HeapTable::create(spec, &mut ts).is_err());
    }
}
