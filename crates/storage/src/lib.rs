//! # pioqo-storage — physical storage substrate
//!
//! Everything below the buffer pool: the workload tables of the paper
//! ([`TableSpec`], [`HeapTable`]), the non-clustered B+-tree on `C2`
//! ([`BTreeIndex`]), the physical page codec ([`page`]), deterministic
//! uniform data generation ([`gen`]), and device extent allocation
//! ([`Tablespace`]).
//!
//! The design keeps *logical values* (compact column vectors, the oracle
//! for correctness checks) separate from *physical page geometry* (extents,
//! fanouts, codecs) so the simulator can charge exact per-page I/O without
//! shipping padding bytes — see DESIGN.md §1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree;
pub mod gen;
pub mod heap;
pub mod page;
pub mod schema;
pub mod spec;
pub mod tablespace;

pub use btree::{BTreeIndex, LeafRange};
pub use gen::{range_for_selectivity, selectivity_of_range, ColumnData};
pub use heap::HeapTable;
pub use page::{decode_heap_page, encode_heap_page, HeapPage, PageCodecError, PageKind};
pub use schema::{ColumnDef, ColumnType, Schema};
pub use spec::{TableSpec, PAGE_HEADER_BYTES};
pub use tablespace::{Extent, Tablespace, TablespaceError};
