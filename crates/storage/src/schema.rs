//! Typed row schemas: the logical description of a table's columns.
//!
//! The paper's workload tables all share one shape — two unsigned 32-bit
//! columns `C1` (the aggregated payload) and `C2` (the indexed predicate
//! column) — but the query layer above storage should not hard-code that:
//! predicates and projections name columns, and naming needs a schema to
//! resolve against. [`Schema`] is deliberately small (ordinal positions,
//! names, fixed-width types) so the executor can compile a predicate tree
//! into column ordinals once per query instead of string-matching per row.

use serde::{Deserialize, Serialize};

/// The type of one column. All paper tables are fixed-width `u32`; wider
/// types slot in here without touching the page codec's callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// Unsigned 32-bit integer.
    U32,
}

impl ColumnType {
    /// Width of one value of this type on a physical page, in bytes.
    pub fn width(&self) -> u32 {
        match self {
            ColumnType::U32 => 4,
        }
    }
}

/// One column: its name and type. The ordinal position is the index of the
/// definition inside its [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (`"C1"`, `"C2"`).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// A schema from explicit column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Schema {
        Schema { columns }
    }

    /// The paper's two-column table shape: `C1 u32, C2 u32`.
    pub fn paper() -> Schema {
        Schema {
            columns: vec![
                ColumnDef {
                    name: "C1".to_string(),
                    ty: ColumnType::U32,
                },
                ColumnDef {
                    name: "C2".to_string(),
                    ty: ColumnType::U32,
                },
            ],
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The column at ordinal `i`.
    pub fn column(&self, i: usize) -> &ColumnDef {
        &self.columns[i]
    }

    /// Ordinal of the column named `name`, if present.
    pub fn ordinal_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Total fixed row width in bytes.
    pub fn row_width(&self) -> u32 {
        self.columns.iter().map(|c| c.ty.width()).sum()
    }

    /// All columns, in ordinal order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_resolves_both_columns() {
        let s = Schema::paper();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.ordinal_of("C1"), Some(0));
        assert_eq!(s.ordinal_of("C2"), Some(1));
        assert_eq!(s.ordinal_of("C3"), None);
        assert_eq!(s.row_width(), 8);
        assert_eq!(s.column(0).name, "C1");
        assert_eq!(s.columns()[1].ty, ColumnType::U32);
    }

    #[test]
    fn custom_schema_orders_by_definition() {
        let s = Schema::new(vec![
            ColumnDef {
                name: "K".into(),
                ty: ColumnType::U32,
            },
            ColumnDef {
                name: "V".into(),
                ty: ColumnType::U32,
            },
        ]);
        assert_eq!(s.ordinal_of("V"), Some(1));
        assert_eq!(s.row_width(), 8);
    }
}
