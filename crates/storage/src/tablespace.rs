//! Extent allocation: mapping table/index files to contiguous page ranges
//! on a device.
//!
//! Band-size estimation in the optimizer is about *where on the device* an
//! operator's I/Os land: a full table scan walks one file's extent
//! sequentially; an index scan scatters point reads across the table's
//! extent. [`Tablespace`] owns the device's page range and hands out
//! contiguous extents, so every consumer can translate file-local page
//! numbers into device page numbers.

use serde::{Deserialize, Serialize};

/// A contiguous range of device pages backing one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent {
    /// First device page.
    pub base: u64,
    /// Length in pages.
    pub pages: u64,
}

impl Extent {
    /// Translate a file-local page number to a device page number.
    #[inline]
    pub fn device_page(&self, local: u64) -> u64 {
        debug_assert!(local < self.pages, "page {local} outside extent");
        self.base + local
    }

    /// One past the last device page of this extent.
    pub fn end(&self) -> u64 {
        self.base + self.pages
    }

    /// True if `device_page` falls inside this extent.
    pub fn contains(&self, device_page: u64) -> bool {
        (self.base..self.end()).contains(&device_page)
    }
}

/// Errors from extent allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TablespaceError {
    /// Not enough free pages on the device.
    OutOfSpace {
        /// Pages requested.
        requested: u64,
        /// Pages still free.
        free: u64,
    },
}

impl std::fmt::Display for TablespaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TablespaceError::OutOfSpace { requested, free } => {
                write!(
                    f,
                    "tablespace out of space: requested {requested}, free {free}"
                )
            }
        }
    }
}

impl std::error::Error for TablespaceError {}

/// A bump allocator over a device's page range.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tablespace {
    capacity: u64,
    next: u64,
    allocations: Vec<(String, Extent)>,
}

impl Tablespace {
    /// A tablespace spanning `capacity` device pages.
    pub fn new(capacity: u64) -> Tablespace {
        Tablespace {
            capacity,
            next: 0,
            allocations: Vec::new(),
        }
    }

    /// Allocate a contiguous extent of `pages` named `name`.
    pub fn alloc(&mut self, name: &str, pages: u64) -> Result<Extent, TablespaceError> {
        let free = self.capacity - self.next;
        if pages > free {
            return Err(TablespaceError::OutOfSpace {
                requested: pages,
                free,
            });
        }
        let e = Extent {
            base: self.next,
            pages,
        };
        self.next += pages;
        self.allocations.push((name.to_string(), e));
        Ok(e)
    }

    /// Pages not yet allocated.
    pub fn free_pages(&self) -> u64 {
        self.capacity - self.next
    }

    /// Total capacity in pages.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// All allocations, in allocation order.
    pub fn allocations(&self) -> &[(String, Extent)] {
        &self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_are_contiguous_and_disjoint() {
        let mut ts = Tablespace::new(1000);
        let a = ts.alloc("table", 600).expect("fits");
        let b = ts.alloc("index", 300).expect("fits");
        assert_eq!(a.base, 0);
        assert_eq!(b.base, 600);
        assert_eq!(ts.free_pages(), 100);
        assert!(a.contains(599));
        assert!(!a.contains(600));
        assert!(b.contains(600));
        assert_eq!(b.device_page(5), 605);
    }

    #[test]
    fn rejects_overflow() {
        let mut ts = Tablespace::new(100);
        ts.alloc("a", 90).expect("fits");
        let err = ts.alloc("b", 20).expect_err("must not fit");
        assert_eq!(
            err,
            TablespaceError::OutOfSpace {
                requested: 20,
                free: 10
            }
        );
        // The failed allocation must not consume space.
        assert_eq!(ts.free_pages(), 10);
        assert!(format!("{err}").contains("out of space"));
    }

    #[test]
    fn records_named_allocations() {
        let mut ts = Tablespace::new(10);
        ts.alloc("t", 4).expect("fits");
        ts.alloc("i", 4).expect("fits");
        let names: Vec<_> = ts.allocations().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["t", "i"]);
    }
}
