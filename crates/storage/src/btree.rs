//! Non-clustered B+-tree index on `C2`.
//!
//! The paper's index scan (§2) traverses "the index from root to leaf level
//! and finds the range of leaf pages which must be accessed", then workers
//! consume leaf pages one by one, fetching the table page for every
//! `(key, row_id)` tuple. This implementation is bulk-loaded (the workload
//! is read-only), paged (leaves and internal nodes occupy real extents so
//! index I/O is charged like any other I/O), and exposes exactly the
//! operations the operators need: the leaf range for a `[low, high]` key
//! range, the entries of each leaf, and the root-to-leaf page path.
//!
//! Layout within the index extent: leaves first (level 0), then each
//! internal level in order, root last.

use crate::page::{PageCodecError, PageKind, PAGE_MAGIC};
use crate::spec::PAGE_HEADER_BYTES;
use crate::tablespace::{Extent, Tablespace, TablespaceError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Bytes per leaf entry: key (u32) + row id (u64).
const LEAF_ENTRY_BYTES: u32 = 12;
/// Bytes per internal entry: separator key (u32) + child page (u64).
const INTERNAL_ENTRY_BYTES: u32 = 12;

/// The leaf range selected by a `[low, high]` key-range probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafRange {
    /// Global index of the first qualifying entry.
    pub first_entry: u64,
    /// One past the global index of the last qualifying entry.
    pub end_entry: u64,
    /// First leaf page (index-local) holding qualifying entries.
    pub first_leaf: u64,
    /// Last leaf page (inclusive) holding qualifying entries.
    pub last_leaf: u64,
}

impl LeafRange {
    /// Number of qualifying entries.
    pub fn len(&self) -> u64 {
        self.end_entry - self.first_entry
    }

    /// True when no entries qualify.
    pub fn is_empty(&self) -> bool {
        self.first_entry == self.end_entry
    }

    /// Number of leaf pages touched.
    pub fn n_leaves(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.last_leaf - self.first_leaf + 1
        }
    }
}

/// A bulk-loaded, paged B+-tree on `(C2, row_id)`.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    keys: Vec<u32>,
    rids: Vec<u32>,
    leaf_fanout: u32,
    internal_fanout: u32,
    /// Pages per level, `levels[0]` = leaf count, last = 1 (root).
    levels: Vec<u64>,
    extent: Extent,
    page_size: u32,
}

impl BTreeIndex {
    /// Bulk-load from `(key, row_id)` pairs (any order; sorted internally)
    /// and allocate the index extent from `ts`.
    pub fn build(
        name: &str,
        entries: impl Iterator<Item = (u32, u64)>,
        page_size: u32,
        ts: &mut Tablespace,
    ) -> Result<BTreeIndex, TablespaceError> {
        let mut pairs: Vec<(u32, u32)> = entries
            .map(|(k, r)| {
                assert!(r <= u32::MAX as u64, "row ids above 2^32 unsupported");
                (k, r as u32)
            })
            .collect();
        // Non-clustered index order: by key, ties by row id.
        pairs.sort_unstable();
        let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
        let rids: Vec<u32> = pairs.iter().map(|&(_, r)| r).collect();
        drop(pairs);

        let leaf_fanout = (page_size - PAGE_HEADER_BYTES) / LEAF_ENTRY_BYTES;
        let internal_fanout = (page_size - PAGE_HEADER_BYTES) / INTERNAL_ENTRY_BYTES;
        assert!(leaf_fanout >= 2 && internal_fanout >= 2, "page too small");

        let n_leaves = (keys.len() as u64).div_ceil(leaf_fanout as u64).max(1);
        let mut levels = vec![n_leaves];
        while *levels
            .last()
            .expect("level stack starts with the leaf level")
            > 1
        {
            let above = levels
                .last()
                .expect("level stack starts with the leaf level")
                .div_ceil(internal_fanout as u64);
            levels.push(above);
        }
        let total_pages: u64 = levels.iter().sum();
        let extent = ts.alloc(name, total_pages)?;

        Ok(BTreeIndex {
            keys,
            rids,
            leaf_fanout,
            internal_fanout,
            levels,
            extent,
            page_size,
        })
    }

    /// Number of `(key, row)` entries.
    pub fn n_entries(&self) -> u64 {
        self.keys.len() as u64
    }

    /// Number of leaf pages.
    pub fn n_leaves(&self) -> u64 {
        self.levels[0]
    }

    /// Tree height in levels (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Entries per leaf page.
    pub fn leaf_fanout(&self) -> u32 {
        self.leaf_fanout
    }

    /// Total pages (all levels).
    pub fn n_pages(&self) -> u64 {
        self.levels.iter().sum()
    }

    /// The index's extent on the device.
    pub fn extent(&self) -> Extent {
        self.extent
    }

    /// Global entry range and leaf range qualifying for `[low, high]`.
    /// Returns `None` when the range selects nothing.
    pub fn range(&self, low: u32, high: u32) -> Option<LeafRange> {
        if high < low {
            return None;
        }
        let first = self.keys.partition_point(|&k| k < low) as u64;
        let end = self.keys.partition_point(|&k| k <= high) as u64;
        if first == end {
            return None;
        }
        Some(LeafRange {
            first_entry: first,
            end_entry: end,
            first_leaf: first / self.leaf_fanout as u64,
            last_leaf: (end - 1) / self.leaf_fanout as u64,
        })
    }

    /// Global entry indices stored on leaf `leaf` (the last leaf may be
    /// partial).
    pub fn leaf_entry_range(&self, leaf: u64) -> std::ops::Range<u64> {
        let start = leaf * self.leaf_fanout as u64;
        let end = (start + self.leaf_fanout as u64).min(self.n_entries());
        start..end
    }

    /// `(key, row_id)` at global entry index `idx`.
    #[inline]
    pub fn entry(&self, idx: u64) -> (u32, u64) {
        (self.keys[idx as usize], self.rids[idx as usize] as u64)
    }

    /// Device page of leaf `leaf`.
    pub fn device_page_of_leaf(&self, leaf: u64) -> u64 {
        debug_assert!(leaf < self.n_leaves());
        self.extent.device_page(leaf)
    }

    /// First index-local page of level `level` (0 = leaves).
    fn level_base(&self, level: usize) -> u64 {
        self.levels[..level].iter().sum()
    }

    /// Device pages visited by a root→leaf traversal ending at `leaf`,
    /// **excluding** the leaf itself, ordered root first.
    pub fn path_to_leaf(&self, leaf: u64) -> Vec<u64> {
        let mut path = Vec::with_capacity(self.levels.len().saturating_sub(1));
        // Node index at level l covering `leaf` is leaf / internal_fanout^l.
        for level in (1..self.levels.len()).rev() {
            let mut idx = leaf;
            for _ in 0..level {
                idx /= self.internal_fanout as u64;
            }
            debug_assert!(idx < self.levels[level]);
            path.push(self.extent.device_page(self.level_base(level) + idx));
        }
        path
    }

    /// Physical image of leaf page `leaf` (for format tests and the
    /// real-file path).
    pub fn leaf_page_image(&self, leaf: u64) -> Bytes {
        let range = self.leaf_entry_range(leaf);
        let n = (range.end - range.start) as u16;
        let mut out = BytesMut::with_capacity(self.page_size as usize);
        out.put_u32_le(PAGE_MAGIC);
        out.put_u8(PageKind::IndexLeaf as u8);
        out.put_bytes(0, 3);
        out.put_u64_le(leaf);
        out.put_u16_le(n);
        out.put_u16_le(LEAF_ENTRY_BYTES as u16);
        out.put_u32_le(0); // checksum patched below
        out.put_bytes(0, 8);
        let payload_start = out.len();
        for idx in range {
            let (k, r) = self.entry(idx);
            out.put_u32_le(k);
            out.put_u64_le(r);
        }
        let checksum = fnv1a(&out[payload_start..]);
        out[20..24].copy_from_slice(&checksum.to_le_bytes());
        out.put_bytes(0, self.page_size as usize - out.len());
        out.freeze()
    }

    /// Decode a leaf-page image produced by [`leaf_page_image`].
    ///
    /// [`leaf_page_image`]: BTreeIndex::leaf_page_image
    pub fn decode_leaf_page(image: &[u8]) -> Result<(u64, Vec<(u32, u64)>), PageCodecError> {
        if image.len() < PAGE_HEADER_BYTES as usize {
            return Err(PageCodecError::Truncated);
        }
        let mut hdr = &image[..PAGE_HEADER_BYTES as usize];
        let magic = hdr.get_u32_le();
        if magic != PAGE_MAGIC {
            return Err(PageCodecError::BadMagic(magic));
        }
        let kind = hdr.get_u8();
        if kind != PageKind::IndexLeaf as u8 {
            return Err(PageCodecError::BadKind(kind));
        }
        hdr.advance(3);
        let leaf_no = hdr.get_u64_le();
        let n = hdr.get_u16_le() as usize;
        let entry_bytes = hdr.get_u16_le() as usize;
        let stored = hdr.get_u32_le();
        if entry_bytes != LEAF_ENTRY_BYTES as usize {
            return Err(PageCodecError::Geometry);
        }
        let start = PAGE_HEADER_BYTES as usize;
        let payload_len = n * entry_bytes;
        if image.len() < start + payload_len {
            return Err(PageCodecError::Truncated);
        }
        let payload = &image[start..start + payload_len];
        let computed = fnv1a(payload);
        if computed != stored {
            return Err(PageCodecError::Corrupt { stored, computed });
        }
        let mut entries = Vec::with_capacity(n);
        let mut cur = payload;
        for _ in 0..n {
            let k = cur.get_u32_le();
            let r = cur.get_u64_le();
            entries.push((k, r));
        }
        Ok((leaf_no, entries))
    }
}

fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ColumnData;
    use crate::spec::TableSpec;

    fn build_index(rows: u64) -> (BTreeIndex, ColumnData) {
        let spec = TableSpec::paper_table(33, rows, 17);
        let data = ColumnData::generate(&spec);
        let mut ts = Tablespace::new(10_000_000);
        let idx = BTreeIndex::build("idx", data.c2_entries(), 4096, &mut ts).expect("fits");
        (idx, data)
    }

    #[test]
    fn fanouts_fill_pages() {
        let (idx, _) = build_index(100);
        assert_eq!(idx.leaf_fanout(), (4096 - 32) / 12);
    }

    #[test]
    fn range_scan_equals_sorted_filter() {
        let (idx, data) = build_index(20_000);
        for sel in [0.0005, 0.01, 0.25, 1.0] {
            let (lo, hi) = crate::gen::range_for_selectivity(sel, u32::MAX - 1);
            let expected = data.count_matching(lo, hi);
            match idx.range(lo, hi) {
                Some(r) => {
                    assert_eq!(r.len(), expected, "sel={sel}");
                    // Every qualifying entry's key must be inside the range,
                    // and boundary neighbours outside it.
                    let (k_first, _) = idx.entry(r.first_entry);
                    let (k_last, _) = idx.entry(r.end_entry - 1);
                    assert!(k_first >= lo && k_last <= hi);
                    if r.first_entry > 0 {
                        assert!(idx.entry(r.first_entry - 1).0 < lo);
                    }
                    if r.end_entry < idx.n_entries() {
                        assert!(idx.entry(r.end_entry).0 > hi);
                    }
                }
                None => assert_eq!(expected, 0, "sel={sel}"),
            }
        }
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let (idx, _) = build_index(1000);
        assert!(idx.range(5, 4).is_none());
        // A 1-value range in a u32 domain over 1000 rows is almost surely empty.
        assert!(idx.range(7, 7).is_none());
    }

    #[test]
    fn leaves_partition_entries() {
        let (idx, _) = build_index(5000);
        let mut covered = 0u64;
        for leaf in 0..idx.n_leaves() {
            let r = idx.leaf_entry_range(leaf);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, idx.n_entries());
    }

    #[test]
    fn entries_are_key_ordered() {
        let (idx, _) = build_index(5000);
        for i in 1..idx.n_entries() {
            assert!(idx.entry(i - 1).0 <= idx.entry(i).0);
        }
    }

    #[test]
    fn height_and_page_count_consistent() {
        let (idx, _) = build_index(200_000);
        // 200 000 entries / 338 per leaf = 592 leaves; one internal level +
        // root... 592 / 338 = 2, then 1. Height 3.
        assert_eq!(idx.n_leaves(), 200_000u64.div_ceil(338));
        assert_eq!(idx.height(), 3);
        assert_eq!(idx.n_pages(), idx.n_leaves() + 2 + 1);
    }

    #[test]
    fn path_to_leaf_is_root_first_and_in_extent() {
        let (idx, _) = build_index(200_000);
        let path = idx.path_to_leaf(0);
        assert_eq!(path.len() as u32, idx.height() - 1);
        for p in &path {
            assert!(idx.extent().contains(*p));
        }
        // Root (last level) must be the extent's final page.
        assert_eq!(path[0], idx.extent().end() - 1);
        // A different leaf under the same subtree shares the root.
        let path2 = idx.path_to_leaf(idx.n_leaves() - 1);
        assert_eq!(path[0], path2[0]);
    }

    #[test]
    fn single_leaf_tree() {
        let (idx, _) = build_index(10);
        assert_eq!(idx.n_leaves(), 1);
        assert_eq!(idx.height(), 1);
        assert!(idx.path_to_leaf(0).is_empty());
    }

    #[test]
    fn leaf_page_image_round_trips() {
        let (idx, _) = build_index(5000);
        for leaf in [0, idx.n_leaves() - 1] {
            let img = idx.leaf_page_image(leaf);
            assert_eq!(img.len(), 4096);
            let (no, entries) = BTreeIndex::decode_leaf_page(&img).expect("decodes");
            assert_eq!(no, leaf);
            let expected: Vec<_> = idx.leaf_entry_range(leaf).map(|i| idx.entry(i)).collect();
            assert_eq!(entries, expected);
        }
    }

    #[test]
    fn leaf_page_detects_corruption() {
        let (idx, _) = build_index(500);
        let img = idx.leaf_page_image(0);
        let mut bad = img.to_vec();
        bad[50] ^= 0xFF;
        assert!(matches!(
            BTreeIndex::decode_leaf_page(&bad),
            Err(PageCodecError::Corrupt { .. })
        ));
    }
}
