//! Physical heap-page codec.
//!
//! Layout (little-endian), `PAGE_HEADER_BYTES` = 32:
//!
//! ```text
//! 0..4    magic  "PIOQ"
//! 4..5    kind   (0 = heap, 1 = index leaf, 2 = index internal)
//! 5..8    reserved
//! 8..16   page_no
//! 16..18  n_rows
//! 18..20  row_bytes
//! 20..24  checksum (FNV-1a over the payload)
//! 24..32  reserved
//! 32..    n_rows × row_bytes payload; each row = C1 (u32) · C2 (u32) · pad
//! ```
//!
//! The simulation charges I/O per page without shipping these bytes; the
//! codec exists so the physical format is real — it backs the real-file
//! calibration path, the integrity tests, and any future persistent layout.

use crate::spec::{TableSpec, PAGE_HEADER_BYTES};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying a pioqo page.
pub const PAGE_MAGIC: u32 = 0x5049_4F51; // "PIOQ" read as LE bytes "QOIP"

/// Page kind tag stored in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Heap (table) page.
    Heap = 0,
    /// B+-tree leaf page.
    IndexLeaf = 1,
    /// B+-tree internal page.
    IndexInternal = 2,
}

impl PageKind {
    fn from_u8(v: u8) -> Result<PageKind, PageCodecError> {
        match v {
            0 => Ok(PageKind::Heap),
            1 => Ok(PageKind::IndexLeaf),
            2 => Ok(PageKind::IndexInternal),
            other => Err(PageCodecError::BadKind(other)),
        }
    }
}

/// Errors surfaced while decoding a page image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageCodecError {
    /// Buffer shorter than a header or than the declared payload.
    Truncated,
    /// Magic mismatch: not a pioqo page.
    BadMagic(u32),
    /// Unknown page kind byte.
    BadKind(u8),
    /// Checksum mismatch: page corrupted.
    Corrupt {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum recomputed from the payload.
        computed: u32,
    },
    /// Row geometry disagrees with the table spec.
    Geometry,
}

impl std::fmt::Display for PageCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageCodecError::Truncated => write!(f, "page image truncated"),
            PageCodecError::BadMagic(m) => write!(f, "bad page magic {m:#x}"),
            PageCodecError::BadKind(k) => write!(f, "unknown page kind {k}"),
            PageCodecError::Corrupt { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
            PageCodecError::Geometry => write!(f, "row geometry mismatch"),
        }
    }
}

impl std::error::Error for PageCodecError {}

fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A decoded heap page: its number and the `(C1, C2)` rows it stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapPage {
    /// Page number within the table.
    pub page_no: u64,
    /// Row values in slot order.
    pub rows: Vec<(u32, u32)>,
}

/// Encode heap page `page_no` of a table described by `spec`, holding
/// `rows` (in slot order). Returns a full `spec.page_size`-byte image.
pub fn encode_heap_page(spec: &TableSpec, page_no: u64, rows: &[(u32, u32)]) -> Bytes {
    assert!(
        rows.len() <= spec.rows_per_page as usize,
        "too many rows for page"
    );
    let row_bytes = spec.row_bytes() as usize;
    let mut payload = BytesMut::with_capacity(spec.page_size as usize - 32);
    for &(c1, c2) in rows {
        payload.put_u32_le(c1);
        payload.put_u32_le(c2);
        payload.put_bytes(0, row_bytes - 8);
    }
    let checksum = fnv1a(&payload);

    let mut out = BytesMut::with_capacity(spec.page_size as usize);
    out.put_u32_le(PAGE_MAGIC);
    out.put_u8(PageKind::Heap as u8);
    out.put_bytes(0, 3);
    out.put_u64_le(page_no);
    out.put_u16_le(rows.len() as u16);
    out.put_u16_le(row_bytes as u16);
    out.put_u32_le(checksum);
    out.put_bytes(0, 8);
    debug_assert_eq!(out.len(), PAGE_HEADER_BYTES as usize);
    out.extend_from_slice(&payload);
    out.put_bytes(0, spec.page_size as usize - out.len());
    out.freeze()
}

/// Decode a heap-page image, verifying magic, kind, geometry and checksum.
pub fn decode_heap_page(spec: &TableSpec, image: &[u8]) -> Result<HeapPage, PageCodecError> {
    if image.len() < PAGE_HEADER_BYTES as usize {
        return Err(PageCodecError::Truncated);
    }
    let mut hdr = &image[..PAGE_HEADER_BYTES as usize];
    let magic = hdr.get_u32_le();
    if magic != PAGE_MAGIC {
        return Err(PageCodecError::BadMagic(magic));
    }
    let kind = PageKind::from_u8(hdr.get_u8())?;
    if kind != PageKind::Heap {
        return Err(PageCodecError::BadKind(kind as u8));
    }
    hdr.advance(3);
    let page_no = hdr.get_u64_le();
    let n_rows = hdr.get_u16_le() as usize;
    let row_bytes = hdr.get_u16_le() as usize;
    let stored = hdr.get_u32_le();

    if row_bytes != spec.row_bytes() as usize || n_rows > spec.rows_per_page as usize {
        return Err(PageCodecError::Geometry);
    }
    let payload_len = n_rows * row_bytes;
    let start = PAGE_HEADER_BYTES as usize;
    if image.len() < start + payload_len {
        return Err(PageCodecError::Truncated);
    }
    let payload = &image[start..start + payload_len];
    let computed = fnv1a(payload);
    if computed != stored {
        return Err(PageCodecError::Corrupt { stored, computed });
    }
    let mut rows = Vec::with_capacity(n_rows);
    for r in 0..n_rows {
        let mut cur = &payload[r * row_bytes..];
        let c1 = cur.get_u32_le();
        let c2 = cur.get_u32_le();
        rows.push((c1, c2));
    }
    Ok(HeapPage { page_no, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TableSpec {
        TableSpec::paper_table(33, 1000, 7)
    }

    fn sample_rows(n: usize) -> Vec<(u32, u32)> {
        (0..n as u32).map(|i| (i * 31 + 1, i * 17 + 5)).collect()
    }

    #[test]
    fn round_trip_full_page() {
        let s = spec();
        let rows = sample_rows(33);
        let img = encode_heap_page(&s, 12, &rows);
        assert_eq!(img.len(), 4096);
        let page = decode_heap_page(&s, &img).expect("decodes");
        assert_eq!(page.page_no, 12);
        assert_eq!(page.rows, rows);
    }

    #[test]
    fn round_trip_partial_last_page() {
        let s = spec();
        let rows = sample_rows(10);
        let img = encode_heap_page(&s, 30, &rows);
        let page = decode_heap_page(&s, &img).expect("decodes");
        assert_eq!(page.rows.len(), 10);
        assert_eq!(page.rows, rows);
    }

    #[test]
    fn detects_corruption() {
        let s = spec();
        let img = encode_heap_page(&s, 0, &sample_rows(33));
        let mut bad = img.to_vec();
        bad[40] ^= 0xFF; // flip a payload byte
        match decode_heap_page(&s, &bad) {
            Err(PageCodecError::Corrupt { .. }) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn detects_bad_magic_and_truncation() {
        let s = spec();
        let img = encode_heap_page(&s, 0, &sample_rows(1));
        let mut bad = img.to_vec();
        bad[0] ^= 1;
        assert!(matches!(
            decode_heap_page(&s, &bad),
            Err(PageCodecError::BadMagic(_))
        ));
        assert_eq!(
            decode_heap_page(&s, &img[..16]),
            Err(PageCodecError::Truncated)
        );
    }

    #[test]
    fn detects_geometry_mismatch() {
        let t33 = spec();
        let t500 = TableSpec::paper_table(500, 1000, 7);
        let img = encode_heap_page(&t33, 0, &sample_rows(33));
        assert_eq!(decode_heap_page(&t500, &img), Err(PageCodecError::Geometry));
    }

    #[test]
    fn error_display_is_informative() {
        let e = PageCodecError::Corrupt {
            stored: 1,
            computed: 2,
        };
        assert!(format!("{e}").contains("checksum"));
    }
}
