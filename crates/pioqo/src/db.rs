//! A small embedded-database-shaped wrapper tying the whole stack
//! together: create a table, calibrate the storage, run range-MAX queries
//! through the cost-based optimizer — one at a time or as a concurrent
//! multi-session workload with QDTT-aware admission control.
//!
//! This is the "downstream user" API: everything the reproduction harness
//! does by hand — device construction, tablespace layout, calibration,
//! statistics gathering, plan choice, execution — behind a handful of
//! methods. Databases are built with [`Db::builder`]; every knob has a
//! sensible default.
//!
//! ```
//! use pioqo::db::{Db, StorageKind};
//!
//! let mut db = Db::builder()
//!     .storage(StorageKind::Ssd)
//!     .rows(50_000)
//!     .seed(7)
//!     .build();
//! db.calibrate();
//! let out = db.query_max_between(1 << 30, 3 << 30).expect("query runs");
//! assert_eq!(out.value, db.oracle_max_between(1 << 30, 3 << 30));
//! ```
//!
//! Concurrent workloads go through [`Db::run_workload`]: N closed-loop
//! sessions interleaved on the shared event loop, each query re-optimized
//! under its queue-depth lease:
//!
//! ```
//! use pioqo::db::Db;
//! use pioqo::exec::WorkloadSpec;
//!
//! let mut db = Db::builder().rows(20_000).build();
//! let spec = WorkloadSpec {
//!     sessions: 4,
//!     queries_per_session: 2,
//!     ..WorkloadSpec::default()
//! };
//! let out = db.run_workload(spec).expect("workload runs");
//! assert_eq!(out.report.total_completed(), 8);
//! assert_eq!(out.admissions.len(), 8);
//! ```

use pioqo_bufpool::BufferPool;
use pioqo_core::{CalibrationConfig, Calibrator, Qdtt};
use pioqo_device::{presets, DeviceModel};
use pioqo_exec::{
    execute, Aggregate, Col, CpuConfig, CpuCosts, ExecError, MultiEngine, PlanSpec, Predicate,
    Projection, QuerySpec, ScanMetrics, SimContext, WorkloadReport, WorkloadSpec,
};
use pioqo_obs::TraceSink;
use pioqo_optimizer::{
    plan_to_spec, AdmissionDecision, DttCost, Optimizer, OptimizerConfig, Plan, QdBudget, QdLease,
    QdttAdmission, QdttCost, TableStats,
};
use pioqo_storage::{selectivity_of_range, BTreeIndex, HeapTable, TableSpec, Tablespace};
use std::cell::RefCell;
use std::rc::Rc;

/// Which simulated device backs the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// Commodity 7200 RPM hard drive.
    Hdd,
    /// Consumer PCIe SSD.
    Ssd,
    /// 8-spindle 15K RAID array.
    Raid8,
}

/// Database construction parameters. Prefer [`Db::builder`], which fills
/// in the defaults below field by field.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Backing device.
    pub storage: StorageKind,
    /// Buffer pool size in MB.
    pub buffer_mb: u64,
    /// Rows in the table.
    pub rows: u64,
    /// Rows per page (the paper's RPP knob).
    pub rows_per_page: u32,
    /// Data/determinism seed.
    pub seed: u64,
}

impl Default for DbConfig {
    fn default() -> DbConfig {
        DbConfig {
            storage: StorageKind::Ssd,
            buffer_mb: 16,
            rows: 50_000,
            rows_per_page: 33,
            seed: 42,
        }
    }
}

/// Builder for [`Db`]. Obtain one with [`Db::builder`]; every setter has a
/// default ([`StorageKind::Ssd`], 16 MB pool, 50 000 rows, 33 rows/page,
/// seed 42), so `Db::builder().build()` already yields a working database.
#[derive(Debug, Clone)]
#[must_use = "the builder does nothing until .build() is called"]
pub struct DbBuilder {
    cfg: DbConfig,
}

impl DbBuilder {
    /// Backing device kind.
    pub fn storage(mut self, storage: StorageKind) -> DbBuilder {
        self.cfg.storage = storage;
        self
    }

    /// Buffer pool size in MB (floored at 64 frames).
    pub fn buffer_mb(mut self, mb: u64) -> DbBuilder {
        self.cfg.buffer_mb = mb;
        self
    }

    /// Rows in the generated table.
    pub fn rows(mut self, rows: u64) -> DbBuilder {
        self.cfg.rows = rows;
        self
    }

    /// Rows per page (the paper's RPP knob).
    pub fn rows_per_page(mut self, rpp: u32) -> DbBuilder {
        self.cfg.rows_per_page = rpp;
        self
    }

    /// Data/determinism seed: fixes table contents, device jitter, and
    /// calibration sampling.
    pub fn seed(mut self, seed: u64) -> DbBuilder {
        self.cfg.seed = seed;
        self
    }

    /// Materialize the database: generate the table and its `C2` index and
    /// lay them out on a fresh device sized ~2× the data.
    pub fn build(self) -> Db {
        Db::from_config(self.cfg)
    }
}

/// Result of one query: the answer, the plan that produced it, and the
/// execution metrics.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// `MAX(C1)` over the qualifying rows (`None` if none qualify).
    pub value: Option<u32>,
    /// The plan the optimizer chose.
    pub plan: Plan,
    /// Human-readable plan ("PIS32", "FTS", ...).
    pub plan_name: String,
    /// Execution metrics (virtual runtime, I/O profile, pool counters).
    pub metrics: ScanMetrics,
}

/// Result of a concurrent workload: the engine's report plus the admission
/// journal (one entry per query, recording the lease depth and the plan
/// re-costed under it).
#[derive(Debug, Clone)]
pub struct WorkloadOutput {
    /// Per-query records, per-session summaries, histograms, I/O profile.
    pub report: WorkloadReport,
    /// The QDTT admission journal, in admission order.
    pub admissions: Vec<AdmissionDecision>,
    /// Queue-depth lease granted at each shared-scan cursor start (empty
    /// when the spec did not enable shared scans). One entry per cursor,
    /// no matter how many consumers attached to it.
    pub cursor_leases: Vec<u32>,
}

/// An open session: holds a queue-depth lease from the database's shared
/// budget for as long as it lives, so concurrently open sessions plan
/// their queries with proportionally lower depths (§4.3's future work).
///
/// Dropping the session returns the lease.
pub struct Session {
    budget: Rc<RefCell<QdBudget>>,
    lease: Option<QdLease>,
}

impl Session {
    /// The queue depth this session's queries may assume.
    pub fn depth(&self) -> u32 {
        self.lease.as_ref().map_or(1, |l| l.depth)
    }

    /// Plan `SELECT MAX(C1) WHERE C2 BETWEEN low AND high` under this
    /// session's queue-depth lease, without executing it.
    pub fn explain_max_between(&self, db: &Db, low: u32, high: u32) -> (Plan, String) {
        db.explain_capped(low, high, self.depth())
    }

    /// Plan *and execute* the query under this session's lease.
    pub fn query_max_between(
        &self,
        db: &mut Db,
        low: u32,
        high: u32,
    ) -> Result<QueryOutput, ExecError> {
        db.query_capped(low, high, self.depth())
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if let Some(lease) = self.lease.take() {
            self.budget.borrow_mut().release(lease);
        }
    }
}

/// An embedded single-table database over simulated storage.
pub struct Db {
    cfg: DbConfig,
    device: Box<dyn DeviceModel>,
    pool: BufferPool,
    table: HeapTable,
    index: BTreeIndex,
    model: Option<Qdtt>,
    opt_cfg: OptimizerConfig,
    budget: Option<Rc<RefCell<QdBudget>>>,
}

impl Db {
    /// Start building a database. See [`DbBuilder`] for the defaults.
    pub fn builder() -> DbBuilder {
        DbBuilder {
            cfg: DbConfig::default(),
        }
    }

    fn from_config(cfg: DbConfig) -> Db {
        let spec = TableSpec::paper_table(cfg.rows_per_page, cfg.rows, cfg.seed);
        let est_index = cfg.rows.div_ceil(300) + 64;
        let capacity = (spec.n_pages() + est_index) * 2 + 4096;
        let mut ts = Tablespace::new(capacity);
        let table = HeapTable::create(spec, &mut ts).expect("device sized to fit");
        let index = BTreeIndex::build(
            "c2_idx",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("device sized to fit");
        let device: Box<dyn DeviceModel> = match cfg.storage {
            StorageKind::Hdd => Box::new(presets::hdd_7200(capacity, cfg.seed ^ 0xD)),
            StorageKind::Ssd => Box::new(presets::consumer_pcie_ssd(capacity, cfg.seed ^ 0xE)),
            StorageKind::Raid8 => Box::new(presets::raid_15k(8, capacity, cfg.seed ^ 0xF)),
        };
        let frames = ((cfg.buffer_mb << 20) / 4096).max(64) as usize;
        Db {
            pool: BufferPool::new(frames),
            device,
            table,
            index,
            model: None,
            opt_cfg: OptimizerConfig::default(),
            budget: None,
            cfg,
        }
    }

    /// Calibrate the device into a QDTT model (must run before queries can
    /// be optimized; §4.1's "calibrated on the customer's hardware").
    pub fn calibrate(&mut self) -> &Qdtt {
        let cal = Calibrator::new(CalibrationConfig::for_device(
            self.device.capacity_pages(),
            self.cfg.seed ^ 0xCA11,
        ));
        let (qdtt, _) = cal.calibrate_qdtt(&mut *self.device);
        self.model = Some(qdtt);
        // The queue-depth budget follows the model; sessions opened before
        // recalibration keep (and correctly return) their old leases.
        self.budget = None;
        self.model
            .as_ref()
            .expect("calibrated model was stored on the line above")
    }

    /// Use an externally calibrated / persisted model instead.
    pub fn set_model(&mut self, model: Qdtt) {
        self.model = Some(model);
        self.budget = None;
    }

    /// Tune the optimizer (degrees considered, sorted-IS, prefetch-aware
    /// costing, queue-depth cap for concurrency budgeting).
    pub fn set_optimizer_config(&mut self, cfg: OptimizerConfig) {
        self.opt_cfg = cfg;
    }

    /// Current catalog statistics, including live cached-page counts.
    pub fn stats(&self) -> TableStats {
        TableStats::gather(&self.table, &self.index, &self.pool)
    }

    /// Open a session: takes a queue-depth lease from the shared budget
    /// (the calibrated device's beneficial depth split across open
    /// sessions). Queries run through the session are planned under its
    /// lease; dropping the session returns the lease.
    pub fn session(&mut self) -> Session {
        let budget = self.ensure_budget();
        let lease = budget.borrow_mut().acquire();
        Session {
            budget,
            lease: Some(lease),
        }
    }

    fn ensure_budget(&mut self) -> Rc<RefCell<QdBudget>> {
        if self.budget.is_none() {
            let budget = match &self.model {
                Some(m) => QdBudget::from_model(m),
                None => QdBudget::new(self.opt_cfg.max_queue_depth),
            };
            self.budget = Some(Rc::new(RefCell::new(budget)));
        }
        self.budget
            .clone()
            .expect("budget was stored on the line above")
    }

    /// Start a fluent query over the table: chain [`QueryBuilder::filter`]
    /// and [`QueryBuilder::project`], then finish with
    /// [`QueryBuilder::max`] or [`QueryBuilder::count`]. The sarg of the
    /// predicate tree drives the optimizer's selectivity estimate, so the
    /// plan is still chosen by the calibrated cost model.
    ///
    /// ```
    /// use pioqo::db::Db;
    /// use pioqo::exec::{Col, Predicate};
    ///
    /// let mut db = Db::builder().rows(20_000).seed(7).build();
    /// db.calibrate();
    /// let out = db
    ///     .query()
    ///     .filter(Predicate::c2_between(0, 1 << 30))
    ///     .project(vec![Col::C1])
    ///     .max(Col::C1)
    ///     .expect("query runs");
    /// assert_eq!(out.value, db.oracle_max_between(0, 1 << 30));
    /// ```
    pub fn query(&mut self) -> QueryBuilder<'_> {
        QueryBuilder {
            db: self,
            predicate: Predicate::True,
            projection: Projection::All,
        }
    }

    /// Plan `SELECT MAX(C1) WHERE C2 BETWEEN low AND high` without
    /// executing it. Uses the QDTT model if calibrated, else a pessimistic
    /// DTT-at-depth-1 fallback.
    pub fn explain_max_between(&self, low: u32, high: u32) -> (Plan, String) {
        self.explain_capped(low, high, self.opt_cfg.max_queue_depth)
    }

    fn explain_capped(&self, low: u32, high: u32, depth_cap: u32) -> (Plan, String) {
        let sel = selectivity_of_range(low, high, self.table.spec().c2_max);
        let stats = self.stats();
        let mut cfg = self.opt_cfg.clone();
        cfg.max_queue_depth = cfg.max_queue_depth.min(depth_cap.max(1));
        let plan = match &self.model {
            Some(m) => {
                let model = QdttCost(m.clone());
                Optimizer::new(&model, cfg).choose(&stats, sel)
            }
            None => {
                // Uncalibrated: a flat, queue-depth-blind guess.
                let model = DttCost(pioqo_core::Dtt::new(vec![
                    (1, 100.0),
                    (self.device.capacity_pages(), 10_000.0),
                ]));
                Optimizer::new(&model, cfg).choose(&stats, sel)
            }
        };
        let name = plan.label();
        (plan, name)
    }

    /// Plan *and execute* the query against the live device and pool
    /// (the pool stays warm across queries, like a real server).
    pub fn query_max_between(&mut self, low: u32, high: u32) -> Result<QueryOutput, ExecError> {
        self.query_capped(low, high, self.opt_cfg.max_queue_depth)
    }

    fn query_capped(
        &mut self,
        low: u32,
        high: u32,
        depth_cap: u32,
    ) -> Result<QueryOutput, ExecError> {
        let (plan, plan_name) = self.explain_capped(low, high, depth_cap);
        let mut cfg = self.opt_cfg.clone();
        cfg.max_queue_depth = cfg.max_queue_depth.min(depth_cap.max(1));
        let spec = plan_to_spec(&plan, &cfg);
        let metrics = self.run_spec(&spec, low, high)?;
        Ok(QueryOutput {
            value: metrics.max_c1,
            plan,
            plan_name,
            metrics,
        })
    }

    /// Execute an explicit [`PlanSpec`] against the live device and pool,
    /// bypassing the optimizer (for experiments and plan forcing).
    pub fn run_spec(
        &mut self,
        spec: &PlanSpec,
        low: u32,
        high: u32,
    ) -> Result<ScanMetrics, ExecError> {
        let mut ctx = SimContext::new(
            &mut *self.device,
            &mut self.pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let q =
            QuerySpec::range_max(&self.table, Some(&self.index), low, high).with_plan(spec.clone());
        execute(&mut ctx, &q)
    }

    /// Run a concurrent closed-loop workload on the shared event loop: N
    /// sessions of range-MAX queries with think times, each query admitted
    /// through QDTT-aware admission control (a queue-depth lease from the
    /// device's beneficial depth, plan re-costed under the lease).
    ///
    /// Auto-calibrates first if no model is set. The buffer pool stays
    /// warm across the workload and into subsequent queries.
    pub fn run_workload(&mut self, spec: WorkloadSpec) -> Result<WorkloadOutput, ExecError> {
        self.run_workload_inner(spec, None)
    }

    /// [`Db::run_workload`] with sim-time tracing: each session gets its
    /// own track in the exported trace, plus the engine's `io`/`pool`
    /// tracks.
    pub fn run_workload_traced(
        &mut self,
        spec: WorkloadSpec,
        sink: &mut dyn TraceSink,
    ) -> Result<WorkloadOutput, ExecError> {
        self.run_workload_inner(spec, Some(sink))
    }

    fn run_workload_inner(
        &mut self,
        spec: WorkloadSpec,
        sink: Option<&mut dyn TraceSink>,
    ) -> Result<WorkloadOutput, ExecError> {
        if self.model.is_none() {
            self.calibrate();
        }
        let model = self.model.clone().expect("calibrated on the lines above");
        let mut planner = QdttAdmission::new(&self.table, &self.index, model, self.opt_cfg.clone());
        let base = QuerySpec::range_max(&self.table, Some(&self.index), 0, 0);
        let mut ctx = SimContext::new(
            &mut *self.device,
            &mut self.pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        if let Some(sink) = sink {
            ctx.set_trace_sink(sink);
        }
        let report = MultiEngine::new(spec, base, &mut planner).run(&mut ctx)?;
        drop(ctx);
        let cursor_leases = planner.cursor_leases().to_vec();
        Ok(WorkloadOutput {
            report,
            admissions: planner.into_decisions(),
            cursor_leases,
        })
    }

    /// Ground truth for `MAX(C1) WHERE C2 BETWEEN low AND high`.
    pub fn oracle_max_between(&self, low: u32, high: u32) -> Option<u32> {
        self.table.data().naive_max_c1(low, high)
    }

    /// Drop every cached page (the paper's cold-start protocol).
    pub fn flush_pool(&mut self) {
        self.pool.flush_all();
    }

    /// The table (for statistics/inspection).
    pub fn table(&self) -> &HeapTable {
        &self.table
    }

    /// The index (for statistics/inspection).
    pub fn index(&self) -> &BTreeIndex {
        &self.index
    }

    /// The calibrated model, if any.
    pub fn model(&self) -> Option<&Qdtt> {
        self.model.as_ref()
    }
}

/// A fluent single-query builder over the database's table, obtained from
/// [`Db::query`]. Filters AND together; the projection defaults to all
/// columns; the finisher picks the aggregate and runs the query through
/// the cost-based optimizer on the live device and (warm) pool.
#[must_use = "the builder does nothing until .max()/.count() is called"]
pub struct QueryBuilder<'d> {
    db: &'d mut Db,
    predicate: Predicate,
    projection: Projection,
}

impl<'d> QueryBuilder<'d> {
    /// AND `pred` onto the query's predicate tree.
    pub fn filter(mut self, pred: Predicate) -> QueryBuilder<'d> {
        self.predicate = match self.predicate {
            Predicate::True => pred,
            Predicate::And(mut ps) => {
                ps.push(pred);
                Predicate::And(ps)
            }
            p => Predicate::And(vec![p, pred]),
        };
        self
    }

    /// Project only `cols` (affects the result fingerprint; the aggregate
    /// is computed regardless).
    pub fn project(mut self, cols: Vec<Col>) -> QueryBuilder<'d> {
        self.projection = Projection::Cols(cols);
        self
    }

    /// Run `SELECT MAX(col)` over the qualifying rows.
    pub fn max(self, col: Col) -> Result<QueryOutput, ExecError> {
        self.run(Aggregate::Max(col))
    }

    /// Run `SELECT COUNT(*)` over the qualifying rows: the row count comes
    /// back in `metrics.rows_matched` (and `value` is `None`).
    pub fn count(self) -> Result<QueryOutput, ExecError> {
        self.run(Aggregate::Count)
    }

    fn run(self, aggregate: Aggregate) -> Result<QueryOutput, ExecError> {
        let QueryBuilder {
            db,
            predicate,
            projection,
        } = self;
        // The optimizer sees the predicate through its C2 sarg: residual
        // (non-sargable) terms narrow the answer but not the page set, so
        // costing on the sarg window is exactly right for these operators.
        let (low, high) = predicate.sarg();
        let (plan, plan_name) = db.explain_capped(low, high, db.opt_cfg.max_queue_depth);
        let spec = plan_to_spec(&plan, &db.opt_cfg);
        let mut q = QuerySpec::scan(&db.table)
            .with_index(&db.index)
            .with_plan(spec)
            .aggregate(aggregate);
        q.predicate = predicate;
        q.projection = projection;
        let mut ctx = SimContext::new(
            &mut *db.device,
            &mut db.pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let metrics = execute(&mut ctx, &q)?;
        Ok(QueryOutput {
            value: metrics.max_c1,
            plan,
            plan_name,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_exec::ThinkTime;
    use pioqo_optimizer::AccessMethod;
    use pioqo_simkit::SimDuration;
    use pioqo_storage::range_for_selectivity;

    fn small_db(storage: StorageKind) -> Db {
        Db::builder()
            .storage(storage)
            .buffer_mb(8)
            .rows(30_000)
            .rows_per_page(33)
            .seed(77)
            .build()
    }

    #[test]
    fn query_matches_oracle_calibrated_or_not() {
        let mut db = small_db(StorageKind::Ssd);
        let (lo, hi) = range_for_selectivity(0.05, u32::MAX - 1);
        // Uncalibrated: falls back to the pessimistic DTT and still answers.
        let out = db.query_max_between(lo, hi).expect("runs");
        assert_eq!(out.value, db.oracle_max_between(lo, hi));
        // Calibrated: same answer, possibly different plan.
        db.calibrate();
        db.flush_pool();
        let out2 = db.query_max_between(lo, hi).expect("runs");
        assert_eq!(out2.value, out.value);
    }

    #[test]
    fn calibrated_ssd_db_parallelizes_large_low_selectivity_scans() {
        let mut db = Db::builder()
            .storage(StorageKind::Ssd)
            .buffer_mb(8)
            .rows(400_000)
            .seed(3)
            .build();
        db.calibrate();
        let (lo, hi) = range_for_selectivity(0.002, u32::MAX - 1);
        let (plan, name) = db.explain_max_between(lo, hi);
        assert_eq!(plan.method, AccessMethod::IndexScan);
        assert!(plan.degree > 1, "calibrated SSD should go parallel: {name}");
    }

    #[test]
    fn hdd_db_stays_serial() {
        let mut db = Db::builder()
            .storage(StorageKind::Hdd)
            .buffer_mb(8)
            .rows(400_000)
            .seed(3)
            .build();
        db.calibrate();
        let (lo, hi) = range_for_selectivity(0.002, u32::MAX - 1);
        let (plan, _) = db.explain_max_between(lo, hi);
        assert_eq!(plan.degree, 1, "single spindle gains nothing from depth");
    }

    #[test]
    fn warm_pool_changes_the_costing() {
        let mut db = small_db(StorageKind::Ssd);
        db.calibrate();
        let (lo, hi) = range_for_selectivity(0.9, u32::MAX - 1);
        let (cold_plan, _) = db.explain_max_between(lo, hi);
        db.query_max_between(lo, hi).expect("runs");
        // Much of the table is now cached; estimated I/O must drop.
        let (warm_plan, _) = db.explain_max_between(lo, hi);
        assert!(warm_plan.est_io_us < cold_plan.est_io_us);
    }

    #[test]
    fn persisted_model_round_trips_through_set_model() {
        let mut db = small_db(StorageKind::Ssd);
        let model = db.calibrate().clone();
        let mut db2 = small_db(StorageKind::Ssd);
        db2.set_model(model);
        let (lo, hi) = range_for_selectivity(0.01, u32::MAX - 1);
        let (p1, _) = db.explain_max_between(lo, hi);
        let (p2, _) = db2.explain_max_between(lo, hi);
        assert_eq!(p1.method, p2.method);
        assert_eq!(p1.degree, p2.degree);
    }

    #[test]
    fn empty_range_returns_none() {
        let mut db = small_db(StorageKind::Ssd);
        db.calibrate();
        let out = db.query_max_between(10, 9).expect("runs");
        assert_eq!(out.value, None);
        assert_eq!(out.metrics.rows_matched, 0);
    }

    #[test]
    fn query_builder_matches_range_max_and_oracle() {
        let mut db = small_db(StorageKind::Ssd);
        db.calibrate();
        let (lo, hi) = range_for_selectivity(0.05, u32::MAX - 1);
        let out = db
            .query()
            .filter(Predicate::c2_between(lo, hi))
            .max(Col::C1)
            .expect("runs");
        assert_eq!(out.value, db.oracle_max_between(lo, hi));
        db.flush_pool();
        let cnt = db
            .query()
            .filter(Predicate::c2_between(lo, hi))
            .count()
            .expect("runs");
        assert_eq!(cnt.value, None, "COUNT has no MAX payload");
        assert_eq!(cnt.metrics.rows_matched, out.metrics.rows_matched);
    }

    #[test]
    fn query_builder_handles_residual_predicates() {
        use pioqo_exec::{oracle, CmpOp};
        let mut db = small_db(StorageKind::Ssd);
        db.calibrate();
        let pred = Predicate::And(vec![
            Predicate::c2_between(0, u32::MAX / 2),
            Predicate::Cmp {
                col: Col::C1,
                op: CmpOp::Ge,
                value: 1 << 20,
            },
        ]);
        let out = db
            .query()
            .filter(pred.clone())
            .project(vec![Col::C1])
            .max(Col::C1)
            .expect("runs");
        let acc = oracle(&QuerySpec::scan(db.table()).filter(pred));
        assert_eq!(out.value, acc.agg);
        assert_eq!(out.metrics.rows_matched, acc.matched);
    }

    #[test]
    fn sessions_split_the_queue_depth_budget() {
        let mut db = small_db(StorageKind::Ssd);
        db.calibrate();
        db.set_optimizer_config(OptimizerConfig::fine_grained());
        let s1 = db.session();
        let d1 = s1.depth();
        assert!(d1 >= 1);
        let s2 = db.session();
        assert!(
            s2.depth() <= d1.div_ceil(2).max(1),
            "second open session must get at most half the budget: {} vs {}",
            s2.depth(),
            d1
        );
        // Both sessions still answer correctly under their leases.
        let (lo, hi) = range_for_selectivity(0.01, u32::MAX - 1);
        let out = s2.query_max_between(&mut db, lo, hi).expect("runs");
        assert_eq!(out.value, db.oracle_max_between(lo, hi));
        assert!(out.plan.queue_depth <= s2.depth().max(1));
        // Dropping both returns the full budget to the next session.
        drop(s1);
        drop(s2);
        let s3 = db.session();
        assert_eq!(s3.depth(), d1);
    }

    #[test]
    fn workload_runs_and_journals_admissions() {
        let mut db = small_db(StorageKind::Ssd);
        db.set_optimizer_config(OptimizerConfig::fine_grained());
        let spec = WorkloadSpec {
            sessions: 3,
            queries_per_session: 2,
            think: ThinkTime::Fixed(SimDuration::from_micros(500)),
            ..WorkloadSpec::default()
        };
        let out = db.run_workload(spec).expect("workload runs");
        assert_eq!(out.report.total_completed(), 6);
        assert_eq!(out.admissions.len(), 6);
        assert!(db.model().is_some(), "run_workload auto-calibrates");
        // Every journaled plan label matches a record's.
        for adm in &out.admissions {
            assert!(
                out.report.records.iter().any(|r| r.plan == adm.plan
                    && r.session == adm.session
                    && r.query_index == adm.query_index),
                "admission {adm:?} has no matching record"
            );
        }
    }
}
