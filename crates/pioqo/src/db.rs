//! A small embedded-database-shaped wrapper tying the whole stack
//! together: create a table, calibrate the storage, run range-MAX queries
//! through the cost-based optimizer.
//!
//! This is the "downstream user" API: everything the reproduction harness
//! does by hand — device construction, tablespace layout, calibration,
//! statistics gathering, plan choice, execution — behind four methods.
//!
//! ```
//! use pioqo::db::{Db, DbConfig, StorageKind};
//!
//! let mut db = Db::create(DbConfig {
//!     storage: StorageKind::Ssd,
//!     buffer_mb: 16,
//!     rows: 50_000,
//!     rows_per_page: 33,
//!     seed: 7,
//! });
//! db.calibrate();
//! let out = db.query_max_between(1 << 30, 3 << 30).expect("query runs");
//! assert_eq!(out.value, db.oracle_max_between(1 << 30, 3 << 30));
//! ```

use pioqo_bufpool::BufferPool;
use pioqo_core::{CalibrationConfig, Calibrator, Qdtt};
use pioqo_device::{presets, DeviceModel};
use pioqo_exec::{
    run_fts, run_is, run_sorted_is, CpuConfig, CpuCosts, ExecError, FtsConfig, IsConfig,
    ScanMetrics, SortedIsConfig,
};
use pioqo_optimizer::{
    AccessMethod, DttCost, Optimizer, OptimizerConfig, Plan, QdttCost, TableStats,
};
use pioqo_storage::{selectivity_of_range, BTreeIndex, HeapTable, TableSpec, Tablespace};

/// Which simulated device backs the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// Commodity 7200 RPM hard drive.
    Hdd,
    /// Consumer PCIe SSD.
    Ssd,
    /// 8-spindle 15K RAID array.
    Raid8,
}

/// Database construction parameters.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Backing device.
    pub storage: StorageKind,
    /// Buffer pool size in MB.
    pub buffer_mb: u64,
    /// Rows in the table.
    pub rows: u64,
    /// Rows per page (the paper's RPP knob).
    pub rows_per_page: u32,
    /// Data/determinism seed.
    pub seed: u64,
}

/// Result of one query: the answer, the plan that produced it, and the
/// execution metrics.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// `MAX(C1)` over the qualifying rows (`None` if none qualify).
    pub value: Option<u32>,
    /// The plan the optimizer chose.
    pub plan: Plan,
    /// Human-readable plan ("PIS32", "FTS", ...).
    pub plan_name: String,
    /// Execution metrics (virtual runtime, I/O profile, pool counters).
    pub metrics: ScanMetrics,
}

/// An embedded single-table database over simulated storage.
pub struct Db {
    cfg: DbConfig,
    device: Box<dyn DeviceModel>,
    pool: BufferPool,
    table: HeapTable,
    index: BTreeIndex,
    model: Option<Qdtt>,
    opt_cfg: OptimizerConfig,
}

impl Db {
    /// Create the database: generates the table and its `C2` index, lays
    /// them out on a fresh device sized ~2× the data.
    pub fn create(cfg: DbConfig) -> Db {
        let spec = TableSpec::paper_table(cfg.rows_per_page, cfg.rows, cfg.seed);
        let est_index = cfg.rows.div_ceil(300) + 64;
        let capacity = (spec.n_pages() + est_index) * 2 + 4096;
        let mut ts = Tablespace::new(capacity);
        let table = HeapTable::create(spec, &mut ts).expect("device sized to fit");
        let index = BTreeIndex::build(
            "c2_idx",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("device sized to fit");
        let device: Box<dyn DeviceModel> = match cfg.storage {
            StorageKind::Hdd => Box::new(presets::hdd_7200(capacity, cfg.seed ^ 0xD)),
            StorageKind::Ssd => Box::new(presets::consumer_pcie_ssd(capacity, cfg.seed ^ 0xE)),
            StorageKind::Raid8 => Box::new(presets::raid_15k(8, capacity, cfg.seed ^ 0xF)),
        };
        let frames = ((cfg.buffer_mb << 20) / 4096).max(64) as usize;
        Db {
            pool: BufferPool::new(frames),
            device,
            table,
            index,
            model: None,
            opt_cfg: OptimizerConfig::default(),
            cfg,
        }
    }

    /// Calibrate the device into a QDTT model (must run before queries can
    /// be optimized; §4.1's "calibrated on the customer's hardware").
    pub fn calibrate(&mut self) -> &Qdtt {
        let cal = Calibrator::new(CalibrationConfig::for_device(
            self.device.capacity_pages(),
            self.cfg.seed ^ 0xCA11,
        ));
        let (qdtt, _) = cal.calibrate_qdtt(&mut *self.device);
        self.model = Some(qdtt);
        self.model
            .as_ref()
            .expect("calibrated model was stored on the line above")
    }

    /// Use an externally calibrated / persisted model instead.
    pub fn set_model(&mut self, model: Qdtt) {
        self.model = Some(model);
    }

    /// Tune the optimizer (degrees considered, sorted-IS, prefetch-aware
    /// costing, queue-depth cap for concurrency budgeting).
    pub fn set_optimizer_config(&mut self, cfg: OptimizerConfig) {
        self.opt_cfg = cfg;
    }

    /// Current catalog statistics, including live cached-page counts.
    pub fn stats(&self) -> TableStats {
        TableStats::gather(&self.table, &self.index, &self.pool)
    }

    /// Plan `SELECT MAX(C1) WHERE C2 BETWEEN low AND high` without
    /// executing it. Uses the QDTT model if calibrated, else a pessimistic
    /// DTT-at-depth-1 fallback.
    pub fn explain_max_between(&self, low: u32, high: u32) -> (Plan, String) {
        let sel = selectivity_of_range(low, high, self.table.spec().c2_max);
        let stats = self.stats();
        let plan = match &self.model {
            Some(m) => {
                let model = QdttCost(m.clone());
                Optimizer::new(&model, self.opt_cfg.clone()).choose(&stats, sel)
            }
            None => {
                // Uncalibrated: a flat, queue-depth-blind guess.
                let model = DttCost(pioqo_core::Dtt::new(vec![
                    (1, 100.0),
                    (self.device.capacity_pages(), 10_000.0),
                ]));
                Optimizer::new(&model, self.opt_cfg.clone()).choose(&stats, sel)
            }
        };
        let name = plan_name(&plan);
        (plan, name)
    }

    /// Plan *and execute* the query against the live device and pool
    /// (the pool stays warm across queries, like a real server).
    pub fn query_max_between(&mut self, low: u32, high: u32) -> Result<QueryOutput, ExecError> {
        let (plan, plan_name) = self.explain_max_between(low, high);
        let cpu = CpuConfig::paper_xeon();
        let costs = CpuCosts::default();
        let metrics = match plan.method {
            AccessMethod::TableScan => run_fts(
                &mut *self.device,
                &mut self.pool,
                cpu,
                costs,
                &self.table,
                low,
                high,
                &FtsConfig {
                    workers: plan.degree,
                    ..FtsConfig::default()
                },
            )?,
            AccessMethod::IndexScan => run_is(
                &mut *self.device,
                &mut self.pool,
                cpu,
                costs,
                &self.table,
                &self.index,
                low,
                high,
                &IsConfig {
                    workers: plan.degree,
                    prefetch_depth: self.opt_cfg.is_prefetch_depth,
                    ..IsConfig::default()
                },
            )?,
            AccessMethod::SortedIndexScan => run_sorted_is(
                &mut *self.device,
                &mut self.pool,
                cpu,
                costs,
                &self.table,
                &self.index,
                low,
                high,
                &SortedIsConfig::default(),
            )?,
        };
        Ok(QueryOutput {
            value: metrics.max_c1,
            plan,
            plan_name,
            metrics,
        })
    }

    /// Ground truth for `MAX(C1) WHERE C2 BETWEEN low AND high`.
    pub fn oracle_max_between(&self, low: u32, high: u32) -> Option<u32> {
        self.table.data().naive_max_c1(low, high)
    }

    /// Drop every cached page (the paper's cold-start protocol).
    pub fn flush_pool(&mut self) {
        self.pool.flush_all();
    }

    /// The table (for statistics/inspection).
    pub fn table(&self) -> &HeapTable {
        &self.table
    }

    /// The index (for statistics/inspection).
    pub fn index(&self) -> &BTreeIndex {
        &self.index
    }

    /// The calibrated model, if any.
    pub fn model(&self) -> Option<&Qdtt> {
        self.model.as_ref()
    }
}

fn plan_name(plan: &Plan) -> String {
    match (plan.method, plan.degree) {
        (AccessMethod::TableScan, 1) => "FTS".into(),
        (AccessMethod::TableScan, d) => format!("PFTS{d}"),
        (AccessMethod::IndexScan, 1) => "IS".into(),
        (AccessMethod::IndexScan, d) => format!("PIS{d}"),
        (AccessMethod::SortedIndexScan, _) => "SortedIS".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_storage::range_for_selectivity;

    fn small_db(storage: StorageKind) -> Db {
        Db::create(DbConfig {
            storage,
            buffer_mb: 8,
            rows: 30_000,
            rows_per_page: 33,
            seed: 77,
        })
    }

    #[test]
    fn query_matches_oracle_calibrated_or_not() {
        let mut db = small_db(StorageKind::Ssd);
        let (lo, hi) = range_for_selectivity(0.05, u32::MAX - 1);
        // Uncalibrated: falls back to the pessimistic DTT and still answers.
        let out = db.query_max_between(lo, hi).expect("runs");
        assert_eq!(out.value, db.oracle_max_between(lo, hi));
        // Calibrated: same answer, possibly different plan.
        db.calibrate();
        db.flush_pool();
        let out2 = db.query_max_between(lo, hi).expect("runs");
        assert_eq!(out2.value, out.value);
    }

    #[test]
    fn calibrated_ssd_db_parallelizes_large_low_selectivity_scans() {
        let mut db = Db::create(DbConfig {
            storage: StorageKind::Ssd,
            buffer_mb: 8,
            rows: 400_000,
            rows_per_page: 33,
            seed: 3,
        });
        db.calibrate();
        let (lo, hi) = range_for_selectivity(0.002, u32::MAX - 1);
        let (plan, name) = db.explain_max_between(lo, hi);
        assert_eq!(plan.method, AccessMethod::IndexScan);
        assert!(plan.degree > 1, "calibrated SSD should go parallel: {name}");
    }

    #[test]
    fn hdd_db_stays_serial() {
        let mut db = Db::create(DbConfig {
            storage: StorageKind::Hdd,
            buffer_mb: 8,
            rows: 400_000,
            rows_per_page: 33,
            seed: 3,
        });
        db.calibrate();
        let (lo, hi) = range_for_selectivity(0.002, u32::MAX - 1);
        let (plan, _) = db.explain_max_between(lo, hi);
        assert_eq!(plan.degree, 1, "single spindle gains nothing from depth");
    }

    #[test]
    fn warm_pool_changes_the_costing() {
        let mut db = small_db(StorageKind::Ssd);
        db.calibrate();
        let (lo, hi) = range_for_selectivity(0.9, u32::MAX - 1);
        let (cold_plan, _) = db.explain_max_between(lo, hi);
        db.query_max_between(lo, hi).expect("runs");
        // Much of the table is now cached; estimated I/O must drop.
        let (warm_plan, _) = db.explain_max_between(lo, hi);
        assert!(warm_plan.est_io_us < cold_plan.est_io_us);
    }

    #[test]
    fn persisted_model_round_trips_through_set_model() {
        let mut db = small_db(StorageKind::Ssd);
        let model = db.calibrate().clone();
        let mut db2 = small_db(StorageKind::Ssd);
        db2.set_model(model);
        let (lo, hi) = range_for_selectivity(0.01, u32::MAX - 1);
        let (p1, _) = db.explain_max_between(lo, hi);
        let (p2, _) = db2.explain_max_between(lo, hi);
        assert_eq!(p1.method, p2.method);
        assert_eq!(p1.degree, p2.degree);
    }

    #[test]
    fn empty_range_returns_none() {
        let mut db = small_db(StorageKind::Ssd);
        db.calibrate();
        let out = db.query_max_between(10, 9).expect("runs");
        assert_eq!(out.value, None);
        assert_eq!(out.metrics.rows_matched, 0);
    }
}
