//! # pioqo — Parallel I/O Aware Query Optimization
//!
//! A from-scratch Rust reproduction of Ghodsnia, Bowman & Nica, *"Parallel
//! I/O Aware Query Optimization"*, SIGMOD 2014 — the queue-depth-aware disk
//! transfer time (**QDTT**) I/O cost model of SAP SQL Anywhere, together
//! with every substrate the paper's evaluation needs: simulated storage
//! devices (HDD / SSD / RAID), heap tables and a B+-tree, a buffer pool,
//! parallel scan operators with prefetching, the calibration process, and
//! the cost-based optimizer.
//!
//! This facade re-exports the whole stack under one import:
//!
//! ```
//! use pioqo::prelude::*;
//!
//! // A small table on a simulated SSD.
//! let exp = Experiment::build(
//!     ExperimentConfig::by_name("E33-SSD").unwrap().scaled_down(400),
//! );
//! // Calibrate the device, build old/new optimizers, pick plans.
//! let models = pioqo::workload::calibrate(&exp);
//! let stats = pioqo::workload::cold_stats(&exp);
//! let qdtt_model = QdttCost(models.qdtt.clone());
//! let new_opt = Optimizer::new(&qdtt_model, OptimizerConfig::default());
//! let plan = new_opt.choose(&stats, 0.01);
//! assert!(plan.est_total_us > 0.0);
//! ```
//!
//! The individual layers are also published as their own crates:
//! [`simkit`], [`device`], [`storage`], [`bufpool`], [`exec`], [`obs`]
//! (sim-time tracing and histograms), [`core`] (the QDTT model itself),
//! [`optimizer`] and [`workload`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod db;

pub use pioqo_bufpool as bufpool;
pub use pioqo_core as core;
pub use pioqo_device as device;
pub use pioqo_exec as exec;
pub use pioqo_obs as obs;
pub use pioqo_optimizer as optimizer;
pub use pioqo_simkit as simkit;
pub use pioqo_storage as storage;
pub use pioqo_workload as workload;

/// The commonly used types, one `use` away.
pub mod prelude {
    pub use crate::db::{Db, DbBuilder, StorageKind};
    pub use pioqo_bufpool::wal::{Wal, WalOp, WalRecord, WalScan};
    pub use pioqo_bufpool::BufferPool;
    pub use pioqo_core::{CalibrationConfig, Calibrator, Dtt, Method, Qdtt};
    pub use pioqo_device::{
        presets, CrashPlan, CrashReport, Crashable, DeviceModel, FaultPlan, Faulty, Hdd, IoKind,
        IoRequest, IoStatus, MediaStore, Raid, Ssd, Traced,
    };
    pub use pioqo_exec::{
        drive_writes, execute, oracle, recover, Aggregate, CmpOp, Col, CpuConfig, CpuCosts,
        ExecError, FtsConfig, HashJoinConfig, InlConfig, IsConfig, JoinClause, MultiEngine,
        PlanSpec, Predicate, Projection, QuerySpec, RecoveryStats, ResilienceStats, RetryPolicy,
        ScanMetrics, SimContext, SortedIsConfig, ThinkTime, WorkloadReport, WorkloadSpec,
        WriteConfig, WriteStats, WriteSystem,
    };
    pub use pioqo_obs::{HistSet, Histogram, NullSink, RingSink, TraceSink};
    pub use pioqo_optimizer::{
        choose_join, plan_to_spec, AccessMethod, DttCost, JoinDecision, JoinMethod, JoinPlan,
        JoinStats, Optimizer, OptimizerConfig, Plan, QdBudget, QdttAdmission, QdttCost, TableStats,
    };
    pub use pioqo_simkit::{SimDuration, SimRng, SimTime};
    pub use pioqo_storage::{BTreeIndex, HeapTable, TableSpec, Tablespace};
    pub use pioqo_workload::{
        break_even, capture_trace, default_trace_cells, runtime_curve, DeviceKind, Experiment,
        ExperimentConfig, MethodSpec, TraceBundle, TraceCell,
    };
}
