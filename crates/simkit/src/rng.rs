//! Deterministic random number utilities.
//!
//! Every stochastic choice in the workspace (data generation, calibration
//! offsets, service-time jitter) flows through [`SimRng`], a seeded
//! xoshiro-style generator, so that a given seed reproduces a run bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded RNG with helpers used across the simulation.
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator; used to give each component
    /// (table gen, calibrator, jitter) its own stream from one master seed.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seeded(s)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be > 0.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Multiplicative jitter factor in `[1 - spread, 1 + spread]`.
    ///
    /// Device models apply this to service times to emulate measurement
    /// noise; `spread = 0` disables it.
    #[inline]
    pub fn jitter(&mut self, spread: f64) -> f64 {
        if spread <= 0.0 {
            return 1.0;
        }
        1.0 + (self.unit() * 2.0 - 1.0) * spread
    }

    /// A random permutation of `0..n` (Fisher–Yates).
    ///
    /// The calibrator uses this to produce the paper's "sequence of P
    /// non-repetitive random numbers from 0 to b" (§4.4).
    pub fn permutation(&mut self, n: usize) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n as u64).collect();
        for i in (1..v.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }

    /// `count` distinct values sampled uniformly from `[0, n)`.
    ///
    /// Uses Floyd's algorithm so it stays O(count) even for huge `n` — the
    /// calibrator samples 3 200 offsets out of bands holding millions of
    /// pages.
    pub fn distinct_below(&mut self, n: u64, count: usize) -> Vec<u64> {
        assert!(count as u64 <= n, "cannot sample {count} distinct from {n}");
        let mut chosen = std::collections::HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        for j in (n - count as u64)..n {
            let t = self.below(j + 1);
            let v = if chosen.contains(&t) { j } else { t };
            chosen.insert(v);
            out.push(v);
        }
        // Floyd's algorithm yields a sorted-biased order; shuffle for a
        // uniformly random visit order, which the calibration I/O pattern
        // requires.
        for i in (1..out.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            out.swap(i, j);
        }
        out
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seeded(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = SimRng::seeded(3);
        let mut p = r.permutation(257);
        p.sort_unstable();
        assert_eq!(p, (0..257).collect::<Vec<u64>>());
    }

    #[test]
    fn distinct_below_distinct_and_bounded() {
        let mut r = SimRng::seeded(9);
        let v = r.distinct_below(1_000_000_000, 3200);
        assert_eq!(v.len(), 3200);
        let set: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(set.len(), 3200);
        assert!(v.iter().all(|&x| x < 1_000_000_000));
    }

    #[test]
    fn distinct_below_full_range() {
        let mut r = SimRng::seeded(11);
        let mut v = r.distinct_below(16, 16);
        v.sort_unstable();
        assert_eq!(v, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::seeded(5);
        for _ in 0..1000 {
            let j = r.jitter(0.1);
            assert!((0.9..=1.1).contains(&j));
        }
        assert_eq!(r.jitter(0.0), 1.0);
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut m1 = SimRng::seeded(99);
        let mut m2 = SimRng::seeded(99);
        let mut c1 = m1.fork(1);
        let mut c2 = m2.fork(1);
        for _ in 0..10 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }
}
