//! Measurement helpers: running scalar statistics and time-weighted
//! averages (used to profile the device's observed I/O queue depth, as the
//! paper does in §2 when it reports "a queue depth of n is clearly
//! observable").

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Running mean / min / max / standard deviation over scalar samples
/// (Welford's online algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 for fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Time-weighted average of a step function, e.g. instantaneous queue depth.
///
/// Call [`TimeWeighted::set`] whenever the level changes; the accumulator
/// integrates `level × dt` between changes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    level: f64,
    last_change: SimTime,
    integral: f64,
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `start` with an initial `level`.
    pub fn new(start: SimTime, level: f64) -> Self {
        TimeWeighted {
            level,
            last_change: start,
            integral: 0.0,
            start,
            peak: level,
        }
    }

    /// Record that the level changed to `level` at time `now`.
    pub fn set(&mut self, now: SimTime, level: f64) {
        let dt = now.since(self.last_change).as_secs_f64();
        self.integral += self.level * dt;
        self.level = level;
        self.last_change = now;
        self.peak = self.peak.max(level);
    }

    /// Adjust the level by `delta` at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let l = self.level + delta;
        self.set(now, l);
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Highest level seen.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean of the level over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_secs_f64();
        if total == 0.0 {
            return self.level;
        }
        let tail = now.since(self.last_change).as_secs_f64();
        (self.integral + self.level * tail) / total
    }
}

/// Throughput helper: bytes moved over a span, reported as MB/s.
pub fn mb_per_sec(bytes: u64, elapsed: SimDuration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs == 0.0 {
        return 0.0;
    }
    bytes as f64 / 1_000_000.0 / secs
}

/// I/O operations per second over a span.
pub fn iops(ops: u64, elapsed: SimDuration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs == 0.0 {
        return 0.0;
    }
    ops as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_basic_moments() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        // Sample std dev of the classic dataset is sqrt(32/7).
        assert!((r.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
        assert!((r.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn running_empty_is_safe() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.std_dev(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
    }

    #[test]
    fn time_weighted_square_wave() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        // 1 second at level 0, then 1 second at level 4 -> mean 2.
        tw.set(SimTime::from_nanos(1_000_000_000), 4.0);
        let mean = tw.mean(SimTime::from_nanos(2_000_000_000));
        assert!((mean - 2.0).abs() < 1e-9);
        assert_eq!(tw.peak(), 4.0);
    }

    #[test]
    fn time_weighted_add_tracks_level() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime::from_micros(1), 3.0);
        tw.add(SimTime::from_micros(2), -1.0);
        assert_eq!(tw.level(), 2.0);
        assert_eq!(tw.peak(), 3.0);
    }

    #[test]
    fn throughput_helpers() {
        let d = SimDuration::from_millis(1000);
        assert!((mb_per_sec(110_000_000, d) - 110.0).abs() < 1e-9);
        assert!((iops(230_000, d) - 230_000.0).abs() < 1e-9);
        assert_eq!(mb_per_sec(1, SimDuration::ZERO), 0.0);
    }
}
