//! # pioqo-simkit — discrete-event simulation kernel
//!
//! The minimal machinery the rest of the workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — an exact integer virtual clock;
//! * [`EventQueue`] — a deterministic event calendar (FIFO tie-breaking);
//! * [`SimRng`] — seeded randomness with sampling helpers;
//! * [`stats`] — running statistics and time-weighted level tracking;
//! * [`par`] — deterministic scoped-thread fan-out for independent
//!   experiment grid points (results merged in submission order).
//!
//! Device models (`pioqo-device`) and the execution engine (`pioqo-exec`)
//! are actors driven by a single event loop built from these pieces; the
//! virtual clock is what lets us reproduce the paper's runtime curves
//! without the paper's hardware.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod par;
mod queue;
mod rng;
pub mod stats;
mod time;

pub use queue::{EventQueue, QueueStats};
pub use rng::SimRng;
pub use stats::{Running, TimeWeighted};
pub use time::{SimDuration, SimTime};
