//! Event calendar: a min-heap of `(time, sequence, payload)` entries.
//!
//! The sequence number breaks ties deterministically in insertion order, so
//! two events scheduled for the same instant always fire in the order they
//! were scheduled — a requirement for reproducible simulations.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A calendar of future events ordered by firing time.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current clock reading: the firing time of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past would make
    /// the simulation non-causal and is always a bug in the caller.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Firing time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event and advance the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Drain every event sharing the earliest firing time into `out` in
    /// one pass, advancing the clock to that time.
    ///
    /// Device schedulers frequently complete several I/Os at the same
    /// virtual instant (e.g. a striped read finishing across channels);
    /// draining the cohort in one call saves a peek/pop pair per event and
    /// lets the caller process the batch with the timestamp hoisted out of
    /// the loop. Events are appended in schedule order (FIFO tie-break),
    /// identical to repeated [`EventQueue::pop`] calls. Returns the shared
    /// firing time, or `None` when the calendar is empty (`out` untouched).
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let first = self.heap.pop()?;
        debug_assert!(first.at >= self.now);
        let at = first.at;
        self.now = at;
        out.push(first.event);
        while let Some(next) = self.heap.peek() {
            if next.at != at {
                break;
            }
            // Unwrap is fine: peek just proved the heap is non-empty.
            if let Some(entry) = self.heap.pop() {
                out.push(entry.event);
            }
        }
        Some(at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    fn pop_batch_drains_cohort_in_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(5), "a");
        q.schedule(SimTime::from_micros(9), "d");
        q.schedule(SimTime::from_micros(5), "b");
        q.schedule(SimTime::from_micros(5), "c");
        let mut batch = Vec::new();
        let t = q.pop_batch(&mut batch);
        assert_eq!(t, Some(SimTime::from_micros(5)));
        assert_eq!(batch, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_micros(5));
        assert_eq!(q.len(), 1);
        batch.clear();
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime::from_micros(9)));
        assert_eq!(batch, vec!["d"]);
        assert_eq!(q.pop_batch(&mut batch), None);
        assert_eq!(batch, vec!["d"], "empty queue must leave out untouched");
    }

    #[test]
    fn pop_batch_matches_repeated_pop() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let times = [3u64, 1, 3, 2, 1, 1, 9, 2];
        for (i, &t) in times.iter().enumerate() {
            a.schedule(SimTime::from_micros(t), i);
            b.schedule(SimTime::from_micros(t), i);
        }
        let mut via_pop = Vec::new();
        while let Some((t, e)) = a.pop() {
            via_pop.push((t, e));
        }
        let mut via_batch = Vec::new();
        let mut scratch = Vec::new();
        while let Some(t) = b.pop_batch(&mut scratch) {
            via_batch.extend(scratch.drain(..).map(|e| (t, e)));
        }
        assert_eq!(via_pop, via_batch);
    }

    #[test]
    fn len_tracks_pending() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(SimTime::from_micros(1), 1);
        q.schedule(SimTime::from_micros(2), 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
