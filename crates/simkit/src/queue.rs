//! Event calendar: a time-bucketed calendar of `(time, payload)` entries.
//!
//! Events scheduled for the same instant always fire in the order they
//! were scheduled — a requirement for reproducible simulations. The
//! calendar makes that FIFO tie-break *structural*: events are grouped
//! into per-instant buckets (`BTreeMap<nanos, Vec<E>>`), so same-time
//! events sit in one queue in insertion order and no sequence counter
//! is needed.
//!
//! The bucket layout is what makes [`EventQueue::pop_batch`] — the
//! simulator's hot path — cheap: a device completing a queue-depth-32
//! cohort stores all 32 completions in one bucket, and draining the
//! cohort is a single ordered-map removal plus one `Vec::append`
//! memcpy, instead of 32 root-replacement sifts through a binary heap.
//! Single-event [`EventQueue::pop`] also profits: finding the earliest
//! bucket walks
//! the map's leftmost spine, which stays resident in cache across
//! consecutive pops. Exhausted buckets are recycled through a small
//! free list so steady-state scheduling does not allocate.

use crate::time::SimTime;
use std::collections::BTreeMap;

/// Most empty buckets kept for reuse; beyond this they are freed.
const BUCKET_POOL_CAP: usize = 64;

/// Always-on plain-integer calendar counters, cheap enough to maintain
/// unconditionally (a handful of adds per operation, no allocation). The
/// metrics layer snapshots these at end of run; `simkit` itself never
/// depends on `pioqo-obs` — the dependency runs the other way.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events accepted by [`EventQueue::schedule`].
    pub scheduled: u64,
    /// Events removed (single pops plus batch-drained events).
    pub popped: u64,
    /// [`EventQueue::pop_batch`] calls that drained a cohort.
    pub batch_pops: u64,
    /// Largest cohort a single `pop_batch` drained.
    pub max_cohort: u64,
    /// High-water mark of concurrent time buckets (calendar occupancy).
    pub peak_buckets: u64,
    /// High-water mark of pending events.
    pub peak_len: u64,
    /// Buckets allocated fresh because the free list was empty —
    /// reschedule churn that outruns the recycler shows up here.
    pub bucket_allocs: u64,
}

/// A calendar of future events ordered by firing time.
pub struct EventQueue<E> {
    /// Per-instant FIFO buckets, keyed by firing time in nanoseconds.
    buckets: BTreeMap<u64, Vec<E>>,
    /// Drained buckets kept around so `schedule` can reuse their storage.
    pool: Vec<Vec<E>>,
    /// Total pending events across all buckets.
    len: usize,
    now: SimTime,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            buckets: BTreeMap::new(),
            pool: Vec::new(),
            len: 0,
            now: SimTime::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// Lifetime occupancy/churn counters for this calendar.
    #[inline]
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Current clock reading: the firing time of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past would make
    /// the simulation non-causal and is always a bug in the caller.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={}",
            self.now
        );
        let pool = &mut self.pool;
        let allocs = &mut self.stats.bucket_allocs;
        self.buckets
            .entry(at.as_nanos())
            .or_insert_with(|| {
                pool.pop().unwrap_or_else(|| {
                    *allocs += 1;
                    Vec::new()
                })
            })
            .push(event);
        self.len += 1;
        self.stats.scheduled += 1;
        self.stats.peak_len = self.stats.peak_len.max(self.len as u64);
        self.stats.peak_buckets = self.stats.peak_buckets.max(self.buckets.len() as u64);
    }

    /// Firing time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.buckets
            .keys()
            .next()
            .map(|&nanos| SimTime::from_nanos(nanos))
    }

    /// Pop the earliest event and advance the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let mut entry = self.buckets.first_entry()?;
        let at = SimTime::from_nanos(*entry.key());
        // Front removal shifts the remaining cohort down; cohorts are
        // bounded by the device queue depth, so the shift is a few
        // machine words — the price of keeping the batch path a plain
        // `Vec::append`.
        let event = entry.get_mut().remove(0);
        if entry.get().is_empty() {
            let drained = entry.remove();
            self.recycle(drained);
        }
        self.len -= 1;
        self.stats.popped += 1;
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, event))
    }

    /// Drain every event sharing the earliest firing time into `out` in
    /// one pass, advancing the clock to that time.
    ///
    /// Device schedulers frequently complete several I/Os at the same
    /// virtual instant (e.g. a striped read finishing across channels).
    /// The cohort lives in a single bucket, so the whole batch costs one
    /// ordered-map removal and one `Vec::append` memcpy — there is no
    /// per-event heap sift at all. Events are appended in schedule
    /// order (FIFO tie-break), identical to repeated [`EventQueue::pop`]
    /// calls. Returns the shared firing time, or `None` when the calendar
    /// is empty (`out` untouched).
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let entry = self.buckets.first_entry()?;
        let at = SimTime::from_nanos(*entry.key());
        let mut bucket = entry.remove();
        self.len -= bucket.len();
        self.stats.popped += bucket.len() as u64;
        self.stats.batch_pops += 1;
        self.stats.max_cohort = self.stats.max_cohort.max(bucket.len() as u64);
        debug_assert!(at >= self.now);
        self.now = at;
        out.append(&mut bucket);
        self.recycle(bucket);
        Some(at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Keep a drained bucket's storage for reuse, up to the pool cap.
    #[inline]
    fn recycle(&mut self, bucket: Vec<E>) {
        debug_assert!(bucket.is_empty());
        if self.pool.len() < BUCKET_POOL_CAP {
            self.pool.push(bucket);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    fn pop_batch_drains_cohort_in_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(5), "a");
        q.schedule(SimTime::from_micros(9), "d");
        q.schedule(SimTime::from_micros(5), "b");
        q.schedule(SimTime::from_micros(5), "c");
        let mut batch = Vec::new();
        let t = q.pop_batch(&mut batch);
        assert_eq!(t, Some(SimTime::from_micros(5)));
        assert_eq!(batch, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_micros(5));
        assert_eq!(q.len(), 1);
        batch.clear();
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime::from_micros(9)));
        assert_eq!(batch, vec!["d"]);
        assert_eq!(q.pop_batch(&mut batch), None);
        assert_eq!(batch, vec!["d"], "empty queue must leave out untouched");
    }

    #[test]
    fn pop_batch_matches_repeated_pop() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let times = [3u64, 1, 3, 2, 1, 1, 9, 2];
        for (i, &t) in times.iter().enumerate() {
            a.schedule(SimTime::from_micros(t), i);
            b.schedule(SimTime::from_micros(t), i);
        }
        let mut via_pop = Vec::new();
        while let Some((t, e)) = a.pop() {
            via_pop.push((t, e));
        }
        let mut via_batch = Vec::new();
        let mut scratch = Vec::new();
        while let Some(t) = b.pop_batch(&mut scratch) {
            via_batch.extend(scratch.drain(..).map(|e| (t, e)));
        }
        assert_eq!(via_pop, via_batch);
    }

    #[test]
    fn stats_track_occupancy_and_churn() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..4 {
            q.schedule(t, i);
        }
        q.schedule(SimTime::from_micros(9), 99);
        let s = q.stats();
        assert_eq!(s.scheduled, 5);
        assert_eq!(s.peak_len, 5);
        assert_eq!(s.peak_buckets, 2);
        assert_eq!(s.bucket_allocs, 2, "both buckets were fresh allocations");

        let mut batch = Vec::new();
        q.pop_batch(&mut batch);
        q.pop();
        let s = q.stats();
        assert_eq!(s.popped, 5);
        assert_eq!(s.batch_pops, 1);
        assert_eq!(s.max_cohort, 4);

        // A recycled bucket must not count as a fresh allocation.
        q.schedule(SimTime::from_micros(20), 7);
        assert_eq!(q.stats().bucket_allocs, 2);
    }

    #[test]
    fn len_tracks_pending() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(SimTime::from_micros(1), 1);
        q.schedule(SimTime::from_micros(2), 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_reuses_buckets() {
        let mut q = EventQueue::new();
        // Drive enough schedule/drain cycles that the bucket pool is
        // exercised; order must stay exact throughout.
        let mut fired = Vec::new();
        for round in 0u64..200 {
            let t = SimTime::from_micros(round * 10);
            q.schedule(t, round * 2);
            q.schedule(t, round * 2 + 1);
            let mut batch = Vec::new();
            assert_eq!(q.pop_batch(&mut batch), Some(t));
            fired.extend(batch);
        }
        assert_eq!(fired, (0..400).collect::<Vec<_>>());
        assert!(q.is_empty());
    }
}
