//! Deterministic scoped-thread fan-out for embarrassingly parallel grids.
//!
//! The experiment harness evaluates large grids of *independent*
//! simulation points (figure curves, calibration cells, repetitions).
//! [`par_map`] runs such a grid across OS threads while keeping the
//! workspace's byte-determinism invariant:
//!
//! * every item gets its own [`SimRng`] derived as a pure function of
//!   `(master_seed, item_index)` via [`SimRng::derive`] — no generator is
//!   ever shared or advanced across items, so RNG streams are invariant
//!   under scheduling order;
//! * results are merged back **in submission order**, so the output `Vec`
//!   is identical no matter how the items were interleaved across threads.
//!
//! Together these make `PIOQO_THREADS=1` and `PIOQO_THREADS=N` produce
//! byte-identical CSVs (enforced by `crates/repro/tests/` and CI).
//!
//! The pool is dependency-free: plain `std::thread::scope`, one atomic
//! work index, no channels. Worker threads exist only inside `par_map`;
//! nothing simulated ever runs concurrently with itself. This module is
//! the one allowlisted `std::thread` exception in a simulation crate
//! (lint rule D7, see `lint.toml`).

use crate::SimRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads currently parked inside a `par_*` fan-out anywhere in
/// the process. Nested fan-outs (a grid cell that itself calls
/// [`par_map`]) consult this to size themselves against the *free* cores
/// instead of oversubscribing the host — see [`free_thread_budget`].
static CORES_IN_USE: AtomicUsize = AtomicUsize::new(0);

/// RAII registration of `workers` busy cores in [`CORES_IN_USE`], so the
/// count unwinds correctly even if a worker panics.
struct CoreReservation(usize);

impl CoreReservation {
    fn new(workers: usize) -> CoreReservation {
        CORES_IN_USE.fetch_add(workers, Ordering::Relaxed);
        CoreReservation(workers)
    }
}

impl Drop for CoreReservation {
    fn drop(&mut self) {
        CORES_IN_USE.fetch_sub(self.0, Ordering::Relaxed);
    }
}

/// How many threads a fan-out starting *now* should use: the configured
/// [`thread_count`] minus the cores already reserved by enclosing
/// fan-outs, floored at 1. The budget only changes scheduling, never
/// results (derived seeds and index-ordered merges are thread-count
/// blind), so a nested [`par_map`] stays byte-identical while no longer
/// multiplying the host's thread count.
pub fn free_thread_budget() -> usize {
    thread_count()
        .saturating_sub(CORES_IN_USE.load(Ordering::Relaxed))
        .max(1)
}

/// Number of worker threads the harness should use.
///
/// Reads `PIOQO_THREADS` (the `repro --threads N` flag sets it); any
/// value that is not a positive integer falls back to the host's
/// available parallelism. The returned count only affects wall-clock
/// time, never results — see the module docs.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("PIOQO_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on [`thread_count`] threads, returning results in
/// submission order.
///
/// Item `i` receives `SimRng::derive(master_seed, i)`, so its random
/// stream depends only on its position in `items`, not on which thread
/// ran it or when. With one thread (or one item) the items run inline on
/// the caller's thread with the *same* derived seeds, which is what makes
/// the single-threaded and multi-threaded outputs byte-identical.
pub fn par_map<T, R, F>(master_seed: u64, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(SimRng, &T) -> R + Sync,
{
    par_map_threads(free_thread_budget(), master_seed, items, f)
}

/// [`par_map`] with an explicit thread count (used by tests and the
/// benchmark harness to pin both sides of a 1-vs-N comparison).
pub fn par_map_threads<T, R, F>(threads: usize, master_seed: u64, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(SimRng, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let _phase = pioqo_profiler::scope("par_inline");
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let _item = pioqo_profiler::scope("item");
                f(SimRng::derive(master_seed, i as u64), item)
            })
            .collect();
    }

    // One shared claim counter; each worker grabs the next unclaimed index
    // and keeps `(index, result)` pairs locally so no lock sits on the
    // result path. Which worker computes which item varies run to run —
    // the derived seeds and the index-ordered merge below are what keep
    // the output independent of that.
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    {
        let _phase = pioqo_profiler::scope("par_fanout");
        let _cores = CoreReservation::new(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (next, f) = (&next, &f);
                    scope.spawn(move || {
                        pioqo_profiler::set_thread_label(&format!("worker{w}"));
                        let mut local = Vec::new();
                        {
                            let _worker = pioqo_profiler::scope("par_worker");
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                let _item = pioqo_profiler::scope("item");
                                local
                                    .push((i, f(SimRng::derive(master_seed, i as u64), &items[i])));
                            }
                        }
                        pioqo_profiler::flush_thread();
                        local
                    })
                })
                .collect();
            let _join = pioqo_profiler::scope("join");
            for handle in handles {
                buckets.push(handle.join().expect("par_map worker thread panicked"));
            }
        });
    }

    // Merge in submission order.
    let _merge = pioqo_profiler::scope("par_merge");
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("par_map worker skipped a claimed item"))
        .collect()
}

/// [`par_map`] for grids with *known, uneven* item costs: items are
/// statically assigned to workers by longest-processing-time-first (LPT)
/// over `weight`, so one straggler cell (e.g. the 16-session point of a
/// concurrency grid) no longer serializes the tail the way first-come
/// claiming can when it lands last.
///
/// Determinism is untouched: item `i` still gets `SimRng::derive(seed,
/// i)` and results still merge in submission order, so the output is
/// byte-identical to [`par_map`] at any thread count — only wall-clock
/// changes. Weights are scheduling hints; they never reach `f`.
pub fn par_map_weighted<T, R, F, W>(master_seed: u64, items: &[T], weight: W, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(SimRng, &T) -> R + Sync,
    W: Fn(&T) -> u64,
{
    par_map_weighted_threads(free_thread_budget(), master_seed, items, weight, f)
}

/// [`par_map_weighted`] with an explicit thread count (tests pin both
/// sides of a 1-vs-N comparison).
pub fn par_map_weighted_threads<T, R, F, W>(
    threads: usize,
    master_seed: u64,
    items: &[T],
    weight: W,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(SimRng, &T) -> R + Sync,
    W: Fn(&T) -> u64,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let _phase = pioqo_profiler::scope("par_inline");
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let _item = pioqo_profiler::scope("item");
                f(SimRng::derive(master_seed, i as u64), item)
            })
            .collect();
    }

    let weights: Vec<u64> = items.iter().map(weight).collect();
    let workers = threads.min(n);
    let assignment = lpt_assignment(&weights, workers);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    {
        let _phase = pioqo_profiler::scope("par_fanout");
        let _cores = CoreReservation::new(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = assignment
                .iter()
                .enumerate()
                .map(|(w, mine)| {
                    let f = &f;
                    scope.spawn(move || {
                        pioqo_profiler::set_thread_label(&format!("worker{w}"));
                        let mut local = Vec::with_capacity(mine.len());
                        {
                            let _worker = pioqo_profiler::scope("par_worker");
                            for &i in mine {
                                let _item = pioqo_profiler::scope("item");
                                local
                                    .push((i, f(SimRng::derive(master_seed, i as u64), &items[i])));
                            }
                        }
                        pioqo_profiler::flush_thread();
                        local
                    })
                })
                .collect();
            let _join = pioqo_profiler::scope("join");
            for handle in handles {
                buckets.push(handle.join().expect("par_map worker thread panicked"));
            }
        });
    }

    let _merge = pioqo_profiler::scope("par_merge");
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("par_map_weighted worker skipped an assigned item"))
        .collect()
}

/// Longest-processing-time-first assignment of `weights.len()` items onto
/// `workers` buckets: items in descending weight (index ascending on
/// ties) each go to the currently least-loaded bucket (lowest index on
/// ties). Fully deterministic; public so schedulers and tests can inspect
/// the placement [`par_map_weighted`] will use.
pub fn lpt_assignment(weights: &[u64], workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut load = vec![0u128; workers];
    let mut buckets = vec![Vec::new(); workers];
    for i in order {
        let w = (0..workers).min_by_key(|&w| load[w]).expect("workers >= 1");
        load[w] += u128::from(weights[i]);
        buckets[w].push(i);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A little simulation-shaped job: consume the derived rng and fold it
    /// with the item so both seed and payload show up in the result.
    fn job(mut rng: SimRng, item: &u64) -> u64 {
        let mut acc = *item;
        for _ in 0..16 {
            acc = acc.wrapping_add(rng.below(1 << 20));
        }
        acc
    }

    #[test]
    fn order_matches_input_and_thread_count_is_invisible() {
        let items: Vec<u64> = (0..97).collect();
        let seq = par_map_threads(1, 0xC0FFEE, &items, job);
        for threads in [2, 3, 4, 8, 64] {
            let par = par_map_threads(threads, 0xC0FFEE, &items, job);
            assert_eq!(seq, par, "threads={threads} diverged from threads=1");
        }
    }

    #[test]
    fn each_item_gets_its_derived_stream() {
        let items = [5u64, 5, 5];
        let out = par_map_threads(2, 99, &items, |mut rng, _| rng.next_u64());
        // Same payloads, different streams.
        assert_ne!(out[0], out[1]);
        assert_ne!(out[1], out[2]);
        // And stream i is exactly SimRng::derive(seed, i).
        assert_eq!(out[0], SimRng::derive(99, 0).next_u64());
        assert_eq!(out[2], SimRng::derive(99, 2).next_u64());
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_threads(4, 1, &empty, job).is_empty());
        let one = [7u64];
        assert_eq!(
            par_map_threads(4, 1, &one, job),
            par_map_threads(1, 1, &one, job)
        );
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items: Vec<u64> = (0..3).collect();
        let a = par_map_threads(16, 2, &items, job);
        let b = par_map_threads(1, 2, &items, job);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_map_is_byte_identical_to_unweighted_at_any_thread_count() {
        let items: Vec<u64> = (0..61).collect();
        let seq = par_map_threads(1, 0xBEEF, &items, job);
        for threads in [1, 2, 3, 8, 64] {
            // Pathological weights (all heaviest first, zeros, dupes) must
            // never leak into the results.
            let w = par_map_weighted_threads(threads, 0xBEEF, &items, |&i| i % 7, job);
            assert_eq!(seq, w, "threads={threads} weighted diverged");
        }
    }

    #[test]
    fn lpt_spreads_heavy_items_and_covers_every_index() {
        let weights = [100u64, 90, 10, 10, 10, 10];
        let buckets = lpt_assignment(&weights, 2);
        // The two heavy items must land on different workers...
        let of = |i: usize| buckets.iter().position(|b| b.contains(&i)).expect("placed");
        assert_ne!(of(0), of(1));
        // ...and the makespan must beat naive index-halving (100+90 vs 140).
        let load = |b: &Vec<usize>| b.iter().map(|&i| weights[i]).sum::<u64>();
        assert_eq!(buckets.iter().map(load).max(), Some(120));
        // Every index appears exactly once.
        let mut all: Vec<usize> = buckets.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..weights.len()).collect::<Vec<_>>());
    }

    #[test]
    fn nested_fanout_respects_the_free_core_budget() {
        // The outer fan-out reserves its workers; a nested par_map must see
        // a reduced budget (floored at 1) instead of thread_count().
        let items: Vec<u64> = (0..4).collect();
        let budgets = par_map_threads(4, 7, &items, |_, _| free_thread_budget());
        let total = thread_count();
        for b in budgets {
            if total > 4 {
                assert!(
                    b <= total - 4,
                    "outer workers not subtracted: {b} vs {total}"
                );
            } else {
                assert_eq!(b, 1, "oversubscribed host must floor at 1");
            }
        }
        // (No post-return budget assertion: sibling tests fan out
        // concurrently under the harness, so the global count is theirs
        // to perturb. Release is covered by CoreReservation's Drop.)
    }
}
