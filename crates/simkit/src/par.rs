//! Deterministic scoped-thread fan-out for embarrassingly parallel grids.
//!
//! The experiment harness evaluates large grids of *independent*
//! simulation points (figure curves, calibration cells, repetitions).
//! [`par_map`] runs such a grid across OS threads while keeping the
//! workspace's byte-determinism invariant:
//!
//! * every item gets its own [`SimRng`] derived as a pure function of
//!   `(master_seed, item_index)` via [`SimRng::derive`] — no generator is
//!   ever shared or advanced across items, so RNG streams are invariant
//!   under scheduling order;
//! * results are merged back **in submission order**, so the output `Vec`
//!   is identical no matter how the items were interleaved across threads.
//!
//! Together these make `PIOQO_THREADS=1` and `PIOQO_THREADS=N` produce
//! byte-identical CSVs (enforced by `crates/repro/tests/` and CI).
//!
//! The pool is dependency-free: plain `std::thread::scope`, one atomic
//! work index, no channels. Worker threads exist only inside `par_map`;
//! nothing simulated ever runs concurrently with itself. This module is
//! the one allowlisted `std::thread` exception in a simulation crate
//! (lint rule D7, see `lint.toml`).

use crate::SimRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads the harness should use.
///
/// Reads `PIOQO_THREADS` (the `repro --threads N` flag sets it); any
/// value that is not a positive integer falls back to the host's
/// available parallelism. The returned count only affects wall-clock
/// time, never results — see the module docs.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("PIOQO_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on [`thread_count`] threads, returning results in
/// submission order.
///
/// Item `i` receives `SimRng::derive(master_seed, i)`, so its random
/// stream depends only on its position in `items`, not on which thread
/// ran it or when. With one thread (or one item) the items run inline on
/// the caller's thread with the *same* derived seeds, which is what makes
/// the single-threaded and multi-threaded outputs byte-identical.
pub fn par_map<T, R, F>(master_seed: u64, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(SimRng, &T) -> R + Sync,
{
    par_map_threads(thread_count(), master_seed, items, f)
}

/// [`par_map`] with an explicit thread count (used by tests and the
/// benchmark harness to pin both sides of a 1-vs-N comparison).
pub fn par_map_threads<T, R, F>(threads: usize, master_seed: u64, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(SimRng, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let _phase = pioqo_profiler::scope("par_inline");
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let _item = pioqo_profiler::scope("item");
                f(SimRng::derive(master_seed, i as u64), item)
            })
            .collect();
    }

    // One shared claim counter; each worker grabs the next unclaimed index
    // and keeps `(index, result)` pairs locally so no lock sits on the
    // result path. Which worker computes which item varies run to run —
    // the derived seeds and the index-ordered merge below are what keep
    // the output independent of that.
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    {
        let _phase = pioqo_profiler::scope("par_fanout");
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (next, f) = (&next, &f);
                    scope.spawn(move || {
                        pioqo_profiler::set_thread_label(&format!("worker{w}"));
                        let mut local = Vec::new();
                        {
                            let _worker = pioqo_profiler::scope("par_worker");
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                let _item = pioqo_profiler::scope("item");
                                local
                                    .push((i, f(SimRng::derive(master_seed, i as u64), &items[i])));
                            }
                        }
                        pioqo_profiler::flush_thread();
                        local
                    })
                })
                .collect();
            let _join = pioqo_profiler::scope("join");
            for handle in handles {
                buckets.push(handle.join().expect("par_map worker thread panicked"));
            }
        });
    }

    // Merge in submission order.
    let _merge = pioqo_profiler::scope("par_merge");
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("par_map worker skipped a claimed item"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A little simulation-shaped job: consume the derived rng and fold it
    /// with the item so both seed and payload show up in the result.
    fn job(mut rng: SimRng, item: &u64) -> u64 {
        let mut acc = *item;
        for _ in 0..16 {
            acc = acc.wrapping_add(rng.below(1 << 20));
        }
        acc
    }

    #[test]
    fn order_matches_input_and_thread_count_is_invisible() {
        let items: Vec<u64> = (0..97).collect();
        let seq = par_map_threads(1, 0xC0FFEE, &items, job);
        for threads in [2, 3, 4, 8, 64] {
            let par = par_map_threads(threads, 0xC0FFEE, &items, job);
            assert_eq!(seq, par, "threads={threads} diverged from threads=1");
        }
    }

    #[test]
    fn each_item_gets_its_derived_stream() {
        let items = [5u64, 5, 5];
        let out = par_map_threads(2, 99, &items, |mut rng, _| rng.next_u64());
        // Same payloads, different streams.
        assert_ne!(out[0], out[1]);
        assert_ne!(out[1], out[2]);
        // And stream i is exactly SimRng::derive(seed, i).
        assert_eq!(out[0], SimRng::derive(99, 0).next_u64());
        assert_eq!(out[2], SimRng::derive(99, 2).next_u64());
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_threads(4, 1, &empty, job).is_empty());
        let one = [7u64];
        assert_eq!(
            par_map_threads(4, 1, &one, job),
            par_map_threads(1, 1, &one, job)
        );
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items: Vec<u64> = (0..3).collect();
        let a = par_map_threads(16, 2, &items, job);
        let b = par_map_threads(1, 2, &items, job);
        assert_eq!(a, b);
    }
}
