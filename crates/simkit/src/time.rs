//! Virtual time for the discrete-event simulation.
//!
//! All device service times and CPU costs in this workspace are expressed in
//! virtual nanoseconds. A `u64` nanosecond clock gives ~584 years of range,
//! which is far beyond any simulated experiment, while keeping ordering
//! comparisons exact (no floating-point event-time ties).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "inactive" sentinel for event sources.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future (callers comparing event sources may race on ties).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from fractional microseconds; negative values clamp to zero.
    ///
    /// Device models compute service times in floating point (seek curves,
    /// bandwidth divisions); this is the single rounding point back into the
    /// integer clock domain.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        if us <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, as a float.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_micros_f64(self.as_micros_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(7).as_micros_f64(), 7.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 15_000);
        assert_eq!((t - SimTime::from_micros(10)).as_micros_f64(), 5.0);
        assert_eq!(
            SimDuration::from_micros(4) * 3,
            SimDuration::from_micros(12)
        );
        assert_eq!(
            SimDuration::from_micros(12) / 4,
            SimDuration::from_micros(3)
        );
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_micros(1);
        let late = SimTime::from_micros(9);
        assert_eq!((early - late).as_nanos(), 0);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn fractional_micros_round() {
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_micros_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(0.0004).as_nanos(), 0);
    }

    #[test]
    fn ordering_and_sentinels() {
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
    }

    #[test]
    fn display_units_scale() {
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "3.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_millis(3000)), "3.000s");
    }
}
