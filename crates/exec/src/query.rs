//! The typed query layer: predicate trees, projections, aggregates, joins,
//! and the [`QuerySpec`] bundle that [`crate::execute`] consumes.
//!
//! Until this module existed every query the executor could run was the
//! paper's hard-wired `SELECT MAX(C1) ... WHERE C2 BETWEEN low AND high`.
//! [`QuerySpec`] generalizes the *what* (table, predicate tree, projection,
//! aggregate, optional join) while the physical *how* stays a
//! [`PlanSpec`]. Predicates and projections are pushed down into the scan
//! drivers: each driver evaluates the tree once per page visit (the same
//! once-per-page discipline the shared-scan hub uses), never materializing
//! unprojected columns.
//!
//! Two things keep the old range-MAX behaviour byte-identical:
//! - [`Predicate::terms`] is 1 for a single BETWEEN, so the per-page CPU
//!   charge `page_overhead + rows x row_scan x terms` matches the old
//!   formula exactly;
//! - [`Predicate::sarg`] recovers the `[low, high]` window that index
//!   plans and shared-scan cursors key on, so plan lowering is unchanged
//!   for sargable predicates.
//!
//! Result checking across arbitrary predicates/projections uses an
//! order-independent [fingerprint](RowAcc::fingerprint): a commutative
//! (wrapping-add) fold of one FNV-1a hash per matching row over its
//! *projected* columns. Operators that visit rows in different orders
//! (FTS vs sorted IS vs hash join) agree on it, and the naive in-memory
//! [`oracle`] reproduces it exactly.

use crate::engine::CpuCosts;
use crate::execute::PlanSpec;
use pioqo_storage::{BTreeIndex, Extent, HeapTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A column reference in the paper's two-column schema (resolved against
/// [`pioqo_storage::Schema`] by [`Col::ordinal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Col {
    /// The payload column (aggregated by MAX).
    C1,
    /// The indexed predicate column.
    C2,
}

impl Col {
    /// The column's ordinal in the paper schema.
    pub fn ordinal(&self) -> usize {
        match self {
            Col::C1 => 0,
            Col::C2 => 1,
        }
    }

    /// The column's value in a `(c1, c2)` row.
    #[inline]
    pub fn of(&self, c1: u32, c2: u32) -> u32 {
        match self {
            Col::C1 => c1,
            Col::C2 => c2,
        }
    }
}

/// A comparison operator in a predicate leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `!=`
    Ne,
}

/// A predicate tree over one row: comparisons against constants, BETWEEN
/// windows, and AND/OR combinations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// `col op value`.
    Cmp {
        /// Column referenced.
        col: Col,
        /// Comparison operator.
        op: CmpOp,
        /// Constant compared against.
        value: u32,
    },
    /// `col BETWEEN low AND high` (inclusive both ends; `low > high` is the
    /// canonical empty window).
    Between {
        /// Column referenced.
        col: Col,
        /// Inclusive lower bound.
        low: u32,
        /// Inclusive upper bound.
        high: u32,
    },
    /// Conjunction of children (empty = `True`).
    And(Vec<Predicate>),
    /// Disjunction of children (empty = `False`: no child matches).
    Or(Vec<Predicate>),
}

impl Predicate {
    /// The paper predicate: `C2 BETWEEN low AND high`.
    pub fn c2_between(low: u32, high: u32) -> Predicate {
        Predicate::Between {
            col: Col::C2,
            low,
            high,
        }
    }

    /// Evaluate the tree against one row.
    pub fn matches(&self, c1: u32, c2: u32) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { col, op, value } => {
                let v = col.of(c1, c2);
                match op {
                    CmpOp::Lt => v < *value,
                    CmpOp::Le => v <= *value,
                    CmpOp::Eq => v == *value,
                    CmpOp::Ge => v >= *value,
                    CmpOp::Gt => v > *value,
                    CmpOp::Ne => v != *value,
                }
            }
            Predicate::Between { col, low, high } => {
                let v = col.of(c1, c2);
                v >= *low && v <= *high
            }
            Predicate::And(ps) => ps.iter().all(|p| p.matches(c1, c2)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches(c1, c2)),
        }
    }

    /// Number of comparison leaves — the unit the per-page CPU charge
    /// scales with (`True` and a single BETWEEN both cost 1, preserving the
    /// pre-query-layer scan cost exactly).
    pub fn terms(&self) -> u32 {
        match self {
            Predicate::True | Predicate::Cmp { .. } | Predicate::Between { .. } => 1,
            Predicate::And(ps) | Predicate::Or(ps) => {
                ps.iter().map(Predicate::terms).sum::<u32>().max(1)
            }
        }
    }

    /// The tightest `[low, high]` window on `C2` that *covers* every
    /// matching row (the search argument for index plans and shared-scan
    /// cursors). Always a valid cover: predicates that do not constrain
    /// `C2` return the full domain, AND intersects children, OR takes the
    /// hull. An inverted window (`low > high`) means no row can match.
    pub fn sarg(&self) -> (u32, u32) {
        const FULL: (u32, u32) = (0, u32::MAX);
        match self {
            Predicate::True => FULL,
            Predicate::Cmp { col: Col::C1, .. } => FULL,
            Predicate::Cmp {
                col: Col::C2,
                op,
                value,
            } => match op {
                CmpOp::Lt => (0, value.wrapping_sub(1)),
                CmpOp::Le => (0, *value),
                CmpOp::Eq => (*value, *value),
                CmpOp::Ge => (*value, u32::MAX),
                CmpOp::Gt => {
                    if *value == u32::MAX {
                        (1, 0)
                    } else {
                        (value + 1, u32::MAX)
                    }
                }
                CmpOp::Ne => FULL,
            },
            Predicate::Between {
                col: Col::C1,
                low,
                high,
            } => {
                if low > high {
                    (1, 0) // empty on any column is empty overall
                } else {
                    FULL
                }
            }
            Predicate::Between {
                col: Col::C2,
                low,
                high,
            } => (*low, *high),
            Predicate::And(ps) => {
                let mut lo = 0u32;
                let mut hi = u32::MAX;
                for p in ps {
                    let (l, h) = p.sarg();
                    lo = lo.max(l);
                    hi = hi.min(h);
                }
                (lo, hi)
            }
            Predicate::Or(ps) => {
                if ps.is_empty() {
                    return (1, 0);
                }
                let mut lo = u32::MAX;
                let mut hi = 0u32;
                let mut any = false;
                for p in ps {
                    let (l, h) = p.sarg();
                    if l > h {
                        continue; // empty branch contributes nothing
                    }
                    any = true;
                    lo = lo.min(l);
                    hi = hi.max(h);
                }
                if any {
                    (lo, hi)
                } else {
                    (1, 0)
                }
            }
        }
    }

    /// Whether the sarg window is the predicate itself (no residual): a
    /// single `C2` BETWEEN/comparison or `True`. Index plans on residual
    /// predicates re-check [`Predicate::matches`] per fetched row.
    pub fn is_pure_c2_range(&self) -> bool {
        matches!(
            self,
            Predicate::True
                | Predicate::Between { col: Col::C2, .. }
                | Predicate::Cmp {
                    col: Col::C2,
                    op: CmpOp::Lt | CmpOp::Le | CmpOp::Eq | CmpOp::Ge | CmpOp::Gt,
                    ..
                }
        )
    }
}

/// A projection list: which columns each matching row contributes to the
/// output fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Projection {
    /// Every column (`SELECT *`).
    All,
    /// The listed columns, in listed order.
    Cols(Vec<Col>),
}

impl Projection {
    /// The projected columns as a concrete slice (paper schema order for
    /// [`Projection::All`]).
    pub fn cols(&self) -> Vec<Col> {
        match self {
            Projection::All => vec![Col::C1, Col::C2],
            Projection::Cols(cs) => cs.clone(),
        }
    }
}

/// The aggregate a query computes over matching (or joined) rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregate {
    /// `MAX(col)` — `None` when nothing matched. For joins the column is
    /// read from the inner (right) row of each joined pair.
    Max(Col),
    /// `COUNT(*)` — reported via `rows_matched`; the value slot is `None`.
    Count,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a folded at `u32` granularity: one xor + multiply per column
/// value, not per byte — the fold runs once per matched row on the scan
/// hot path, so the byte loop was four multiplies where one suffices.
#[inline]
fn fnv_fold(h: u64, v: u32) -> u64 {
    (h ^ v as u64).wrapping_mul(FNV_PRIME)
}

/// One matching row's contribution to the order-independent output
/// fingerprint: FNV-1a over the projected column values, in projection
/// order.
pub fn row_fingerprint(cols: &[Col], c1: u32, c2: u32) -> u64 {
    let mut h = FNV_OFFSET;
    for c in cols {
        h = fnv_fold(h, c.of(c1, c2));
    }
    h
}

/// Accumulator threaded through a driver's row visits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowAcc {
    /// Running aggregate value (`MAX`), `None` until a row matches.
    pub agg: Option<u32>,
    /// Rows that satisfied the predicate (joined pairs for joins).
    pub matched: u64,
    /// Rows the operator evaluated.
    pub examined: u64,
    /// Wrapping sum of per-row fingerprints (order-independent).
    pub fingerprint: u64,
}

impl RowAcc {
    /// Fold another accumulator in (parallel-worker merge).
    pub fn merge(&mut self, other: &RowAcc) {
        self.agg = match (self.agg, other.agg) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.matched += other.matched;
        self.examined += other.examined;
        self.fingerprint = self.fingerprint.wrapping_add(other.fingerprint);
    }
}

/// Precompiled projection shape: the common one- and two-column lists
/// fold their fingerprint as a direct expression instead of walking the
/// column vector per matched row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FpShape {
    /// `SELECT *` / `[C1, C2]`.
    C1C2,
    /// `[C1]` only.
    C1,
    /// `[C2]` only.
    C2,
    /// Anything else — fold via [`row_fingerprint`].
    Listed,
}

/// A compiled row evaluator: the pushed-down predicate + projection +
/// aggregate, resolved once per query so the per-row path is branch-light.
#[derive(Debug, Clone)]
pub struct RowEval {
    pred: Predicate,
    proj: Vec<Col>,
    agg: Aggregate,
    terms: u32,
    shape: FpShape,
    /// `Some((low, high))` when the whole evaluator is the paper query
    /// shape — pure `C2` window predicate, `MAX(C1)`, full projection —
    /// letting [`RowEval::page`] run a tight window-compare loop instead
    /// of the predicate-tree walk.
    fast_window: Option<(u32, u32)>,
}

impl RowEval {
    /// Compile the evaluator for one query.
    pub fn new(pred: Predicate, proj: &Projection, agg: Aggregate) -> RowEval {
        let terms = pred.terms();
        let proj = proj.cols();
        let shape = match proj.as_slice() {
            [Col::C1, Col::C2] => FpShape::C1C2,
            [Col::C1] => FpShape::C1,
            [Col::C2] => FpShape::C2,
            _ => FpShape::Listed,
        };
        let fast_window =
            (pred.is_pure_c2_range() && agg == Aggregate::Max(Col::C1) && shape == FpShape::C1C2)
                .then(|| pred.sarg());
        RowEval {
            pred,
            proj,
            agg,
            terms,
            shape,
            fast_window,
        }
    }

    /// The projected fingerprint of one row, dispatched on the
    /// precompiled shape.
    #[inline]
    fn fp(&self, c1: u32, c2: u32) -> u64 {
        match self.shape {
            FpShape::C1C2 => fnv_fold(fnv_fold(FNV_OFFSET, c1), c2),
            FpShape::C1 => fnv_fold(FNV_OFFSET, c1),
            FpShape::C2 => fnv_fold(FNV_OFFSET, c2),
            FpShape::Listed => row_fingerprint(&self.proj, c1, c2),
        }
    }

    /// The `[low, high]` cover on `C2` (see [`Predicate::sarg`]).
    pub fn sarg(&self) -> (u32, u32) {
        self.pred.sarg()
    }

    /// The predicate's comparison-leaf count.
    pub fn terms(&self) -> u32 {
        self.terms
    }

    /// CPU charge for evaluating one heap page of `nrows` rows: the fixed
    /// page overhead plus one `row_scan` unit per row *per predicate term*
    /// (identical to the pre-query-layer charge when `terms == 1`).
    pub fn page_work(&self, costs: &CpuCosts, nrows: u64) -> f64 {
        costs.page_overhead_us + nrows as f64 * costs.row_scan_us * self.terms as f64
    }

    /// Evaluate one row, folding it into `acc` if it matches.
    #[inline]
    pub fn row(&self, c1: u32, c2: u32, acc: &mut RowAcc) -> bool {
        acc.examined += 1;
        if !self.pred.matches(c1, c2) {
            return false;
        }
        acc.matched += 1;
        let v = match self.agg {
            Aggregate::Max(col) => Some(col.of(c1, c2)),
            Aggregate::Count => None,
        };
        acc.agg = match (acc.agg, v) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        acc.fingerprint = acc.fingerprint.wrapping_add(self.fp(c1, c2));
        true
    }

    /// Evaluate every row of table page `local` (the full-scan page visit).
    pub fn page(&self, table: &HeapTable, local: u64, acc: &mut RowAcc) {
        let range = table.spec().rows_in_page(local);
        if let Some((low, high)) = self.fast_window {
            // Paper-shape fast path: window compare + MAX(C1) + full-row
            // fingerprint, with the accumulator held in locals so the
            // loop stays register-resident.
            acc.examined += range.end - range.start;
            let mut matched = 0u64;
            let mut agg = acc.agg;
            let mut fp = 0u64;
            for r in range {
                let (c1, c2) = table.row(r);
                if c2 < low || high < c2 {
                    continue;
                }
                matched += 1;
                agg = Some(agg.map_or(c1, |a| a.max(c1)));
                fp = fp.wrapping_add(fnv_fold(fnv_fold(FNV_OFFSET, c1), c2));
            }
            acc.matched += matched;
            acc.agg = agg;
            acc.fingerprint = acc.fingerprint.wrapping_add(fp);
            return;
        }
        for r in range {
            let (c1, c2) = table.row(r);
            self.row(c1, c2, acc);
        }
    }

    /// Examine one *outer* row of a join: counts it as examined and
    /// reports whether the predicate admits it to the probe/build side.
    /// Does not touch `matched` — joined pairs do, via
    /// [`RowEval::join_pair`].
    #[inline]
    pub fn left_row(&self, c1: u32, c2: u32, acc: &mut RowAcc) -> bool {
        acc.examined += 1;
        self.pred.matches(c1, c2)
    }

    /// Fold one joined pair: outer row `(lc1, lc2)` × inner row with
    /// payload `rc1` (the key is `lc2`, equal on both sides).
    #[inline]
    pub fn join_pair(&self, lc1: u32, lc2: u32, rc1: u32, acc: &mut RowAcc) {
        self.join_pair_n(lc1, lc2, rc1, 1, acc);
    }

    /// Fold `n` joined pairs of one outer row at once: `rc1_max` is the
    /// maximum inner payload among the key-equal group (hash joins fold a
    /// whole group per probe; the result is identical to `n` single
    /// [`RowEval::join_pair`] calls).
    pub fn join_pair_n(&self, lc1: u32, lc2: u32, rc1_max: u32, n: u64, acc: &mut RowAcc) {
        if n == 0 {
            return;
        }
        acc.matched += n;
        let v = match self.agg {
            Aggregate::Max(Col::C1) => Some(rc1_max),
            Aggregate::Max(Col::C2) => Some(lc2),
            Aggregate::Count => None,
        };
        acc.agg = match (acc.agg, v) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        acc.fingerprint = acc
            .fingerprint
            .wrapping_add(n.wrapping_mul(self.fp(lc1, lc2)));
    }
}

/// The inner side of an equi-join on `C2` (`left.C2 = right.C2`).
#[derive(Debug, Clone, Copy)]
pub struct JoinClause<'a> {
    /// The inner (build/probe-target) table.
    pub right: &'a HeapTable,
    /// The inner table's `C2` index (required by index-nested-loop).
    pub right_index: Option<&'a BTreeIndex>,
    /// Scratch extent for hash-join spill partitions (required by hybrid
    /// hash with more than one partition).
    pub spill: Option<Extent>,
}

/// A fully described query: physical plan, operands, predicate tree,
/// projection, aggregate, optional join. The single argument to
/// [`crate::execute`].
#[derive(Debug, Clone)]
pub struct QuerySpec<'a> {
    /// The physical plan to run (access method / join operator + knobs).
    pub plan: PlanSpec,
    /// The (outer) heap table.
    pub table: &'a HeapTable,
    /// The outer table's `C2` index (required by index-scan plans).
    pub index: Option<&'a BTreeIndex>,
    /// Predicate tree over the outer table's rows.
    pub predicate: Predicate,
    /// Projection list for matching rows.
    pub projection: Projection,
    /// The aggregate to compute.
    pub aggregate: Aggregate,
    /// Equi-join inner side, if this is a join query.
    pub join: Option<JoinClause<'a>>,
}

impl<'a> QuerySpec<'a> {
    /// A full-scan `SELECT MAX(C1)` over every row of `table` with the
    /// default FTS plan. The starting point for the builder methods.
    pub fn scan(table: &'a HeapTable) -> QuerySpec<'a> {
        QuerySpec {
            plan: PlanSpec::Fts(crate::fts::FtsConfig::default()),
            table,
            index: None,
            predicate: Predicate::True,
            projection: Projection::All,
            aggregate: Aggregate::Max(Col::C1),
            join: None,
        }
    }

    /// The paper query: `SELECT MAX(C1) FROM table WHERE C2 BETWEEN low
    /// AND high`, with the default FTS plan until [`QuerySpec::with_plan`]
    /// replaces it.
    pub fn range_max(
        table: &'a HeapTable,
        index: Option<&'a BTreeIndex>,
        low: u32,
        high: u32,
    ) -> QuerySpec<'a> {
        QuerySpec {
            predicate: Predicate::c2_between(low, high),
            index,
            ..QuerySpec::scan(table)
        }
    }

    /// Replace the physical plan.
    pub fn with_plan(mut self, plan: PlanSpec) -> QuerySpec<'a> {
        self.plan = plan;
        self
    }

    /// Attach the `C2` index (required by index-scan plans).
    pub fn with_index(mut self, index: &'a BTreeIndex) -> QuerySpec<'a> {
        self.index = Some(index);
        self
    }

    /// AND another predicate onto the query.
    pub fn filter(mut self, pred: Predicate) -> QuerySpec<'a> {
        self.predicate = match self.predicate {
            Predicate::True => pred,
            Predicate::And(mut ps) => {
                ps.push(pred);
                Predicate::And(ps)
            }
            p => Predicate::And(vec![p, pred]),
        };
        self
    }

    /// Replace the projection list.
    pub fn project(mut self, cols: Vec<Col>) -> QuerySpec<'a> {
        self.projection = Projection::Cols(cols);
        self
    }

    /// Replace the aggregate.
    pub fn aggregate(mut self, agg: Aggregate) -> QuerySpec<'a> {
        self.aggregate = agg;
        self
    }

    /// Make this an equi-join (`self.C2 = right.C2`) with `right` as the
    /// inner side.
    pub fn join(mut self, clause: JoinClause<'a>) -> QuerySpec<'a> {
        self.join = Some(clause);
        self
    }

    /// Compile the row evaluator for the outer side.
    pub fn row_eval(&self) -> RowEval {
        RowEval::new(self.predicate.clone(), &self.projection, self.aggregate)
    }
}

/// The naive in-memory reference evaluator: the oracle every operator is
/// tested against. Evaluates the predicate over all rows (and the full
/// cross product of key-equal pairs for joins) with no I/O model at all.
pub fn oracle(q: &QuerySpec<'_>) -> RowAcc {
    let eval = q.row_eval();
    let mut acc = RowAcc::default();
    match &q.join {
        None => {
            for r in 0..q.table.data().rows() {
                let (c1, c2) = q.table.row(r);
                eval.row(c1, c2, &mut acc);
            }
        }
        Some(j) => {
            // Build: right side grouped by key.
            let mut by_key: BTreeMap<u32, (u64, u32)> = BTreeMap::new();
            for r in 0..j.right.data().rows() {
                let (rc1, rc2) = j.right.row(r);
                let e = by_key.entry(rc2).or_insert((0, 0));
                e.0 += 1;
                e.1 = e.1.max(rc1);
            }
            // Probe: each matching outer row joins every key-equal inner
            // row; the aggregate column is read from the inner side.
            for r in 0..q.table.data().rows() {
                let (c1, c2) = q.table.row(r);
                acc.examined += 1;
                if !q.predicate.matches(c1, c2) {
                    continue;
                }
                if let Some(&(n, maxc1)) = by_key.get(&c2) {
                    acc.matched += n;
                    let v = match q.aggregate {
                        Aggregate::Max(col) => Some(match col {
                            Col::C1 => maxc1,
                            Col::C2 => c2,
                        }),
                        Aggregate::Count => None,
                    };
                    acc.agg = match (acc.agg, v) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (a, b) => a.or(b),
                    };
                    let cols = q.projection.cols();
                    acc.fingerprint = acc
                        .fingerprint
                        .wrapping_add(n.wrapping_mul(row_fingerprint(&cols, c1, c2)));
                }
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_storage::{TableSpec, Tablespace};

    fn table(rows: u64, c2_max: u32, seed: u64) -> HeapTable {
        let spec = TableSpec {
            c2_max,
            ..TableSpec::paper_table(33, rows, seed)
        };
        let mut ts = Tablespace::new(spec.n_pages() + 10);
        HeapTable::create(spec, &mut ts).expect("fits")
    }

    #[test]
    fn between_matches_and_sarg_round_trip() {
        let p = Predicate::c2_between(10, 20);
        assert!(p.matches(0, 10) && p.matches(0, 20) && !p.matches(0, 21));
        assert_eq!(p.sarg(), (10, 20));
        assert_eq!(p.terms(), 1);
        assert!(p.is_pure_c2_range());
    }

    #[test]
    fn and_intersects_or_hulls() {
        let a = Predicate::And(vec![
            Predicate::c2_between(10, 100),
            Predicate::c2_between(50, 200),
        ]);
        assert_eq!(a.sarg(), (50, 100));
        assert_eq!(a.terms(), 2);
        assert!(!a.is_pure_c2_range());
        let o = Predicate::Or(vec![
            Predicate::c2_between(10, 20),
            Predicate::c2_between(80, 90),
        ]);
        assert_eq!(o.sarg(), (10, 90));
        assert!(o.matches(0, 15) && o.matches(0, 85) && !o.matches(0, 50));
        // C1 constraints do not narrow the C2 cover.
        let c1 = Predicate::Cmp {
            col: Col::C1,
            op: CmpOp::Lt,
            value: 5,
        };
        assert_eq!(c1.sarg(), (0, u32::MAX));
        // Empty AND branch empties the whole cover.
        let empty = Predicate::And(vec![
            Predicate::c2_between(10, 20),
            Predicate::c2_between(30, 40),
        ]);
        let (l, h) = empty.sarg();
        assert!(l > h);
    }

    #[test]
    fn cmp_sargs_cover_exactly() {
        for (op, want) in [
            (CmpOp::Lt, (0u32, 41u32)),
            (CmpOp::Le, (0, 42)),
            (CmpOp::Eq, (42, 42)),
            (CmpOp::Ge, (42, u32::MAX)),
            (CmpOp::Gt, (43, u32::MAX)),
            (CmpOp::Ne, (0, u32::MAX)),
        ] {
            let p = Predicate::Cmp {
                col: Col::C2,
                op,
                value: 42,
            };
            assert_eq!(p.sarg(), want, "{op:?}");
            // Cover property: every matching c2 lies inside the sarg.
            let (lo, hi) = p.sarg();
            for c2 in [0u32, 41, 42, 43, 1000] {
                if p.matches(0, c2) {
                    assert!(c2 >= lo && c2 <= hi, "{op:?} c2={c2}");
                }
            }
        }
    }

    #[test]
    fn row_eval_matches_predicate_and_fingerprints_projection() {
        let eval = RowEval::new(
            Predicate::c2_between(5, 10),
            &Projection::Cols(vec![Col::C1]),
            Aggregate::Max(Col::C1),
        );
        let mut acc = RowAcc::default();
        assert!(eval.row(7, 6, &mut acc));
        assert!(!eval.row(9, 50, &mut acc));
        assert!(eval.row(3, 10, &mut acc));
        assert_eq!(acc.matched, 2);
        assert_eq!(acc.examined, 3);
        assert_eq!(acc.agg, Some(7));
        // Fingerprint ignores the unprojected C2: same C1, any C2.
        let fp1 = row_fingerprint(&[Col::C1], 7, 6);
        let fp2 = row_fingerprint(&[Col::C1], 7, 999);
        assert_eq!(fp1, fp2);
        let mut other = RowAcc::default();
        let e2 = RowEval::new(
            Predicate::c2_between(5, 10),
            &Projection::Cols(vec![Col::C1]),
            Aggregate::Max(Col::C1),
        );
        e2.row(3, 10, &mut other);
        e2.row(7, 6, &mut other);
        // Order independence.
        assert_eq!(
            acc.fingerprint,
            other.fingerprint.wrapping_add(fp1).wrapping_sub(fp1)
        );
    }

    #[test]
    fn count_aggregate_leaves_value_none() {
        let eval = RowEval::new(Predicate::True, &Projection::All, Aggregate::Count);
        let mut acc = RowAcc::default();
        eval.row(1, 2, &mut acc);
        eval.row(3, 4, &mut acc);
        assert_eq!(acc.agg, None);
        assert_eq!(acc.matched, 2);
    }

    #[test]
    fn oracle_agrees_with_scan_page_math() {
        let t = table(5_000, u32::MAX - 1, 9);
        let q = QuerySpec::range_max(&t, None, 1 << 30, 3 << 30);
        let acc = oracle(&q);
        assert_eq!(acc.agg, t.data().naive_max_c1(1 << 30, 3 << 30));
        assert_eq!(acc.matched, t.data().count_matching(1 << 30, 3 << 30));
        assert_eq!(acc.examined, 5_000);
    }

    #[test]
    fn oracle_join_counts_key_equal_pairs() {
        let left = table(2_000, 500, 3);
        let right = table(1_500, 500, 4);
        let q = QuerySpec::scan(&left).join(JoinClause {
            right: &right,
            right_index: None,
            spill: None,
        });
        let acc = oracle(&q);
        // Brute-force pair count.
        let mut pairs = 0u64;
        let mut best: Option<u32> = None;
        for l in 0..left.data().rows() {
            let (_, lc2) = left.row(l);
            for r in 0..right.data().rows() {
                let (rc1, rc2) = right.row(r);
                if lc2 == rc2 {
                    pairs += 1;
                    best = Some(best.map_or(rc1, |b| b.max(rc1)));
                }
            }
        }
        assert!(pairs > 0, "key space of 500 must collide");
        assert_eq!(acc.matched, pairs);
        assert_eq!(acc.agg, best);
    }

    #[test]
    fn builder_composes() {
        let t = table(1_000, 100, 5);
        let q = QuerySpec::scan(&t)
            .filter(Predicate::c2_between(10, 90))
            .filter(Predicate::Cmp {
                col: Col::C1,
                op: CmpOp::Ge,
                value: 1,
            })
            .project(vec![Col::C2])
            .aggregate(Aggregate::Count);
        assert_eq!(q.predicate.terms(), 2);
        assert_eq!(q.predicate.sarg(), (10, 90));
        let acc = oracle(&q);
        assert!(acc.matched <= 1_000);
        assert_eq!(acc.agg, None);
    }
}
