//! Index scan (IS) and parallel index scan (PIS), with per-worker
//! asynchronous prefetching.
//!
//! Mirrors the paper's Fig. 3, §2 and §3.3: one worker traverses the index
//! root→leaf to find the qualifying leaf range; leaf pages are then consumed
//! one at a time by the worker pool; for every `(key, row_id)` tuple the
//! worker fetches the row's table page through the buffer pool. Because each
//! worker's inter-request gap is far below device latency, the observed
//! device queue depth equals the worker count — the property the QDTT model
//! prices.
//!
//! Prefetching (§3.3): each of the M workers keeps up to `n` asynchronous
//! table-page reads outstanding, but only for pages referenced by its
//! *current* leaf page (the paper's simplification), so the expected peak
//! queue depth is `M·n` and tails off near leaf boundaries.
//!
//! The pushed-down [`RowEval`] supplies the index window: the scan covers
//! the predicate's [`sarg`](crate::query::Predicate::sarg) range on `C2`
//! and re-checks the full tree on each fetched row (the residual check is
//! free for a pure BETWEEN — the sarg *is* the predicate).
//!
//! The scan is a [`QueryDriver`] (see `driver.rs`): the root-to-leaf
//! traversal, formerly a blocking loop, is itself a small state machine so
//! the whole operator can share a context with other queries.

use crate::cpu::TaskId;
use crate::driver::{QueryAnswer, QueryDriver};
use crate::engine::{io_failure, Event, ExecError, RetryPolicy, SimContext};
use crate::query::{RowAcc, RowEval};
use pioqo_bufpool::Access;
use pioqo_device::IoStatus;
use pioqo_storage::{BTreeIndex, HeapTable, LeafRange};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index-scan configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IsConfig {
    /// Parallel degree (1 = the non-parallel IS).
    pub workers: u32,
    /// Per-worker asynchronous prefetch depth over the current leaf's table
    /// pages (0 disables prefetching — the paper's baseline PIS).
    pub prefetch_depth: u32,
    /// Retry/timeout policy for the scan's reads (default: no retries).
    pub retry: RetryPolicy,
}

impl Default for IsConfig {
    fn default() -> Self {
        IsConfig {
            workers: 1,
            prefetch_depth: 0,
            retry: RetryPolicy::default(),
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum WState {
    Startup,
    WaitLeaf,
    DecodeLeaf,
    WaitRow,
    ComputeRow,
    Done,
}

struct Worker {
    state: WState,
    /// Index-local leaf currently owned.
    leaf: u64,
    /// Chunk of the leaf owned (0-based; leaves are split into chunks when
    /// the qualifying leaf range is smaller than the worker pool).
    chunk: u64,
    /// Qualifying row ids of the current leaf, in key order.
    rids: Vec<u64>,
    /// Next entry to process.
    pos: usize,
    /// Next entry to prefetch.
    pf_pos: usize,
    /// Prefetch reads in flight for this worker.
    outstanding_pf: u32,
}

/// Root-to-leaf traversal progress (phase 0, single worker, §2).
struct Traverse {
    path: Vec<u64>,
    idx: usize,
    wait_io: Option<u64>,
    wait_cpu: Option<TaskId>,
}

enum Phase {
    Traverse,
    Scan,
}

/// The (parallel) index-scan state machine. See the module docs.
pub struct IsDriver<'q> {
    cfg: IsConfig,
    table: &'q HeapTable,
    index: &'q BTreeIndex,
    eval: RowEval,
    low: u32,
    high: u32,
    range: Option<LeafRange>,
    phase: Phase,
    trav: Traverse,
    workers: Vec<Worker>,
    chunks_per_leaf: u64,
    total_units: u64,
    unit_cursor: u64,
    /// io id -> workers blocked on that page.
    waiters: BTreeMap<u64, Vec<usize>>,
    /// io id -> workers holding prefetch credit on it.
    pf_credit: BTreeMap<u64, Vec<usize>>,
    task_owner: BTreeMap<TaskId, usize>,
    acc: RowAcc,
    op_track: u32,
    finished: bool,
}

impl<'q> IsDriver<'q> {
    /// A driver evaluating `eval` with a (parallel) index scan over the
    /// `C2` B+-tree: the index covers the predicate's sarg window, the full
    /// tree is applied as a residual on each fetched row.
    pub fn new(
        cfg: IsConfig,
        table: &'q HeapTable,
        index: &'q BTreeIndex,
        eval: RowEval,
    ) -> IsDriver<'q> {
        assert!(cfg.workers >= 1);
        let (low, high) = eval.sarg();
        IsDriver {
            cfg,
            table,
            index,
            eval,
            low,
            high,
            range: None,
            phase: Phase::Traverse,
            trav: Traverse {
                path: Vec::new(),
                idx: 0,
                wait_io: None,
                wait_cpu: None,
            },
            workers: Vec::new(),
            chunks_per_leaf: 1,
            total_units: 0,
            unit_cursor: 0,
            waiters: BTreeMap::new(),
            pf_credit: BTreeMap::new(),
            task_owner: BTreeMap::new(),
            acc: RowAcc::default(),
            op_track: 0,
            finished: false,
        }
    }

    /// Device page of the table page holding `rid`.
    fn dp_of_rid(&self, rid: u64) -> u64 {
        self.table.device_page(self.table.spec().page_of_row(rid))
    }

    /// Push the traversal as far as it can go without waiting: pin the next
    /// path page (issuing a read on a miss) or, past the last page, switch
    /// to the scan phase.
    fn advance_traverse(&mut self, ctx: &mut SimContext<'_>) {
        if self.trav.idx >= self.trav.path.len() {
            ctx.trace_span_end(self.op_track, "is_traverse");
            match self.range {
                None => {
                    // Nothing qualifies; the traversal cost is the whole
                    // runtime.
                    self.finished = true;
                }
                Some(_) => self.enter_scan(ctx),
            }
            return;
        }
        let dp = self.trav.path[self.trav.idx];
        match ctx.pool.request(dp) {
            Access::Hit => {
                let work = ctx.costs().leaf_decode_us;
                self.trav.wait_cpu = Some(ctx.submit_cpu(work));
            }
            Access::Miss => {
                self.trav.wait_io = Some(ctx.read_page(dp));
            }
        }
    }

    /// Start phase 1: workers drain the leaf range.
    fn enter_scan(&mut self, ctx: &mut SimContext<'_>) {
        let range = self.range.expect("scan phase requires a range");
        ctx.trace_span_begin(self.op_track, "is_scan");
        self.phase = Phase::Scan;
        self.workers = (0..self.cfg.workers)
            .map(|_| Worker {
                state: WState::Startup,
                leaf: 0,
                chunk: 0,
                rids: Vec::new(),
                pos: 0,
                pf_pos: 0,
                outstanding_pf: 0,
            })
            .collect();
        // Work units: when fewer qualifying leaves than workers, each leaf
        // is split into chunks so every worker stays busy (very selective
        // queries otherwise idle most of the pool — §2 notes the queue
        // depth only reaches n when enough leaf pages qualify).
        let n_range_leaves = range.last_leaf - range.first_leaf + 1;
        self.chunks_per_leaf =
            ((self.cfg.workers as u64 * 2).div_ceil(n_range_leaves)).clamp(1, 16);
        self.total_units = n_range_leaves * self.chunks_per_leaf;
        self.unit_cursor = 0;
        for w in 0..self.workers.len() {
            let startup = if self.cfg.workers > 1 {
                ctx.costs().worker_startup_us
            } else {
                0.0
            };
            let t = ctx.submit_cpu(startup);
            self.task_owner.insert(t, w);
        }
    }

    fn top_up_prefetch(&mut self, ctx: &mut SimContext<'_>, w: usize) {
        if self.cfg.prefetch_depth == 0 {
            return;
        }
        if self.workers[w].pf_pos < self.workers[w].pos {
            self.workers[w].pf_pos = self.workers[w].pos;
        }
        while self.workers[w].outstanding_pf < self.cfg.prefetch_depth
            && self.workers[w].pf_pos < self.workers[w].rids.len()
        {
            let rid = self.workers[w].rids[self.workers[w].pf_pos];
            self.workers[w].pf_pos += 1;
            let dp = self.dp_of_rid(rid);
            if ctx.pool.contains(dp) {
                continue;
            }
            let io = ctx.read_page(dp);
            self.pf_credit.entry(io).or_default().push(w);
            self.workers[w].outstanding_pf += 1;
        }
    }

    fn claim_leaf(&mut self, ctx: &mut SimContext<'_>, w: usize) {
        if self.unit_cursor >= self.total_units {
            self.workers[w].state = WState::Done;
            return;
        }
        let range = self.range.expect("scan phase requires a range");
        let unit = self.unit_cursor;
        self.unit_cursor += 1;
        self.workers[w].leaf = range.first_leaf + unit / self.chunks_per_leaf;
        self.workers[w].chunk = unit % self.chunks_per_leaf;
        let dp = self.index.device_page_of_leaf(self.workers[w].leaf);
        match ctx.pool.request(dp) {
            Access::Hit => self.start_decode(ctx, w),
            Access::Miss => {
                let io = ctx.read_page(dp);
                self.waiters.entry(io).or_default().push(w);
                self.workers[w].state = WState::WaitLeaf;
            }
        }
    }

    fn next_entry(&mut self, ctx: &mut SimContext<'_>, w: usize) {
        if self.workers[w].pos >= self.workers[w].rids.len() {
            // Current leaf exhausted: move to the next one. The decode
            // completion (or retirement) continues the cycle.
            self.claim_leaf(ctx, w);
            return;
        }
        self.top_up_prefetch(ctx, w);
        let rid = self.workers[w].rids[self.workers[w].pos];
        let dp = self.dp_of_rid(rid);
        match ctx.pool.request(dp) {
            Access::Hit => {
                let work = ctx.costs().row_lookup_us;
                let t = ctx.submit_cpu(work);
                self.task_owner.insert(t, w);
                self.workers[w].state = WState::ComputeRow;
            }
            Access::Miss => {
                let io = ctx.read_page(dp);
                self.waiters.entry(io).or_default().push(w);
                self.workers[w].state = WState::WaitRow;
            }
        }
    }

    fn start_decode(&mut self, ctx: &mut SimContext<'_>, w: usize) {
        let leaf = self.workers[w].leaf;
        let r = self.index.leaf_entry_range(leaf);
        let n = (r.end - r.start) as f64;
        // Chunked leaves share the decode work across their owners.
        let work = (ctx.costs().leaf_decode_us + n * ctx.costs().entry_decode_us)
            / self.chunks_per_leaf as f64;
        let t = ctx.submit_cpu(work);
        self.task_owner.insert(t, w);
        self.workers[w].state = WState::DecodeLeaf;
    }

    fn on_scan_page(&mut self, ctx: &mut SimContext<'_>, io: u64) -> Result<(), ExecError> {
        // Prefetch credit back to issuing workers.
        if let Some(ws) = self.pf_credit.remove(&io) {
            for w in ws {
                self.workers[w].outstanding_pf -= 1;
                if !matches!(self.workers[w].state, WState::Done) {
                    self.top_up_prefetch(ctx, w);
                }
            }
        }
        // Wake workers blocked on this page.
        if let Some(ws) = self.waiters.remove(&io) {
            for w in ws {
                match self.workers[w].state {
                    WState::WaitLeaf => {
                        let dp = self.index.device_page_of_leaf(self.workers[w].leaf);
                        match ctx.pool.request(dp) {
                            Access::Hit => self.start_decode(ctx, w),
                            Access::Miss => {
                                let io2 = ctx.read_page(dp);
                                self.waiters.entry(io2).or_default().push(w);
                            }
                        }
                    }
                    WState::WaitRow => {
                        let rid = self.workers[w].rids[self.workers[w].pos];
                        let dp = self.dp_of_rid(rid);
                        match ctx.pool.request(dp) {
                            Access::Hit => {
                                let work = ctx.costs().row_lookup_us;
                                let t = ctx.submit_cpu(work);
                                self.task_owner.insert(t, w);
                                self.workers[w].state = WState::ComputeRow;
                            }
                            Access::Miss => {
                                let io2 = ctx.read_page(dp);
                                self.waiters.entry(io2).or_default().push(w);
                            }
                        }
                    }
                    _ => {
                        return Err(ExecError::Internal {
                            detail: "waiter in unexpected state",
                        })
                    }
                }
            }
        }
        Ok(())
    }

    fn on_scan_cpu(&mut self, ctx: &mut SimContext<'_>, w: usize) -> Result<(), ExecError> {
        match self.workers[w].state {
            WState::Startup => self.claim_leaf(ctx, w),
            WState::DecodeLeaf => {
                // Leaf decoded: collect this chunk's qualifying rids.
                let range = self.range.expect("scan phase requires a range");
                let leaf = self.workers[w].leaf;
                ctx.pool.unpin(self.index.device_page_of_leaf(leaf))?;
                let entry_range = self.index.leaf_entry_range(leaf);
                let from = entry_range.start.max(range.first_entry);
                let to = entry_range.end.min(range.end_entry);
                let span = to.saturating_sub(from);
                let chunk_sz = span.div_ceil(self.chunks_per_leaf);
                let cfrom = (from + self.workers[w].chunk * chunk_sz).min(to);
                let cto = (cfrom + chunk_sz).min(to);
                self.workers[w].rids = (cfrom..cto).map(|i| self.index.entry(i).1).collect();
                self.workers[w].pos = 0;
                self.workers[w].pf_pos = 0;
                self.next_entry(ctx, w);
            }
            WState::ComputeRow => {
                let rid = self.workers[w].rids[self.workers[w].pos];
                let (c1, c2) = self.table.row(rid);
                debug_assert!(c2 >= self.low && c2 <= self.high);
                // Residual check: the sarg cover guarantees the C2 window,
                // the full tree may reject on other terms.
                self.eval.row(c1, c2, &mut self.acc);
                ctx.pool.unpin(self.dp_of_rid(rid))?;
                self.workers[w].pos += 1;
                self.next_entry(ctx, w);
            }
            _ => {
                return Err(ExecError::Internal {
                    detail: "cpu completion in unexpected state",
                })
            }
        }
        Ok(())
    }

    fn maybe_finish(&mut self, ctx: &mut SimContext<'_>) {
        if !self.finished
            && matches!(self.phase, Phase::Scan)
            && self.workers.iter().all(|w| matches!(w.state, WState::Done))
        {
            ctx.trace_span_end(self.op_track, "is_scan");
            self.finished = true;
        }
    }
}

impl QueryDriver for IsDriver<'_> {
    fn operator(&self) -> &'static str {
        "is"
    }

    fn start(&mut self, ctx: &mut SimContext<'_>) -> Result<(), ExecError> {
        self.op_track = ctx.trace_track("is");
        ctx.trace_span_begin(self.op_track, "is_traverse");
        self.range = if self.low <= self.high {
            self.index.range(self.low, self.high)
        } else {
            None // inverted sarg: the predicate matches nothing
        };
        let probe_leaf = self.range.map_or(0, |r| r.first_leaf);
        self.trav.path = self.index.path_to_leaf(probe_leaf);
        self.advance_traverse(ctx);
        Ok(())
    }

    fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: &Event) -> Result<(), ExecError> {
        match self.phase {
            Phase::Traverse => match *ev {
                Event::IoPage {
                    io,
                    device_page,
                    status,
                    attempts,
                } if self.trav.wait_io == Some(io) => {
                    if status == IoStatus::Error {
                        return Err(io_failure("is", device_page, attempts));
                    }
                    ctx.pool.admit_prefetched(device_page)?;
                    self.trav.wait_io = None;
                    self.advance_traverse(ctx);
                }
                Event::Cpu(task) if self.trav.wait_cpu == Some(task) => {
                    ctx.pool.unpin(self.trav.path[self.trav.idx])?;
                    self.trav.wait_cpu = None;
                    self.trav.idx += 1;
                    self.advance_traverse(ctx);
                }
                _ => {} // another query's event
            },
            Phase::Scan => match *ev {
                Event::IoPage {
                    io,
                    device_page,
                    status,
                    attempts,
                } => {
                    if !self.pf_credit.contains_key(&io) && !self.waiters.contains_key(&io) {
                        return Ok(()); // not a read this driver issued
                    }
                    if status == IoStatus::Error {
                        return Err(io_failure("is", device_page, attempts));
                    }
                    ctx.pool.admit_prefetched(device_page)?;
                    self.on_scan_page(ctx, io)?;
                }
                Event::Cpu(task) => {
                    let Some(w) = self.task_owner.remove(&task) else {
                        return Ok(()); // another query's compute
                    };
                    self.on_scan_cpu(ctx, w)?;
                }
                // Block reads are never ours (the index scan issues only
                // page reads); writes belong to the WAL / flusher machinery;
                // timers belong to the session layer.
                Event::IoBlock { .. } | Event::IoWrite { .. } | Event::Timer { .. } => {}
            },
        }
        self.maybe_finish(ctx);
        Ok(())
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn answer(&self) -> QueryAnswer {
        QueryAnswer::from_acc(&self.acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuConfig;
    use crate::engine::CpuCosts;
    use crate::execute::{execute, PlanSpec};
    use crate::metrics::ScanMetrics;
    use crate::query::{oracle, QuerySpec};
    use pioqo_bufpool::BufferPool;
    use pioqo_device::presets::{consumer_pcie_ssd, hdd_7200};
    use pioqo_storage::{range_for_selectivity, TableSpec, Tablespace};

    struct Fixture {
        table: HeapTable,
        index: BTreeIndex,
        capacity: u64,
    }

    fn fixture(rows: u64, rpp: u32) -> Fixture {
        let spec = TableSpec::paper_table(rpp, rows, 55);
        let mut ts = Tablespace::new(4 * spec.n_pages() + 1000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build(
            "c2_idx",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("fits");
        let capacity = ts.capacity();
        Fixture {
            table,
            index,
            capacity,
        }
    }

    fn scan(fx: &Fixture, sel: f64, cfg: &IsConfig, ssd: bool, pool_frames: usize) -> ScanMetrics {
        let mut pool = BufferPool::new(pool_frames);
        let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
        let q = QuerySpec::range_max(&fx.table, Some(&fx.index), low, high)
            .with_plan(PlanSpec::Is(cfg.clone()));
        if ssd {
            let mut dev = consumer_pcie_ssd(fx.capacity, 13);
            let mut ctx = SimContext::new(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
            );
            execute(&mut ctx, &q).expect("scan runs")
        } else {
            let mut dev = hdd_7200(fx.capacity, 13);
            let mut ctx = SimContext::new(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
            );
            execute(&mut ctx, &q).expect("scan runs")
        }
    }

    #[test]
    fn result_matches_oracle() {
        let fx = fixture(20_000, 33);
        for sel in [0.0, 0.003, 0.05, 0.4] {
            let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
            let m = scan(&fx, sel, &IsConfig::default(), true, 4096);
            assert_eq!(
                m.max_c1,
                fx.table.data().naive_max_c1(low, high),
                "sel={sel}"
            );
            assert_eq!(m.rows_matched, fx.table.data().count_matching(low, high));
            let acc = oracle(&QuerySpec::range_max(&fx.table, None, low, high));
            assert_eq!(m.fingerprint, acc.fingerprint, "sel={sel}");
        }
    }

    #[test]
    fn all_configs_agree_on_answer() {
        let fx = fixture(20_000, 33);
        let base = scan(&fx, 0.05, &IsConfig::default(), true, 4096);
        for (workers, pf) in [(4u32, 0u32), (32, 0), (1, 8), (4, 8)] {
            let m = scan(
                &fx,
                0.05,
                &IsConfig {
                    workers,
                    prefetch_depth: pf,
                    ..IsConfig::default()
                },
                true,
                4096,
            );
            assert_eq!(m.max_c1, base.max_c1, "w={workers} pf={pf}");
            assert_eq!(m.rows_matched, base.rows_matched);
            assert_eq!(m.fingerprint, base.fingerprint, "w={workers} pf={pf}");
        }
    }

    #[test]
    fn residual_predicate_filters_fetched_rows() {
        use crate::query::{CmpOp, Col, Predicate};
        let fx = fixture(20_000, 33);
        let (low, high) = range_for_selectivity(0.1, u32::MAX - 1);
        // Index covers the C2 window; the C1 term is a residual that
        // rejects roughly half the fetched rows.
        let q = QuerySpec::range_max(&fx.table, Some(&fx.index), low, high)
            .filter(Predicate::Cmp {
                col: Col::C1,
                op: CmpOp::Ge,
                value: u32::MAX / 2,
            })
            .with_plan(PlanSpec::Is(IsConfig::default()));
        let mut dev = consumer_pcie_ssd(fx.capacity, 13);
        let mut pool = BufferPool::new(4096);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let m = execute(&mut ctx, &q).expect("scan runs");
        let acc = oracle(&q);
        assert_eq!(m.max_c1, acc.agg);
        assert_eq!(m.rows_matched, acc.matched);
        assert_eq!(m.fingerprint, acc.fingerprint);
        // examined counts every index-fetched row; matched only residual
        // survivors.
        assert_eq!(
            m.rows_examined,
            fx.table.data().count_matching(low, high),
            "examined = rows in the sarg cover"
        );
        assert!(m.rows_matched < m.rows_examined);
        assert!(m.rows_matched > 0);
    }

    #[test]
    fn queue_depth_tracks_worker_count() {
        // §2: "the I/O pattern of PIS with parallel degree n is the parallel
        // random I/O with constant queue depth of n."
        let fx = fixture(60_000, 33);
        let m8 = scan(
            &fx,
            0.08,
            &IsConfig {
                workers: 8,
                prefetch_depth: 0,
                ..IsConfig::default()
            },
            true,
            8192,
        );
        assert!(
            (4.0..=9.0).contains(&m8.io.mean_queue_depth),
            "PIS8 mean queue depth should be near 8: {}",
            m8.io.mean_queue_depth
        );
        assert!(m8.io.peak_queue_depth <= 10.0);
    }

    #[test]
    fn parallelism_speeds_up_index_scan_on_ssd() {
        let fx = fixture(60_000, 33);
        let m1 = scan(&fx, 0.05, &IsConfig::default(), true, 8192);
        let m16 = scan(
            &fx,
            0.05,
            &IsConfig {
                workers: 16,
                prefetch_depth: 0,
                ..IsConfig::default()
            },
            true,
            8192,
        );
        let speedup = m1.runtime.as_secs_f64() / m16.runtime.as_secs_f64();
        assert!(speedup > 6.0, "PIS16 on SSD should fly: {speedup}");
    }

    #[test]
    fn parallelism_helps_only_modestly_on_hdd() {
        // Enough matching rows that the leaf range exceeds the worker
        // count (PIS parallelism is per leaf page, Fig. 3).
        let fx = fixture(60_000, 33);
        let m1 = scan(&fx, 0.2, &IsConfig::default(), false, 8192);
        let m32 = scan(
            &fx,
            0.2,
            &IsConfig {
                workers: 32,
                prefetch_depth: 0,
                ..IsConfig::default()
            },
            false,
            8192,
        );
        let speedup = m1.runtime.as_secs_f64() / m32.runtime.as_secs_f64();
        // Paper: ~2.4-2.5x on their spindle; our seek model gives a bit
        // more (the band is a small slice of the device), but it must stay
        // an order of magnitude below the SSD's scaling.
        assert!(
            (1.5..=10.0).contains(&speedup),
            "HDD PIS speedup out of range: {speedup}"
        );
    }

    #[test]
    fn prefetching_raises_queue_depth_and_speed() {
        let fx = fixture(60_000, 33);
        let plain = scan(
            &fx,
            0.05,
            &IsConfig {
                workers: 2,
                prefetch_depth: 0,
                ..IsConfig::default()
            },
            true,
            8192,
        );
        let pf = scan(
            &fx,
            0.05,
            &IsConfig {
                workers: 2,
                prefetch_depth: 8,
                ..IsConfig::default()
            },
            true,
            8192,
        );
        assert!(
            pf.io.mean_queue_depth > plain.io.mean_queue_depth * 2.0,
            "prefetch should deepen the queue: {} vs {}",
            plain.io.mean_queue_depth,
            pf.io.mean_queue_depth
        );
        assert!(
            pf.runtime < plain.runtime,
            "prefetch should speed up the scan: {} vs {}",
            plain.runtime,
            pf.runtime
        );
    }

    #[test]
    fn small_pool_causes_refetches() {
        let fx = fixture(40_000, 33);
        // High selectivity + tiny pool: pages re-fetched (§2).
        let m = scan(&fx, 0.6, &IsConfig::default(), true, 64);
        assert!(
            m.pool.refetches > 0,
            "tiny pool at high selectivity must refetch"
        );
        assert!(m.io.pages_read > fx.table.n_pages());
    }

    #[test]
    fn empty_result_still_traverses_index() {
        let fx = fixture(10_000, 33);
        let m = scan(&fx, 0.0, &IsConfig::default(), true, 1024);
        assert_eq!(m.max_c1, None);
        assert_eq!(m.rows_matched, 0);
        assert!(m.io.io_ops >= 1, "root path should be read");
    }

    #[test]
    fn io_error_surfaces() {
        let fx = fixture(5_000, 33);
        let dev = consumer_pcie_ssd(fx.capacity, 3);
        let mut dev = pioqo_device::Faulty::new(dev, pioqo_device::FaultPlan::EveryNth(4));
        let mut pool = BufferPool::new(1024);
        let (low, high) = range_for_selectivity(0.2, u32::MAX - 1);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let r = execute(
            &mut ctx,
            &QuerySpec::range_max(&fx.table, Some(&fx.index), low, high)
                .with_plan(PlanSpec::Is(IsConfig::default())),
        );
        assert!(matches!(r, Err(ExecError::Io { operator: "is", .. })));
    }
}
