//! Index scan (IS) and parallel index scan (PIS), with per-worker
//! asynchronous prefetching.
//!
//! Mirrors the paper's Fig. 3, §2 and §3.3: one worker traverses the index
//! root→leaf to find the qualifying leaf range; leaf pages are then consumed
//! one at a time by the worker pool; for every `(key, row_id)` tuple the
//! worker fetches the row's table page through the buffer pool. Because each
//! worker's inter-request gap is far below device latency, the observed
//! device queue depth equals the worker count — the property the QDTT model
//! prices.
//!
//! Prefetching (§3.3): each of the M workers keeps up to `n` asynchronous
//! table-page reads outstanding, but only for pages referenced by its
//! *current* leaf page (the paper's simplification), so the expected peak
//! queue depth is `M·n` and tails off near leaf boundaries.

use crate::cpu::{CpuConfig, TaskId};
use crate::engine::{io_failure, CpuCosts, Event, ExecError, RetryPolicy, SimContext};
use crate::fts::merge_max;
use crate::metrics::ScanMetrics;
use pioqo_bufpool::{Access, BufferPool};
use pioqo_device::{DeviceModel, IoStatus};
use pioqo_obs::{NullSink, TraceSink};
use pioqo_storage::{BTreeIndex, HeapTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index-scan configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IsConfig {
    /// Parallel degree (1 = the non-parallel IS).
    pub workers: u32,
    /// Per-worker asynchronous prefetch depth over the current leaf's table
    /// pages (0 disables prefetching — the paper's baseline PIS).
    pub prefetch_depth: u32,
    /// Retry/timeout policy for the scan's reads (default: no retries).
    pub retry: RetryPolicy,
}

impl Default for IsConfig {
    fn default() -> Self {
        IsConfig {
            workers: 1,
            prefetch_depth: 0,
            retry: RetryPolicy::default(),
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum WState {
    Startup,
    WaitLeaf,
    DecodeLeaf,
    WaitRow,
    ComputeRow,
    Done,
}

struct Worker {
    state: WState,
    /// Index-local leaf currently owned.
    leaf: u64,
    /// Chunk of the leaf owned (0-based; leaves are split into chunks when
    /// the qualifying leaf range is smaller than the worker pool).
    chunk: u64,
    /// Qualifying row ids of the current leaf, in key order.
    rids: Vec<u64>,
    /// Next entry to process.
    pos: usize,
    /// Next entry to prefetch.
    pf_pos: usize,
    /// Prefetch reads in flight for this worker.
    outstanding_pf: u32,
}

/// Execute `SELECT MAX(C1) FROM table WHERE C2 BETWEEN low AND high` with a
/// (parallel) index scan over the `C2` B+-tree.
#[allow(clippy::too_many_arguments)] // explicit operator inputs beat an opaque params bag
pub fn run_is(
    device: &mut dyn DeviceModel,
    pool: &mut BufferPool,
    cpu: CpuConfig,
    costs: CpuCosts,
    table: &HeapTable,
    index: &BTreeIndex,
    low: u32,
    high: u32,
    cfg: &IsConfig,
) -> Result<ScanMetrics, ExecError> {
    run_is_traced(
        device,
        pool,
        cpu,
        costs,
        table,
        index,
        low,
        high,
        cfg,
        &mut NullSink,
    )
}

/// [`run_is`] with a trace sink: when the sink is enabled the scan records
/// sim-time I/O, pool and phase-span events into it (and nothing otherwise).
#[allow(clippy::too_many_arguments)] // explicit operator inputs beat an opaque params bag
pub fn run_is_traced(
    device: &mut dyn DeviceModel,
    pool: &mut BufferPool,
    cpu: CpuConfig,
    costs: CpuCosts,
    table: &HeapTable,
    index: &BTreeIndex,
    low: u32,
    high: u32,
    cfg: &IsConfig,
    trace: &mut dyn TraceSink,
) -> Result<ScanMetrics, ExecError> {
    assert!(cfg.workers >= 1);
    let pool_stats_before = pool.stats().clone();
    let mut ctx = SimContext::new(device, pool, cpu, costs);
    ctx.set_retry_policy(cfg.retry.clone());
    ctx.set_trace_sink(trace);
    let op_track = ctx.trace_track("is");

    // ----- Phase 0: root-to-leaf traversal by a single worker (§2) -----
    ctx.trace_span_begin(op_track, "is_traverse");
    let range = index.range(low, high);
    let probe_leaf = range.map_or(0, |r| r.first_leaf);
    for dp in index.path_to_leaf(probe_leaf) {
        sync_fetch(&mut ctx, dp)?;
        let work = ctx.costs().leaf_decode_us;
        sync_cpu(&mut ctx, work);
        ctx.pool.unpin(dp)?;
    }
    ctx.trace_span_end(op_track, "is_traverse");

    let Some(range) = range else {
        // Nothing qualifies; the traversal cost is the whole runtime.
        let runtime = ctx.now() - pioqo_simkit::SimTime::ZERO;
        let io = ctx.io_profile();
        let resilience = ctx.resilience();
        ctx.quiesce();
        let hists = ctx.take_histograms();
        return Ok(ScanMetrics {
            runtime,
            max_c1: None,
            rows_matched: 0,
            rows_examined: 0,
            io,
            pool: pool.stats().diff(&pool_stats_before),
            resilience,
            hists,
        });
    };
    ctx.trace_span_begin(op_track, "is_scan");

    // ----- Phase 1: workers drain the leaf range -----
    let mut workers: Vec<Worker> = (0..cfg.workers)
        .map(|_| Worker {
            state: WState::Startup,
            leaf: 0,
            chunk: 0,
            rids: Vec::new(),
            pos: 0,
            pf_pos: 0,
            outstanding_pf: 0,
        })
        .collect();
    // Work units: when fewer qualifying leaves than workers, each leaf is
    // split into chunks so every worker stays busy (very selective queries
    // otherwise idle most of the pool — §2 notes the queue depth only
    // reaches n when enough leaf pages qualify).
    let n_range_leaves = range.last_leaf - range.first_leaf + 1;
    let chunks_per_leaf = ((cfg.workers as u64 * 2).div_ceil(n_range_leaves)).clamp(1, 16);
    let total_units = n_range_leaves * chunks_per_leaf;
    let mut unit_cursor: u64 = 0;
    let mut waiters: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut pf_credit: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut task_owner: BTreeMap<TaskId, usize> = BTreeMap::new();
    let mut max_c1: Option<u32> = None;
    let mut matched: u64 = 0;

    for (w, _) in workers.iter().enumerate() {
        let startup = if cfg.workers > 1 {
            ctx.costs().worker_startup_us
        } else {
            0.0
        };
        let t = ctx.submit_cpu(startup);
        task_owner.insert(t, w);
    }

    // Device page of the table page holding `rid`.
    let dp_of_rid = |table: &HeapTable, rid: u64| table.device_page(table.spec().page_of_row(rid));

    macro_rules! top_up_prefetch {
        ($w:expr) => {{
            let w: usize = $w;
            if cfg.prefetch_depth > 0 {
                if workers[w].pf_pos < workers[w].pos {
                    workers[w].pf_pos = workers[w].pos;
                }
                while workers[w].outstanding_pf < cfg.prefetch_depth
                    && workers[w].pf_pos < workers[w].rids.len()
                {
                    let rid = workers[w].rids[workers[w].pf_pos];
                    workers[w].pf_pos += 1;
                    let dp = dp_of_rid(table, rid);
                    if ctx.pool.contains(dp) {
                        continue;
                    }
                    let io = ctx.read_page(dp);
                    pf_credit.entry(io).or_default().push(w);
                    workers[w].outstanding_pf += 1;
                }
            }
        }};
    }

    macro_rules! claim_leaf {
        ($w:expr) => {{
            let w: usize = $w;
            if unit_cursor >= total_units {
                workers[w].state = WState::Done;
            } else {
                let unit = unit_cursor;
                unit_cursor += 1;
                workers[w].leaf = range.first_leaf + unit / chunks_per_leaf;
                workers[w].chunk = unit % chunks_per_leaf;
                let dp = index.device_page_of_leaf(workers[w].leaf);
                match ctx.pool.request(dp) {
                    Access::Hit => {
                        start_decode(
                            &mut ctx,
                            index,
                            &mut workers,
                            w,
                            chunks_per_leaf,
                            &mut task_owner,
                        );
                    }
                    Access::Miss => {
                        let io = ctx.read_page(dp);
                        waiters.entry(io).or_default().push(w);
                        workers[w].state = WState::WaitLeaf;
                    }
                }
            }
        }};
    }

    macro_rules! next_entry {
        ($w:expr) => {{
            let w: usize = $w;
            if workers[w].pos >= workers[w].rids.len() {
                // Current leaf exhausted: move to the next one. The decode
                // completion (or retirement) continues the cycle.
                claim_leaf!(w);
            } else {
                top_up_prefetch!(w);
                let rid = workers[w].rids[workers[w].pos];
                let dp = dp_of_rid(table, rid);
                match ctx.pool.request(dp) {
                    Access::Hit => {
                        let work = ctx.costs().row_lookup_us;
                        let t = ctx.submit_cpu(work);
                        task_owner.insert(t, w);
                        workers[w].state = WState::ComputeRow;
                    }
                    Access::Miss => {
                        let io = ctx.read_page(dp);
                        waiters.entry(io).or_default().push(w);
                        workers[w].state = WState::WaitRow;
                    }
                }
            }
        }};
    }

    let mut events: Vec<Event> = Vec::new();
    while workers.iter().any(|w| !matches!(w.state, WState::Done)) {
        events.clear();
        let progressed = ctx.step(&mut events);
        assert!(progressed, "index scan deadlocked with workers pending");
        for e in std::mem::take(&mut events) {
            match e {
                Event::IoPage {
                    io,
                    device_page,
                    status,
                    attempts,
                } => {
                    if status == IoStatus::Error {
                        return Err(io_failure("is", device_page, attempts));
                    }
                    ctx.pool.admit_prefetched(device_page)?;
                    // Prefetch credit back to issuing workers.
                    if let Some(ws) = pf_credit.remove(&io) {
                        for w in ws {
                            workers[w].outstanding_pf -= 1;
                            if !matches!(workers[w].state, WState::Done) {
                                top_up_prefetch!(w);
                            }
                        }
                    }
                    // Wake workers blocked on this page.
                    if let Some(ws) = waiters.remove(&io) {
                        for w in ws {
                            match workers[w].state {
                                WState::WaitLeaf => {
                                    let dp = index.device_page_of_leaf(workers[w].leaf);
                                    match ctx.pool.request(dp) {
                                        Access::Hit => start_decode(
                                            &mut ctx,
                                            index,
                                            &mut workers,
                                            w,
                                            chunks_per_leaf,
                                            &mut task_owner,
                                        ),
                                        Access::Miss => {
                                            let io2 = ctx.read_page(dp);
                                            waiters.entry(io2).or_default().push(w);
                                        }
                                    }
                                }
                                WState::WaitRow => {
                                    let rid = workers[w].rids[workers[w].pos];
                                    let dp = dp_of_rid(table, rid);
                                    match ctx.pool.request(dp) {
                                        Access::Hit => {
                                            let work = ctx.costs().row_lookup_us;
                                            let t = ctx.submit_cpu(work);
                                            task_owner.insert(t, w);
                                            workers[w].state = WState::ComputeRow;
                                        }
                                        Access::Miss => {
                                            let io2 = ctx.read_page(dp);
                                            waiters.entry(io2).or_default().push(w);
                                        }
                                    }
                                }
                                _ => {
                                    return Err(ExecError::Internal {
                                        detail: "waiter in unexpected state",
                                    })
                                }
                            }
                        }
                    }
                }
                Event::IoBlock { .. } => {
                    return Err(ExecError::Internal {
                        detail: "index scan never issues block reads",
                    })
                }
                Event::Cpu(task) => {
                    let w = task_owner.remove(&task).expect("task has an owner");
                    match workers[w].state {
                        WState::Startup => claim_leaf!(w),
                        WState::DecodeLeaf => {
                            // Leaf decoded: collect this chunk's qualifying
                            // rids.
                            let leaf = workers[w].leaf;
                            ctx.pool.unpin(index.device_page_of_leaf(leaf))?;
                            let entry_range = index.leaf_entry_range(leaf);
                            let from = entry_range.start.max(range.first_entry);
                            let to = entry_range.end.min(range.end_entry);
                            let span = to.saturating_sub(from);
                            let chunk_sz = span.div_ceil(chunks_per_leaf);
                            let cfrom = (from + workers[w].chunk * chunk_sz).min(to);
                            let cto = (cfrom + chunk_sz).min(to);
                            workers[w].rids = (cfrom..cto).map(|i| index.entry(i).1).collect();
                            workers[w].pos = 0;
                            workers[w].pf_pos = 0;
                            next_entry!(w);
                        }
                        WState::ComputeRow => {
                            let rid = workers[w].rids[workers[w].pos];
                            let (c1, c2) = table.row(rid);
                            debug_assert!(c2 >= low && c2 <= high);
                            max_c1 = merge_max(max_c1, Some(c1));
                            matched += 1;
                            ctx.pool.unpin(dp_of_rid(table, rid))?;
                            workers[w].pos += 1;
                            next_entry!(w);
                        }
                        _ => {
                            return Err(ExecError::Internal {
                                detail: "cpu completion in unexpected state",
                            })
                        }
                    }
                }
            }
        }
    }

    ctx.trace_span_end(op_track, "is_scan");
    let runtime = ctx.now() - pioqo_simkit::SimTime::ZERO;
    let io = ctx.io_profile();
    let resilience = ctx.resilience();
    ctx.quiesce();
    let hists = ctx.take_histograms();
    Ok(ScanMetrics {
        runtime,
        max_c1,
        rows_matched: matched,
        rows_examined: matched,
        io,
        pool: pool.stats().diff(&pool_stats_before),
        resilience,
        hists,
    })
}

fn start_decode(
    ctx: &mut SimContext<'_>,
    index: &BTreeIndex,
    workers: &mut [Worker],
    w: usize,
    chunks_per_leaf: u64,
    task_owner: &mut BTreeMap<TaskId, usize>,
) {
    let leaf = workers[w].leaf;
    let r = index.leaf_entry_range(leaf);
    let n = (r.end - r.start) as f64;
    // Chunked leaves share the decode work across their owners.
    let work =
        (ctx.costs().leaf_decode_us + n * ctx.costs().entry_decode_us) / chunks_per_leaf as f64;
    let t = ctx.submit_cpu(work);
    task_owner.insert(t, w);
    workers[w].state = WState::DecodeLeaf;
}

/// Synchronously fetch one device page (phase-0 traversal): issue the read
/// if needed and step the context until it is resident and pinned.
fn sync_fetch(ctx: &mut SimContext<'_>, dp: u64) -> Result<(), ExecError> {
    loop {
        match ctx.pool.request(dp) {
            Access::Hit => return Ok(()),
            Access::Miss => {
                let io = ctx.read_page(dp);
                let mut events = Vec::new();
                'wait: loop {
                    events.clear();
                    let progressed = ctx.step(&mut events);
                    assert!(progressed, "traversal deadlocked");
                    for e in &events {
                        match e {
                            Event::IoPage {
                                io: id,
                                device_page,
                                status,
                                attempts,
                            } if *id == io => {
                                if *status == IoStatus::Error {
                                    return Err(io_failure("is", *device_page, *attempts));
                                }
                                ctx.pool.admit_prefetched(*device_page)?;
                                break 'wait;
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }
}

/// Synchronously run a compute task to completion (phase-0 traversal).
fn sync_cpu(ctx: &mut SimContext<'_>, work_us: f64) {
    let task = ctx.submit_cpu(work_us);
    let mut events = Vec::new();
    loop {
        events.clear();
        let progressed = ctx.step(&mut events);
        assert!(progressed, "cpu task never completed");
        if events
            .iter()
            .any(|e| matches!(e, Event::Cpu(t) if *t == task))
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_device::presets::{consumer_pcie_ssd, hdd_7200};
    use pioqo_storage::{range_for_selectivity, TableSpec, Tablespace};

    struct Fixture {
        table: HeapTable,
        index: BTreeIndex,
        capacity: u64,
    }

    fn fixture(rows: u64, rpp: u32) -> Fixture {
        let spec = TableSpec::paper_table(rpp, rows, 55);
        let mut ts = Tablespace::new(4 * spec.n_pages() + 1000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build(
            "c2_idx",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("fits");
        let capacity = ts.capacity();
        Fixture {
            table,
            index,
            capacity,
        }
    }

    fn scan(fx: &Fixture, sel: f64, cfg: &IsConfig, ssd: bool, pool_frames: usize) -> ScanMetrics {
        let mut pool = BufferPool::new(pool_frames);
        let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
        if ssd {
            let mut dev = consumer_pcie_ssd(fx.capacity, 13);
            run_is(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
                &fx.table,
                &fx.index,
                low,
                high,
                cfg,
            )
            .expect("scan runs")
        } else {
            let mut dev = hdd_7200(fx.capacity, 13);
            run_is(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
                &fx.table,
                &fx.index,
                low,
                high,
                cfg,
            )
            .expect("scan runs")
        }
    }

    #[test]
    fn result_matches_oracle() {
        let fx = fixture(20_000, 33);
        for sel in [0.0, 0.003, 0.05, 0.4] {
            let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
            let m = scan(&fx, sel, &IsConfig::default(), true, 4096);
            assert_eq!(
                m.max_c1,
                fx.table.data().naive_max_c1(low, high),
                "sel={sel}"
            );
            assert_eq!(m.rows_matched, fx.table.data().count_matching(low, high));
        }
    }

    #[test]
    fn all_configs_agree_on_answer() {
        let fx = fixture(20_000, 33);
        let base = scan(&fx, 0.05, &IsConfig::default(), true, 4096);
        for (workers, pf) in [(4u32, 0u32), (32, 0), (1, 8), (4, 8)] {
            let m = scan(
                &fx,
                0.05,
                &IsConfig {
                    workers,
                    prefetch_depth: pf,
                    ..IsConfig::default()
                },
                true,
                4096,
            );
            assert_eq!(m.max_c1, base.max_c1, "w={workers} pf={pf}");
            assert_eq!(m.rows_matched, base.rows_matched);
        }
    }

    #[test]
    fn queue_depth_tracks_worker_count() {
        // §2: "the I/O pattern of PIS with parallel degree n is the parallel
        // random I/O with constant queue depth of n."
        let fx = fixture(60_000, 33);
        let m8 = scan(
            &fx,
            0.08,
            &IsConfig {
                workers: 8,
                prefetch_depth: 0,
                ..IsConfig::default()
            },
            true,
            8192,
        );
        assert!(
            (4.0..=9.0).contains(&m8.io.mean_queue_depth),
            "PIS8 mean queue depth should be near 8: {}",
            m8.io.mean_queue_depth
        );
        assert!(m8.io.peak_queue_depth <= 10.0);
    }

    #[test]
    fn parallelism_speeds_up_index_scan_on_ssd() {
        let fx = fixture(60_000, 33);
        let m1 = scan(&fx, 0.05, &IsConfig::default(), true, 8192);
        let m16 = scan(
            &fx,
            0.05,
            &IsConfig {
                workers: 16,
                prefetch_depth: 0,
                ..IsConfig::default()
            },
            true,
            8192,
        );
        let speedup = m1.runtime.as_secs_f64() / m16.runtime.as_secs_f64();
        assert!(speedup > 6.0, "PIS16 on SSD should fly: {speedup}");
    }

    #[test]
    fn parallelism_helps_only_modestly_on_hdd() {
        // Enough matching rows that the leaf range exceeds the worker
        // count (PIS parallelism is per leaf page, Fig. 3).
        let fx = fixture(60_000, 33);
        let m1 = scan(&fx, 0.2, &IsConfig::default(), false, 8192);
        let m32 = scan(
            &fx,
            0.2,
            &IsConfig {
                workers: 32,
                prefetch_depth: 0,
                ..IsConfig::default()
            },
            false,
            8192,
        );
        let speedup = m1.runtime.as_secs_f64() / m32.runtime.as_secs_f64();
        // Paper: ~2.4-2.5x on their spindle; our seek model gives a bit
        // more (the band is a small slice of the device), but it must stay
        // an order of magnitude below the SSD's scaling.
        assert!(
            (1.5..=10.0).contains(&speedup),
            "HDD PIS speedup out of range: {speedup}"
        );
    }

    #[test]
    fn prefetching_raises_queue_depth_and_speed() {
        let fx = fixture(60_000, 33);
        let plain = scan(
            &fx,
            0.05,
            &IsConfig {
                workers: 2,
                prefetch_depth: 0,
                ..IsConfig::default()
            },
            true,
            8192,
        );
        let pf = scan(
            &fx,
            0.05,
            &IsConfig {
                workers: 2,
                prefetch_depth: 8,
                ..IsConfig::default()
            },
            true,
            8192,
        );
        assert!(
            pf.io.mean_queue_depth > plain.io.mean_queue_depth * 2.0,
            "prefetch should deepen the queue: {} vs {}",
            plain.io.mean_queue_depth,
            pf.io.mean_queue_depth
        );
        assert!(
            pf.runtime < plain.runtime,
            "prefetch should speed up the scan: {} vs {}",
            plain.runtime,
            pf.runtime
        );
    }

    #[test]
    fn small_pool_causes_refetches() {
        let fx = fixture(40_000, 33);
        // High selectivity + tiny pool: pages re-fetched (§2).
        let m = scan(&fx, 0.6, &IsConfig::default(), true, 64);
        assert!(
            m.pool.refetches > 0,
            "tiny pool at high selectivity must refetch"
        );
        assert!(m.io.pages_read > fx.table.n_pages());
    }

    #[test]
    fn empty_result_still_traverses_index() {
        let fx = fixture(10_000, 33);
        let m = scan(&fx, 0.0, &IsConfig::default(), true, 1024);
        assert_eq!(m.max_c1, None);
        assert_eq!(m.rows_matched, 0);
        assert!(m.io.io_ops >= 1, "root path should be read");
    }

    #[test]
    fn io_error_surfaces() {
        let fx = fixture(5_000, 33);
        let dev = consumer_pcie_ssd(fx.capacity, 3);
        let mut dev = pioqo_device::Faulty::new(dev, pioqo_device::FaultPlan::EveryNth(4));
        let mut pool = BufferPool::new(1024);
        let (low, high) = range_for_selectivity(0.2, u32::MAX - 1);
        let r = run_is(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
            &fx.table,
            &fx.index,
            low,
            high,
            &IsConfig::default(),
        );
        assert!(matches!(r, Err(ExecError::Io { operator: "is", .. })));
    }
}
