//! Concurrent multi-query execution: closed-loop sessions sharing one
//! simulated machine.
//!
//! The paper's experiments run one query at a time; real servers admit many.
//! [`MultiEngine`] interleaves N *sessions* — each a closed loop of
//! range-MAX queries separated by seeded think time — on **one**
//! [`SimContext`]: one device, one buffer pool, one CPU scheduler.
//!
//! The scheduler is O(1) per event: sessions live in a dense slab keyed by
//! their index, think-time wakeups ride tagged virtual timers through the
//! context's calendar queue (`tag = 1 + session`, so a wakeup routes to
//! its owner without a side table or a scan), and machine events are
//! delivered only to the dense list of queries actually running solo.
//! Queries attached to the shared-scan hub ([`crate::shared::ScanHub`],
//! enabled by [`WorkloadSpec::shared_scans`]) never appear on that list at
//! all: one circular cursor serves every attached consumer, so a
//! 100K-session workload costs one stream of device events rather than
//! 100K per-session broadcasts. Drivers own their I/O handles and compute
//! tasks and ignore the rest (see [`crate::driver`]), so the interleaving
//! is exact and byte-deterministic for a given [`WorkloadSpec`] seed.
//!
//! Plan choice is delegated to an [`AdmissionPlanner`]: the engine tells it
//! how many queries are already running when a new one arrives, and the
//! planner answers with the [`PlanSpec`] to execute — or, under shared
//! scans, with [`SharedChoice::Attach`] to ride the hub's cursor at
//! marginal cost. The trivial [`FixedPlanner`] always picks the same plan;
//! the QDTT-aware planner in the optimizer crate hands out queue-depth
//! leases from the device budget and re-costs every candidate under its
//! lease, charging the shared cursor's lease **once** no matter how many
//! consumers attach.
//!
//! Determinism invariants: per-session randomness comes from
//! `SimRng::derive(spec.seed, session)`, think time advances on virtual
//! [`Event::Timer`]s, and all engine state lives in ordered or dense
//! collections.

use crate::driver::{QueryAnswer, QueryDriver};
use crate::engine::{Event, ExecError, IoProfile, ResilienceStats, SimContext};
use crate::execute::{make_driver, PlanSpec};
use crate::fts::FtsConfig;
use crate::query::{Predicate, QuerySpec};
use crate::shared::{ScanHub, SharedScanStats};
use crate::write::{WriteConfig, WriteStats, WriteSystem};
use pioqo_bufpool::{BufferPool, PoolStats};
use pioqo_device::IoStatus;
use pioqo_obs::{HistSet, Histogram};
use pioqo_simkit::{SimDuration, SimRng, SimTime};
use pioqo_storage::range_for_selectivity;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Plan label recorded for queries served by the shared-scan hub.
const SHARED_LABEL: &str = "FTS+shared";

/// Distribution of the pause between a session's consecutive queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ThinkTime {
    /// The same pause every time.
    Fixed(SimDuration),
    /// Exponentially distributed pause (memoryless arrivals, the classic
    /// closed-loop client model).
    Exponential {
        /// Mean of the distribution.
        mean: SimDuration,
    },
}

impl ThinkTime {
    /// Draw one pause from the session's generator.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            ThinkTime::Fixed(d) => d,
            ThinkTime::Exponential { mean } => {
                // Inverse CDF on (0, 1]: -ln(1-u) is Exp(1).
                let u = rng.unit();
                mean * (-(1.0 - u).ln())
            }
        }
    }
}

/// A multi-session closed-loop workload, fully described (and so fully
/// reproducible: the spec plus the machine is the experiment).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of concurrent closed-loop sessions.
    pub sessions: u32,
    /// Queries each session issues before it stops.
    pub queries_per_session: u32,
    /// Pause between a session's queries (sampled per query).
    pub think: ThinkTime,
    /// Selectivities cycled through by each session (query `i` uses
    /// `selectivities[i % len]`).
    pub selectivities: Vec<f64>,
    /// Master seed; session `s` draws from `SimRng::derive(seed, s)`.
    pub seed: u64,
    /// Stop issuing new queries past this much virtual time (in-flight
    /// queries still finish). `None` means every session runs its full
    /// query count. A horizon makes per-session completion counts diverge,
    /// which is what the fairness metrics are for.
    pub horizon: Option<SimDuration>,
    /// The write workload running beside the scans, if any (populated by
    /// [`MultiEngine::run_with_writes`] so reports stay self-describing).
    pub writes: Option<WriteConfig>,
    /// Route table-scan queries through the cooperative shared-scan hub:
    /// overlapping consumers ride one circular cursor instead of each
    /// issuing their own device stream. Answers are identical either way;
    /// only the simulated machine usage (and the wall-clock cost of the
    /// simulation itself) changes.
    pub shared_scans: bool,
    /// Keep at most this many per-query [`QueryRecord`]s in the report
    /// (`None` = keep all). At 100K sessions the full record vector is the
    /// dominant memory cost; aggregates and histograms always cover every
    /// query regardless of the cap.
    pub record_limit: Option<u64>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            sessions: 4,
            queries_per_session: 4,
            think: ThinkTime::Exponential {
                mean: SimDuration::from_micros_f64(2_000.0),
            },
            selectivities: vec![0.001, 0.01, 0.05],
            seed: 42,
            horizon: None,
            writes: None,
            shared_scans: false,
            record_limit: None,
        }
    }
}

/// What the engine tells the planner about a query asking for admission.
#[derive(Debug, Clone, Copy)]
pub struct QueryAdmission {
    /// The issuing session.
    pub session: u32,
    /// The session-local query index (0-based).
    pub query_index: u32,
    /// Queries of *other* sessions running at admission time (this query
    /// will make it `active + 1`).
    pub active: u32,
    /// The query's predicate selectivity.
    pub selectivity: f64,
    /// Predicate lower bound (inclusive).
    pub low: u32,
    /// Predicate upper bound (inclusive).
    pub high: u32,
}

/// The planner's answer under shared scans: run a plan of your own, or
/// attach to the shared circular cursor at marginal cost.
#[derive(Debug, Clone)]
pub enum SharedChoice {
    /// Execute a dedicated plan (the classic path).
    Solo(PlanSpec),
    /// Attach to the shared-scan hub's cursor (starting it if idle).
    Attach,
}

/// Chooses the physical plan for each admitted query.
///
/// Implementations see the live concurrency level and buffer pool, so they
/// can be as simple as [`FixedPlanner`] or as involved as the optimizer
/// crate's QDTT admission layer (lease out device queue depth, re-cost all
/// candidates under the lease). [`AdmissionPlanner::complete`] is the
/// engine's promise that every admission is paired with exactly one
/// completion — the hook where leases are returned.
pub trait AdmissionPlanner {
    /// Choose the plan for `q`. Called once per query, at admission.
    fn admit(&mut self, q: &QueryAdmission, pool: &BufferPool) -> PlanSpec;

    /// Choose between a dedicated plan and attaching to the shared scan
    /// cursor (`cursor_active` says whether one is already streaming).
    /// Only called when the workload enables shared scans. The default
    /// never attaches.
    fn admit_shared(
        &mut self,
        q: &QueryAdmission,
        pool: &BufferPool,
        cursor_active: bool,
    ) -> SharedChoice {
        let _ = cursor_active;
        SharedChoice::Solo(self.admit(q, pool))
    }

    /// The shared cursor is starting: lease it a queue depth (in block
    /// submissions). Charged once per cursor start, not per consumer.
    fn cursor_start(&mut self, pool: &BufferPool) -> u32 {
        let _ = pool;
        8
    }

    /// The shared cursor went idle; the paired release of
    /// [`cursor_start`](Self::cursor_start).
    fn cursor_stop(&mut self) {}

    /// The query admitted for `session` finished (successfully or not).
    fn complete(&mut self, session: u32) {
        let _ = session;
    }

    /// Background writeback (checkpoint flushing) became active: planners
    /// managing a device budget should carve out a share for it, so
    /// concurrent scans are admitted with less queue depth while the
    /// flusher's writes contend for the device. The default ignores it.
    fn background_acquire(&mut self) {}

    /// Background writeback went idle again; the paired release of
    /// [`background_acquire`](Self::background_acquire).
    fn background_release(&mut self) {}

    /// Instantaneous lease accounting for metrics: `(active_leases,
    /// depth_limit)`. Planners that manage no queue-depth budget report
    /// `(0, 0)` and the engine's admission gauges stay flat at zero.
    fn depth_gauges(&self) -> (u32, u32) {
        (0, 0)
    }
}

/// The null admission policy: every query runs the same plan. Under
/// shared scans, full-table-scan plans attach to the shared cursor.
#[derive(Debug, Clone)]
pub struct FixedPlanner {
    /// The plan to run.
    pub plan: PlanSpec,
}

impl AdmissionPlanner for FixedPlanner {
    fn admit(&mut self, _q: &QueryAdmission, _pool: &BufferPool) -> PlanSpec {
        self.plan.clone()
    }

    fn admit_shared(
        &mut self,
        q: &QueryAdmission,
        pool: &BufferPool,
        _cursor_active: bool,
    ) -> SharedChoice {
        match self.plan {
            PlanSpec::Fts(_) => SharedChoice::Attach,
            _ => SharedChoice::Solo(self.admit(q, pool)),
        }
    }
}

/// Passing `&mut planner` lets the caller keep the planner (and whatever
/// journal it accumulated) after [`MultiEngine::run`] consumes the engine.
impl<P: AdmissionPlanner + ?Sized> AdmissionPlanner for &mut P {
    fn admit(&mut self, q: &QueryAdmission, pool: &BufferPool) -> PlanSpec {
        (**self).admit(q, pool)
    }

    fn admit_shared(
        &mut self,
        q: &QueryAdmission,
        pool: &BufferPool,
        cursor_active: bool,
    ) -> SharedChoice {
        (**self).admit_shared(q, pool, cursor_active)
    }

    fn cursor_start(&mut self, pool: &BufferPool) -> u32 {
        (**self).cursor_start(pool)
    }

    fn cursor_stop(&mut self) {
        (**self).cursor_stop();
    }

    fn complete(&mut self, session: u32) {
        (**self).complete(session);
    }

    fn background_acquire(&mut self) {
        (**self).background_acquire();
    }

    fn background_release(&mut self) {
        (**self).background_release();
    }

    fn depth_gauges(&self) -> (u32, u32) {
        (**self).depth_gauges()
    }
}

/// One completed query, as the workload report records it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The issuing session.
    pub session: u32,
    /// The session-local query index.
    pub query_index: u32,
    /// The predicate selectivity the query ran with.
    pub selectivity: f64,
    /// Label of the plan the planner chose ("FTS", "PIS8+pf4",
    /// "FTS+shared", ...).
    pub plan: String,
    /// The plan's parallel degree.
    pub degree: u32,
    /// Concurrent queries (other sessions) when this one was admitted.
    pub active_at_admit: u32,
    /// Virtual admission time.
    pub submitted: SimTime,
    /// Admission-to-answer virtual latency.
    pub latency: SimDuration,
    /// The query answer.
    pub max_c1: Option<u32>,
    /// Rows matching the predicate.
    pub rows_matched: u64,
}

/// Per-session accounting in the workload report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSummary {
    /// The session.
    pub session: u32,
    /// Queries the session completed.
    pub completed: u32,
    /// Mean query latency, µs.
    pub mean_latency_us: f64,
}

/// Everything a [`MultiEngine`] run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// The spec that produced this report (self-describing exports).
    pub spec: WorkloadSpec,
    /// Completed queries in completion order (capped by
    /// [`WorkloadSpec::record_limit`]).
    pub records: Vec<QueryRecord>,
    /// Per-session accounting.
    pub per_session: Vec<SessionSummary>,
    /// How often each plan label was chosen.
    pub plan_counts: BTreeMap<String, u64>,
    /// Query latencies across all sessions, µs.
    pub query_latency_us: Histogram,
    /// 95th-percentile query latency across all sessions, µs.
    pub p95_latency_us: u64,
    /// 99th-percentile query latency across all sessions, µs.
    pub p99_latency_us: u64,
    /// First admission to last completion, virtual time.
    pub makespan: SimDuration,
    /// Device-level I/O profile over the whole workload.
    pub io: IoProfile,
    /// Buffer-pool counters over the whole workload.
    pub pool: PoolStats,
    /// Fault-handling counters over the whole workload.
    pub resilience: ResilienceStats,
    /// Machine-level histograms (I/O latency, queue depth, page waits).
    pub hists: HistSet,
    /// Shared-scan hub counters (all zero when sharing is off).
    pub shared: SharedScanStats,
    /// Write-path counters, when a write workload ran beside the scans.
    pub writes: Option<WriteStats>,
}

impl WorkloadReport {
    /// Total queries completed across all sessions.
    pub fn total_completed(&self) -> u64 {
        self.per_session.iter().map(|s| s.completed as u64).sum()
    }

    /// Fraction of completed queries served by the shared-scan hub.
    pub fn shared_attach_rate(&self) -> f64 {
        let total = self.total_completed();
        if total == 0 {
            0.0
        } else {
            self.shared.attaches as f64 / total as f64
        }
    }

    /// Max/min completed-query ratio across sessions: 1.0 is perfectly
    /// fair, `f64::INFINITY` means a session starved completely. Only
    /// meaningful for horizon-bounded workloads (without a horizon every
    /// session completes its full count and the ratio is trivially 1).
    pub fn fairness_ratio(&self) -> f64 {
        let min = self.per_session.iter().map(|s| s.completed).min();
        let max = self.per_session.iter().map(|s| s.completed).max();
        match (min, max) {
            (Some(0), Some(0)) | (None, _) | (_, None) => 1.0,
            (Some(0), Some(_)) => f64::INFINITY,
            (Some(min), Some(max)) => max as f64 / min as f64,
        }
    }

    /// The report as pretty JSON (the byte-identity artifact the
    /// determinism tests and CI compare).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// A query running solo (its own driver) on one session.
struct ActiveQuery<'q> {
    driver: Box<dyn QueryDriver + 'q>,
    submitted: SimTime,
    query_index: u32,
    selectivity: f64,
    /// Empty when the record cap was already reached at admission (the
    /// label would never be recorded, so it is never materialized).
    plan_label: String,
    degree: u32,
    active_at_admit: u32,
}

/// A query riding the shared-scan hub on one session.
struct AttachedQuery {
    submitted: SimTime,
    query_index: u32,
    selectivity: f64,
    active_at_admit: u32,
}

enum SessState<'q> {
    /// Waiting on a tagged think timer.
    Thinking,
    /// Running a dedicated driver (on the dense broadcast list).
    Running(ActiveQuery<'q>),
    /// Attached to the shared-scan hub (off the broadcast list).
    Attached(AttachedQuery),
    Finished,
}

struct Sess<'q> {
    rng: SimRng,
    track: u32,
    issued: u32,
    completed: u32,
    latency_sum_us: f64,
    /// Index into the dense running-solo list while `Running`, else
    /// `u32::MAX`.
    run_idx: u32,
    state: SessState<'q>,
}

/// Metadata shared by both completion paths.
struct FinishedMeta {
    submitted: SimTime,
    query_index: u32,
    selectivity: f64,
    /// `None` means the shared-scan label.
    plan: Option<String>,
    degree: u32,
    active_at_admit: u32,
}

/// The mutable run-loop state outside the session slab.
struct RunState {
    records: Vec<QueryRecord>,
    plan_counts: BTreeMap<String, u64>,
    query_latency: Histogram,
    last_complete: SimTime,
    /// Dense list of sessions whose query is running solo: the only
    /// sessions machine events are broadcast to.
    running_solo: Vec<u32>,
    /// Hub consumer slot -> owning session.
    attached_owner: Vec<u32>,
    /// Sessions not yet `Finished` (the loop condition, maintained
    /// incrementally instead of scanning the slab).
    unfinished: u32,
    /// Queries currently in flight (solo + attached).
    active_queries: u32,
    /// Whether the engine believes the shared cursor holds a lease.
    cursor_active: bool,
    /// Reusable plan-label scratch (no per-query allocation).
    label_buf: String,
    /// Reusable shared-completion drain buffer.
    completions_buf: Vec<(u32, QueryAnswer)>,
}

/// The concurrent multi-query engine. See the module docs.
///
/// ```
/// use pioqo_exec::{
///     CpuConfig, CpuCosts, FixedPlanner, MultiEngine, PlanSpec, QuerySpec,
///     SimContext, SortedIsConfig, WorkloadSpec,
/// };
/// use pioqo_bufpool::BufferPool;
/// use pioqo_device::presets::consumer_pcie_ssd;
/// use pioqo_storage::{BTreeIndex, HeapTable, TableSpec, Tablespace};
///
/// let spec = TableSpec::paper_table(33, 20_000, 7);
/// let mut ts = Tablespace::new(4 * spec.n_pages() + 1000);
/// let table = HeapTable::create(spec, &mut ts).unwrap();
/// let index = BTreeIndex::build(
///     "c2_idx", table.data().c2_entries(), table.spec().page_size, &mut ts,
/// ).unwrap();
/// let mut dev = consumer_pcie_ssd(ts.capacity(), 7);
/// let mut pool = BufferPool::new(4096);
/// let mut ctx = SimContext::new(
///     &mut dev, &mut pool, CpuConfig::paper_xeon(), CpuCosts::default(),
/// );
/// let engine = MultiEngine::new(
///     WorkloadSpec { sessions: 2, queries_per_session: 2, ..WorkloadSpec::default() },
///     QuerySpec::range_max(&table, Some(&index), 0, 0),
///     FixedPlanner { plan: PlanSpec::SortedIs(SortedIsConfig::default()) },
/// );
/// let report = engine.run(&mut ctx).unwrap();
/// assert_eq!(report.total_completed(), 4);
/// ```
pub struct MultiEngine<'q, P: AdmissionPlanner> {
    spec: WorkloadSpec,
    base: QuerySpec<'q>,
    planner: P,
}

impl<'q, P: AdmissionPlanner> MultiEngine<'q, P> {
    /// An engine for `spec` over the given base query, with `planner`
    /// choosing each query's plan. Each query runs the base spec with its
    /// own predicate window from the selectivity cycle: a base predicate
    /// that is `True` or a pure `C2 BETWEEN` range is *replaced* by the
    /// per-query window; any richer predicate tree is ANDed with it. The
    /// base's plan field is ignored — the planner decides per query.
    pub fn new(spec: WorkloadSpec, base: QuerySpec<'q>, planner: P) -> MultiEngine<'q, P> {
        assert!(spec.sessions >= 1, "a workload needs at least one session");
        assert!(
            !spec.selectivities.is_empty(),
            "a workload needs at least one selectivity"
        );
        MultiEngine {
            spec,
            base,
            planner,
        }
    }

    /// Run the workload to completion on `ctx` and report.
    ///
    /// Returns `ExecError::Internal` if the event loop stalls with sessions
    /// outstanding (an engine bug, not a caller error), or the underlying
    /// error if any query's own I/O fails.
    pub fn run(self, ctx: &mut SimContext<'_>) -> Result<WorkloadReport, ExecError> {
        self.run_inner(ctx, None)
    }

    /// Run the workload with a [`WriteSystem`] sharing the machine: its
    /// group-commit and writeback I/O goes through the same device queue
    /// the scans use, so checkpoints visibly perturb scan latency — and
    /// the planner's [`AdmissionPlanner::background_acquire`] hook fires
    /// while writeback is in flight, shifting admission decisions.
    ///
    /// Returns [`ExecError::Crashed`] as soon as the device halts (a
    /// [`pioqo_device::Crashable`] plan firing); the write system then
    /// holds the exact pre-crash WAL/media state for
    /// [`crate::recovery::recover`].
    pub fn run_with_writes(
        mut self,
        ctx: &mut SimContext<'_>,
        ws: &mut WriteSystem,
    ) -> Result<WorkloadReport, ExecError> {
        self.spec.writes = Some(ws.config().clone());
        self.run_inner(ctx, Some(ws))
    }

    fn run_inner(
        mut self,
        ctx: &mut SimContext<'_>,
        mut ws: Option<&mut WriteSystem>,
    ) -> Result<WorkloadReport, ExecError> {
        let start = ctx.now();
        let pool_before = ctx.pool.stats().clone();
        let tracing = ctx.trace_enabled();
        let mut sessions: Vec<Sess<'q>> = Vec::with_capacity(self.spec.sessions as usize);
        for s in 0..self.spec.sessions {
            let track = if tracing {
                ctx.trace_track(&format!("session{s}"))
            } else {
                0
            };
            let mut rng = SimRng::derive(self.spec.seed, s as u64);
            // Initial stagger: sessions do not all arrive at t=0. The tag
            // routes the wakeup straight back to this session.
            let delay = self.spec.think.sample(&mut rng);
            ctx.schedule_timer_tagged(delay, 1 + s as u64);
            sessions.push(Sess {
                rng,
                track,
                issued: 0,
                completed: 0,
                latency_sum_us: 0.0,
                run_idx: u32::MAX,
                state: SessState::Thinking,
            });
        }
        let mut hub: Option<ScanHub<'q>> = self
            .spec
            .shared_scans
            .then(|| ScanHub::new(self.base.table, FtsConfig::default().block_pages));

        if let Some(w) = ws.as_deref_mut() {
            w.start(ctx);
        }

        let mut st = RunState {
            records: Vec::new(),
            plan_counts: BTreeMap::new(),
            query_latency: Histogram::new(),
            last_complete: start,
            running_solo: Vec::new(),
            attached_owner: Vec::new(),
            unfinished: self.spec.sessions,
            active_queries: 0,
            cursor_active: false,
            label_buf: String::new(),
            completions_buf: Vec::new(),
        };
        let mut events: Vec<Event> = Vec::new();
        let mut background_active = false;

        while st.unfinished > 0 || ws.as_deref().is_some_and(|w| !w.finished()) {
            if ctx.device_crashed() {
                return Err(ExecError::Crashed);
            }
            events.clear();
            if !ctx.step(&mut events) {
                if ctx.device_crashed() {
                    return Err(ExecError::Crashed);
                }
                return Err(ExecError::Internal {
                    detail: "multi-query engine stalled with sessions outstanding",
                });
            }
            for &ev in &events {
                // The write system sees every event first; a `true` return
                // means the event was one of its own timers, which sessions
                // must never interpret as theirs.
                if let Some(w) = ws.as_deref_mut() {
                    let consumed = w.on_event(ctx, &ev)?;
                    let active = w.checkpoint_active();
                    if active != background_active {
                        background_active = active;
                        if active {
                            self.planner.background_acquire();
                        } else {
                            self.planner.background_release();
                        }
                    }
                    if consumed {
                        continue;
                    }
                }
                // Land every successful read in the pool up front. Drivers
                // admit their own pages anyway (admission is idempotent);
                // this covers completions whose owning query already
                // finished — and the shared cursor's block reads — so a
                // stray prefetch still warms the pool exactly as
                // `SimContext::quiesce` would have in single-query mode.
                match ev {
                    Event::IoPage {
                        device_page,
                        status: IoStatus::Ok,
                        ..
                    } => {
                        let _ = ctx.pool.admit_prefetched(device_page);
                    }
                    Event::IoBlock {
                        start,
                        len,
                        status: IoStatus::Ok,
                        ..
                    } => {
                        for p in start..start + len as u64 {
                            let _ = ctx.pool.admit_prefetched(p);
                        }
                    }
                    _ => {}
                }
                if let Event::Timer { tag, .. } = ev {
                    // Tag 0 timers belong to the write system (handled
                    // above); tags >= 1 route to session `tag - 1`.
                    if tag >= 1 {
                        let s = (tag - 1) as usize;
                        self.start_query(ctx, &mut sessions, hub.as_mut(), &mut st, s)?;
                        if matches!(&sessions[s].state, SessState::Running(q) if q.driver.done()) {
                            // Degenerate (empty-range) query: finished at
                            // admission time.
                            let i = sessions[s].run_idx as usize;
                            self.complete_solo(ctx, &mut sessions, &mut st, i);
                        }
                    }
                    continue;
                }
                // The shared cursor's own I/O and evaluation completions
                // never reach the broadcast list.
                if let Some(h) = hub.as_mut() {
                    if h.on_event(ctx, &ev)? {
                        let mut comps = std::mem::take(&mut st.completions_buf);
                        comps.clear();
                        h.take_completions(&mut comps);
                        for &(slot, answer) in &comps {
                            self.complete_attached(ctx, &mut sessions, &mut st, slot, answer);
                        }
                        st.completions_buf = comps;
                        if st.cursor_active && !h.is_active() {
                            self.planner.cursor_stop();
                            st.cursor_active = false;
                        }
                        continue;
                    }
                }
                // Broadcast to the dense running-solo list; only owners
                // react (shared reads can have several owners). When entry
                // `i` completes it is swap-removed and the element swapped
                // in from the end still needs this event, so `i` does not
                // advance on completion.
                let mut i = 0;
                while i < st.running_solo.len() {
                    let s = st.running_solo[i] as usize;
                    let done = {
                        let SessState::Running(q) = &mut sessions[s].state else {
                            i += 1;
                            continue;
                        };
                        q.driver.on_event(ctx, &ev)?;
                        q.driver.done()
                    };
                    if done {
                        self.complete_solo(ctx, &mut sessions, &mut st, i);
                    } else {
                        i += 1;
                    }
                }
            }
        }

        let write_stats = ws.as_deref().map(|w| w.stats());
        let io = ctx.io_profile();
        let resilience = ctx.resilience();
        ctx.quiesce();
        let hists = ctx.take_histograms();
        let pool = ctx.pool.stats().diff(&pool_before);
        let per_session = sessions
            .iter()
            .enumerate()
            .map(|(s, sess)| SessionSummary {
                session: s as u32,
                completed: sess.completed,
                mean_latency_us: if sess.completed == 0 {
                    0.0
                } else {
                    sess.latency_sum_us / sess.completed as f64
                },
            })
            .collect();
        let shared = hub.map(|h| h.stats().clone()).unwrap_or_default();
        Ok(WorkloadReport {
            spec: self.spec,
            records: st.records,
            per_session,
            plan_counts: st.plan_counts,
            p95_latency_us: st.query_latency.quantile_lo(95, 100),
            p99_latency_us: st.query_latency.quantile_lo(99, 100),
            query_latency_us: st.query_latency,
            makespan: st.last_complete.since(start),
            io,
            pool,
            resilience,
            hists,
            shared,
            writes: write_stats,
        })
    }

    /// A session's think timer fired: admit its next query, or retire the
    /// session if its count is done or the horizon has passed.
    fn start_query(
        &mut self,
        ctx: &mut SimContext<'_>,
        sessions: &mut [Sess<'q>],
        hub: Option<&mut ScanHub<'q>>,
        st: &mut RunState,
        s: usize,
    ) -> Result<(), ExecError> {
        let now = ctx.now();
        let horizon_passed = self
            .spec
            .horizon
            .is_some_and(|h| now.since(SimTime::ZERO) >= h);
        if sessions[s].issued >= self.spec.queries_per_session || horizon_passed {
            sessions[s].state = SessState::Finished;
            st.unfinished -= 1;
            return Ok(());
        }
        let active = st.active_queries;
        let query_index = sessions[s].issued;
        sessions[s].issued += 1;
        let selectivity =
            self.spec.selectivities[query_index as usize % self.spec.selectivities.len()];
        let (low, high) = range_for_selectivity(selectivity, self.base.table.spec().c2_max);
        let admission = QueryAdmission {
            session: s as u32,
            query_index,
            active,
            selectivity,
            low,
            high,
        };
        // The hub's cursor computes the pure range-MAX answer over
        // `(low, high)`; a base query with a join, a residual predicate or
        // a non-default aggregate cannot ride it and always runs solo.
        let hub_eligible = self.base.join.is_none()
            && matches!(
                self.base.aggregate,
                crate::query::Aggregate::Max(crate::query::Col::C1)
            )
            && (matches!(self.base.predicate, Predicate::True)
                || self.base.predicate.is_pure_c2_range());
        let choice = match hub {
            Some(_) if self.spec.shared_scans && hub_eligible => {
                let cursor_active = st.cursor_active;
                self.planner
                    .admit_shared(&admission, ctx.pool, cursor_active)
            }
            _ => SharedChoice::Solo(self.planner.admit(&admission, ctx.pool)),
        };
        ctx.metric_counter("admission_total", 1);
        // Admission is synchronous today: a query never queues for a lease,
        // it is granted a (possibly clipped) depth immediately. The wait
        // histogram exists so the contract is visible the day batched
        // admission introduces a real queue.
        ctx.metric_hist("admission_lease_wait_us", 0);
        let (leased, limit) = self.planner.depth_gauges();
        ctx.metric_sample("admission_active_leases", u64::from(leased));
        ctx.metric_sample("admission_depth_limit", u64::from(limit));
        let cap = self.spec.record_limit.unwrap_or(u64::MAX);
        let plan = match (choice, hub) {
            (SharedChoice::Attach, Some(h)) => {
                if !h.is_active() {
                    let depth = self.planner.cursor_start(ctx.pool);
                    h.set_window(depth);
                    st.cursor_active = true;
                }
                let slot = h.attach(ctx, low, high);
                if st.attached_owner.len() <= slot as usize {
                    st.attached_owner.resize(slot as usize + 1, 0);
                }
                st.attached_owner[slot as usize] = s as u32;
                match st.plan_counts.get_mut(SHARED_LABEL) {
                    Some(n) => *n += 1,
                    None => {
                        st.plan_counts.insert(SHARED_LABEL.to_string(), 1);
                    }
                }
                ctx.trace_span_begin(sessions[s].track, "query");
                sessions[s].state = SessState::Attached(AttachedQuery {
                    submitted: now,
                    query_index,
                    selectivity,
                    active_at_admit: active,
                });
                st.active_queries += 1;
                return Ok(());
            }
            (SharedChoice::Solo(plan), _) => plan,
            // An Attach verdict with no hub (a planner ignoring its
            // `cursor_active` argument on an unshared workload) must not
            // strand the query: fall back to the solo admission path.
            (SharedChoice::Attach, None) => self.planner.admit(&admission, ctx.pool),
        };
        st.label_buf.clear();
        plan.label_into(&mut st.label_buf);
        match st.plan_counts.get_mut(st.label_buf.as_str()) {
            Some(n) => *n += 1,
            None => {
                st.plan_counts.insert(st.label_buf.clone(), 1);
            }
        }
        ctx.set_retry_policy(plan.retry().clone());
        let window = Predicate::c2_between(low, high);
        let mut q = self.base.clone();
        q.plan = plan;
        q.predicate = if matches!(self.base.predicate, Predicate::True)
            || self.base.predicate.is_pure_c2_range()
        {
            window
        } else {
            Predicate::And(vec![self.base.predicate.clone(), window])
        };
        let mut driver = make_driver(&q)?;
        let plan = q.plan;
        ctx.trace_span_begin(sessions[s].track, "query");
        driver.start(ctx)?;
        let plan_label = if (st.records.len() as u64) < cap {
            st.label_buf.clone()
        } else {
            String::new()
        };
        sessions[s].run_idx = st.running_solo.len() as u32;
        st.running_solo.push(s as u32);
        st.active_queries += 1;
        sessions[s].state = SessState::Running(ActiveQuery {
            driver,
            submitted: now,
            query_index,
            selectivity,
            plan_label,
            degree: plan.degree(),
            active_at_admit: active,
        });
        Ok(())
    }

    /// The solo query at dense index `i` produced its answer.
    fn complete_solo(
        &mut self,
        ctx: &mut SimContext<'_>,
        sessions: &mut [Sess<'q>],
        st: &mut RunState,
        i: usize,
    ) {
        let Some(&s32) = st.running_solo.get(i) else {
            return;
        };
        let s = s32 as usize;
        let q = match std::mem::replace(&mut sessions[s].state, SessState::Thinking) {
            SessState::Running(q) => q,
            other => {
                // A completion for a session that isn't running solo would
                // be an event-loop bug; library code may not panic, so put
                // the state back and drop the spurious completion.
                sessions[s].state = other;
                return;
            }
        };
        st.running_solo.swap_remove(i);
        sessions[s].run_idx = u32::MAX;
        if let Some(&moved) = st.running_solo.get(i) {
            sessions[moved as usize].run_idx = i as u32;
        }
        st.active_queries -= 1;
        let answer = q.driver.answer();
        self.finish_query(
            ctx,
            sessions,
            st,
            s,
            FinishedMeta {
                submitted: q.submitted,
                query_index: q.query_index,
                selectivity: q.selectivity,
                plan: Some(q.plan_label),
                degree: q.degree,
                active_at_admit: q.active_at_admit,
            },
            answer,
        );
    }

    /// The hub delivered the answer for attached consumer `slot`.
    fn complete_attached(
        &mut self,
        ctx: &mut SimContext<'_>,
        sessions: &mut [Sess<'q>],
        st: &mut RunState,
        slot: u32,
        answer: QueryAnswer,
    ) {
        let Some(&s32) = st.attached_owner.get(slot as usize) else {
            return;
        };
        let s = s32 as usize;
        let q = match std::mem::replace(&mut sessions[s].state, SessState::Thinking) {
            SessState::Attached(q) => q,
            other => {
                sessions[s].state = other;
                return;
            }
        };
        st.active_queries -= 1;
        self.finish_query(
            ctx,
            sessions,
            st,
            s,
            FinishedMeta {
                submitted: q.submitted,
                query_index: q.query_index,
                selectivity: q.selectivity,
                plan: None,
                degree: 1,
                active_at_admit: q.active_at_admit,
            },
            answer,
        );
    }

    /// Shared completion tail: record, return the lease, arm the next
    /// think pause (or retire the session).
    fn finish_query(
        &mut self,
        ctx: &mut SimContext<'_>,
        sessions: &mut [Sess<'q>],
        st: &mut RunState,
        s: usize,
        meta: FinishedMeta,
        answer: QueryAnswer,
    ) {
        let sess = &mut sessions[s];
        let latency = ctx.now().since(meta.submitted);
        ctx.trace_span_end(sess.track, "query");
        let latency_us = latency.as_nanos() / 1000;
        st.query_latency.record(latency_us);
        sess.latency_sum_us += latency.as_micros_f64();
        sess.completed += 1;
        st.last_complete = st.last_complete.max(ctx.now());
        let cap = self.spec.record_limit.unwrap_or(u64::MAX);
        if (st.records.len() as u64) < cap {
            st.records.push(QueryRecord {
                session: s as u32,
                query_index: meta.query_index,
                selectivity: meta.selectivity,
                plan: meta.plan.unwrap_or_else(|| SHARED_LABEL.to_string()),
                degree: meta.degree,
                active_at_admit: meta.active_at_admit,
                submitted: meta.submitted,
                latency,
                max_c1: answer.max_c1,
                rows_matched: answer.rows_matched,
            });
        }
        self.planner.complete(s as u32);
        let sess = &mut sessions[s];
        if sess.issued >= self.spec.queries_per_session {
            sess.state = SessState::Finished;
            st.unfinished -= 1;
        } else {
            let delay = self.spec.think.sample(&mut sess.rng);
            ctx.schedule_timer_tagged(delay, 1 + s as u64);
            sess.state = SessState::Thinking;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuConfig;
    use crate::engine::CpuCosts;
    use crate::is::IsConfig;
    use crate::sorted_is::SortedIsConfig;
    use pioqo_device::presets::consumer_pcie_ssd;
    use pioqo_storage::{BTreeIndex, HeapTable, TableSpec, Tablespace};

    fn fixture(rows: u64, rpp: u32) -> (HeapTable, BTreeIndex, u64) {
        let spec = TableSpec::paper_table(rpp, rows, 31);
        let mut ts = Tablespace::new(4 * spec.n_pages() + 1000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build(
            "c2_idx",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("fits");
        let cap = ts.capacity();
        (table, index, cap)
    }

    fn run_workload(
        fx: &(HeapTable, BTreeIndex, u64),
        spec: WorkloadSpec,
        plan: PlanSpec,
    ) -> WorkloadReport {
        let mut dev = consumer_pcie_ssd(fx.2, 13);
        let mut pool = BufferPool::new(4096);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let engine = MultiEngine::new(
            spec,
            QuerySpec::range_max(&fx.0, Some(&fx.1), 0, 0),
            FixedPlanner { plan },
        );
        engine.run(&mut ctx).expect("workload runs")
    }

    #[test]
    fn every_query_answers_the_oracle() {
        let fx = fixture(20_000, 33);
        let spec = WorkloadSpec {
            sessions: 3,
            queries_per_session: 3,
            ..WorkloadSpec::default()
        };
        let report = run_workload(&fx, spec, PlanSpec::Is(IsConfig::default()));
        assert_eq!(report.total_completed(), 9);
        assert_eq!(report.records.len(), 9);
        for r in &report.records {
            let (low, high) = range_for_selectivity(r.selectivity, fx.0.spec().c2_max);
            assert_eq!(
                r.max_c1,
                fx.0.data().naive_max_c1(low, high),
                "session {} query {}",
                r.session,
                r.query_index
            );
        }
        assert_eq!(report.fairness_ratio(), 1.0);
        assert!(report.makespan > SimDuration::ZERO);
    }

    #[test]
    fn concurrent_run_is_deterministic() {
        let fx = fixture(20_000, 33);
        let spec = WorkloadSpec {
            sessions: 4,
            queries_per_session: 2,
            ..WorkloadSpec::default()
        };
        let a = run_workload(
            &fx,
            spec.clone(),
            PlanSpec::SortedIs(SortedIsConfig::default()),
        );
        let b = run_workload(&fx, spec, PlanSpec::SortedIs(SortedIsConfig::default()));
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "double run must be byte-identical"
        );
    }

    #[test]
    fn sessions_overlap_in_time() {
        let fx = fixture(40_000, 33);
        let spec = WorkloadSpec {
            sessions: 8,
            ..WorkloadSpec::default()
        };
        let report = run_workload(&fx, spec, PlanSpec::Is(IsConfig::default()));
        assert!(
            report.records.iter().any(|r| r.active_at_admit > 0),
            "8 closed-loop sessions with short think time must overlap"
        );
    }

    #[test]
    fn shared_scans_answer_the_oracle_and_charge_one_cursor() {
        let fx = fixture(9_900, 33);
        let spec = WorkloadSpec {
            sessions: 8,
            queries_per_session: 2,
            selectivities: vec![0.4],
            shared_scans: true,
            ..WorkloadSpec::default()
        };
        let report = run_workload(&fx, spec.clone(), PlanSpec::Fts(FtsConfig::default()));
        assert_eq!(report.total_completed(), 16);
        for r in &report.records {
            let (low, high) = range_for_selectivity(r.selectivity, fx.0.spec().c2_max);
            assert_eq!(r.max_c1, fx.0.data().naive_max_c1(low, high));
            assert_eq!(r.plan, "FTS+shared");
        }
        assert_eq!(report.shared.attaches, 16);
        assert!(
            report.shared.cursor_starts >= 1,
            "at least one cursor must have streamed"
        );
        assert!(
            report.shared.cursor_starts < 16,
            "overlapping consumers must share cursors, got {} starts",
            report.shared.cursor_starts
        );
        // Answers are identical with sharing off.
        let solo = run_workload(
            &fx,
            WorkloadSpec {
                shared_scans: false,
                ..spec
            },
            PlanSpec::Fts(FtsConfig::default()),
        );
        let key = |r: &QueryRecord| (r.session, r.query_index, r.max_c1, r.rows_matched);
        let mut a: Vec<_> = report.records.iter().map(key).collect();
        let mut b: Vec<_> = solo.records.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "sharing must not change any answer");
    }

    #[test]
    fn record_limit_caps_memory_not_aggregates() {
        let fx = fixture(20_000, 33);
        let spec = WorkloadSpec {
            sessions: 4,
            queries_per_session: 4,
            record_limit: Some(3),
            ..WorkloadSpec::default()
        };
        let report = run_workload(&fx, spec, PlanSpec::Is(IsConfig::default()));
        assert_eq!(report.records.len(), 3, "records are capped");
        assert_eq!(report.total_completed(), 16, "aggregates are not");
        assert_eq!(report.query_latency_us.count, 16);
    }

    #[test]
    fn scans_and_writes_share_the_machine() {
        use crate::write::{WriteConfig, WriteSystem};
        use pioqo_device::MediaStore;
        use pioqo_storage::decode_heap_page;

        let spec = TableSpec::paper_table(33, 20_000, 31);
        let mut ts = Tablespace::new(4 * spec.n_pages() + 1000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build(
            "c2_idx",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("fits");
        let wspec = TableSpec {
            name: "W33".into(),
            ..TableSpec::paper_table(33, 3_000, 77)
        };
        let wtable = HeapTable::create(wspec, &mut ts).expect("fits");
        let wal = ts.alloc("wal", 512).expect("fits");

        let run = || {
            let mut dev = consumer_pcie_ssd(ts.capacity(), 13);
            let mut pool = BufferPool::new(4096);
            let mut ctx = SimContext::new(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
            );
            let mut ws = WriteSystem::new(
                WriteConfig::default(),
                &wtable,
                wal,
                MediaStore::new(wtable.spec().page_size),
            );
            let engine = MultiEngine::new(
                WorkloadSpec {
                    sessions: 2,
                    queries_per_session: 2,
                    ..WorkloadSpec::default()
                },
                QuerySpec::range_max(&table, Some(&index), 0, 0),
                FixedPlanner {
                    plan: PlanSpec::Is(IsConfig::default()),
                },
            );
            let report = engine.run_with_writes(&mut ctx, &mut ws).expect("runs");
            (report, ws)
        };
        let (report, ws) = run();
        // Scans still answer the oracle while writers churn.
        assert_eq!(report.total_completed(), 4);
        for r in &report.records {
            let (low, high) = range_for_selectivity(r.selectivity, table.spec().c2_max);
            assert_eq!(r.max_c1, table.data().naive_max_c1(low, high));
        }
        // The report is self-describing and carries the write counters.
        let stats = report.writes.as_ref().expect("write stats present");
        assert!(report.spec.writes.is_some());
        let cfg = WriteConfig::default();
        assert_eq!(
            stats.commits_acked,
            (cfg.writers * cfg.commits_per_writer) as u64
        );
        // The write path quiesced cleanly and its media decodes.
        assert!(ws.finished());
        for dp in ws.touched_pages() {
            let image = ws.media().read(dp).expect("flushed");
            let page = decode_heap_page(ws.table_spec(), image).expect("decodes");
            assert_eq!(page.rows, ws.current_rows(dp));
        }
        // Byte-determinism holds with writers in the mix.
        let (report2, _) = run();
        assert_eq!(report.to_json(), report2.to_json());
    }

    #[test]
    fn horizon_caps_issuance() {
        let fx = fixture(20_000, 33);
        let spec = WorkloadSpec {
            sessions: 2,
            queries_per_session: 1000,
            horizon: Some(SimDuration::from_micros_f64(30_000.0)),
            ..WorkloadSpec::default()
        };
        let report = run_workload(&fx, spec, PlanSpec::Is(IsConfig::default()));
        let total = report.total_completed();
        assert!(total > 0, "some queries run before the horizon");
        assert!(total < 2000, "the horizon must stop issuance");
    }
}
