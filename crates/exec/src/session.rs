//! Concurrent multi-query execution: closed-loop sessions sharing one
//! simulated machine.
//!
//! The paper's experiments run one query at a time; real servers admit many.
//! [`MultiEngine`] interleaves N *sessions* — each a closed loop of
//! range-MAX queries separated by seeded think time — on **one**
//! [`SimContext`]: one device, one buffer pool, one CPU scheduler. Every
//! event the context produces is broadcast to every active query driver in
//! session order; drivers own their I/O handles and compute tasks and
//! ignore the rest (see [`crate::driver`]), so the interleaving is exact
//! and byte-deterministic for a given [`WorkloadSpec`] seed.
//!
//! Plan choice is delegated to an [`AdmissionPlanner`]: the engine tells it
//! how many queries are already running when a new one arrives, and the
//! planner answers with the [`PlanSpec`] to execute. The trivial
//! [`FixedPlanner`] always picks the same plan; the QDTT-aware planner in
//! the optimizer crate hands out queue-depth leases from the device budget
//! and re-costs every candidate under its lease, which is how plan choice
//! shifts as concurrency rises (§4.3's "under concurrency pass a lower
//! queue depth", made operational).
//!
//! Determinism invariants: per-session randomness comes from
//! `SimRng::derive(spec.seed, session)`, think time advances on virtual
//! [`Event::Timer`]s, and all engine state lives in ordered collections.

use crate::driver::QueryDriver;
use crate::engine::{Event, ExecError, IoProfile, ResilienceStats, SimContext};
use crate::execute::{make_driver, PlanSpec, ScanInputs};
use crate::write::{WriteConfig, WriteStats, WriteSystem};
use pioqo_bufpool::{BufferPool, PoolStats};
use pioqo_device::IoStatus;
use pioqo_obs::{HistSet, Histogram};
use pioqo_simkit::{SimDuration, SimRng, SimTime};
use pioqo_storage::range_for_selectivity;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Distribution of the pause between a session's consecutive queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ThinkTime {
    /// The same pause every time.
    Fixed(SimDuration),
    /// Exponentially distributed pause (memoryless arrivals, the classic
    /// closed-loop client model).
    Exponential {
        /// Mean of the distribution.
        mean: SimDuration,
    },
}

impl ThinkTime {
    /// Draw one pause from the session's generator.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            ThinkTime::Fixed(d) => d,
            ThinkTime::Exponential { mean } => {
                // Inverse CDF on (0, 1]: -ln(1-u) is Exp(1).
                let u = rng.unit();
                mean * (-(1.0 - u).ln())
            }
        }
    }
}

/// A multi-session closed-loop workload, fully described (and so fully
/// reproducible: the spec plus the machine is the experiment).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of concurrent closed-loop sessions.
    pub sessions: u32,
    /// Queries each session issues before it stops.
    pub queries_per_session: u32,
    /// Pause between a session's queries (sampled per query).
    pub think: ThinkTime,
    /// Selectivities cycled through by each session (query `i` uses
    /// `selectivities[i % len]`).
    pub selectivities: Vec<f64>,
    /// Master seed; session `s` draws from `SimRng::derive(seed, s)`.
    pub seed: u64,
    /// Stop issuing new queries past this much virtual time (in-flight
    /// queries still finish). `None` means every session runs its full
    /// query count. A horizon makes per-session completion counts diverge,
    /// which is what the fairness metrics are for.
    pub horizon: Option<SimDuration>,
    /// The write workload running beside the scans, if any (populated by
    /// [`MultiEngine::run_with_writes`] so reports stay self-describing).
    pub writes: Option<WriteConfig>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            sessions: 4,
            queries_per_session: 4,
            think: ThinkTime::Exponential {
                mean: SimDuration::from_micros_f64(2_000.0),
            },
            selectivities: vec![0.001, 0.01, 0.05],
            seed: 42,
            horizon: None,
            writes: None,
        }
    }
}

/// What the engine tells the planner about a query asking for admission.
#[derive(Debug, Clone, Copy)]
pub struct QueryAdmission {
    /// The issuing session.
    pub session: u32,
    /// The session-local query index (0-based).
    pub query_index: u32,
    /// Queries of *other* sessions running at admission time (this query
    /// will make it `active + 1`).
    pub active: u32,
    /// The query's predicate selectivity.
    pub selectivity: f64,
    /// Predicate lower bound (inclusive).
    pub low: u32,
    /// Predicate upper bound (inclusive).
    pub high: u32,
}

/// Chooses the physical plan for each admitted query.
///
/// Implementations see the live concurrency level and buffer pool, so they
/// can be as simple as [`FixedPlanner`] or as involved as the optimizer
/// crate's QDTT admission layer (lease out device queue depth, re-cost all
/// candidates under the lease). [`AdmissionPlanner::complete`] is the
/// engine's promise that every admission is paired with exactly one
/// completion — the hook where leases are returned.
pub trait AdmissionPlanner {
    /// Choose the plan for `q`. Called once per query, at admission.
    fn admit(&mut self, q: &QueryAdmission, pool: &BufferPool) -> PlanSpec;

    /// The query admitted for `session` finished (successfully or not).
    fn complete(&mut self, session: u32) {
        let _ = session;
    }

    /// Background writeback (checkpoint flushing) became active: planners
    /// managing a device budget should carve out a share for it, so
    /// concurrent scans are admitted with less queue depth while the
    /// flusher's writes contend for the device. The default ignores it.
    fn background_acquire(&mut self) {}

    /// Background writeback went idle again; the paired release of
    /// [`background_acquire`](Self::background_acquire).
    fn background_release(&mut self) {}
}

/// The null admission policy: every query runs the same plan.
#[derive(Debug, Clone)]
pub struct FixedPlanner {
    /// The plan to run.
    pub plan: PlanSpec,
}

impl AdmissionPlanner for FixedPlanner {
    fn admit(&mut self, _q: &QueryAdmission, _pool: &BufferPool) -> PlanSpec {
        self.plan.clone()
    }
}

/// Passing `&mut planner` lets the caller keep the planner (and whatever
/// journal it accumulated) after [`MultiEngine::run`] consumes the engine.
impl<P: AdmissionPlanner + ?Sized> AdmissionPlanner for &mut P {
    fn admit(&mut self, q: &QueryAdmission, pool: &BufferPool) -> PlanSpec {
        (**self).admit(q, pool)
    }

    fn complete(&mut self, session: u32) {
        (**self).complete(session);
    }

    fn background_acquire(&mut self) {
        (**self).background_acquire();
    }

    fn background_release(&mut self) {
        (**self).background_release();
    }
}

/// One completed query, as the workload report records it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The issuing session.
    pub session: u32,
    /// The session-local query index.
    pub query_index: u32,
    /// The predicate selectivity the query ran with.
    pub selectivity: f64,
    /// Label of the plan the planner chose ("FTS", "PIS8+pf4", ...).
    pub plan: String,
    /// The plan's parallel degree.
    pub degree: u32,
    /// Concurrent queries (other sessions) when this one was admitted.
    pub active_at_admit: u32,
    /// Virtual admission time.
    pub submitted: SimTime,
    /// Admission-to-answer virtual latency.
    pub latency: SimDuration,
    /// The query answer.
    pub max_c1: Option<u32>,
    /// Rows matching the predicate.
    pub rows_matched: u64,
}

/// Per-session accounting in the workload report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSummary {
    /// The session.
    pub session: u32,
    /// Queries the session completed.
    pub completed: u32,
    /// Mean query latency, µs.
    pub mean_latency_us: f64,
    /// Query latency histogram, µs.
    pub latency_us: Histogram,
}

/// Everything a [`MultiEngine`] run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// The spec that produced this report (self-describing exports).
    pub spec: WorkloadSpec,
    /// Every completed query, in completion order.
    pub records: Vec<QueryRecord>,
    /// Per-session accounting.
    pub per_session: Vec<SessionSummary>,
    /// How often each plan label was chosen.
    pub plan_counts: BTreeMap<String, u64>,
    /// Query latencies across all sessions, µs.
    pub query_latency_us: Histogram,
    /// First admission to last completion, virtual time.
    pub makespan: SimDuration,
    /// Device-level I/O profile over the whole workload.
    pub io: IoProfile,
    /// Buffer-pool counters over the whole workload.
    pub pool: PoolStats,
    /// Fault-handling counters over the whole workload.
    pub resilience: ResilienceStats,
    /// Machine-level histograms (I/O latency, queue depth, page waits).
    pub hists: HistSet,
    /// Write-path counters, when a write workload ran beside the scans.
    pub writes: Option<WriteStats>,
}

impl WorkloadReport {
    /// Total queries completed across all sessions.
    pub fn total_completed(&self) -> u64 {
        self.per_session.iter().map(|s| s.completed as u64).sum()
    }

    /// Max/min completed-query ratio across sessions: 1.0 is perfectly
    /// fair, `f64::INFINITY` means a session starved completely. Only
    /// meaningful for horizon-bounded workloads (without a horizon every
    /// session completes its full count and the ratio is trivially 1).
    pub fn fairness_ratio(&self) -> f64 {
        let min = self.per_session.iter().map(|s| s.completed).min();
        let max = self.per_session.iter().map(|s| s.completed).max();
        match (min, max) {
            (Some(0), Some(0)) | (None, _) | (_, None) => 1.0,
            (Some(0), Some(_)) => f64::INFINITY,
            (Some(min), Some(max)) => max as f64 / min as f64,
        }
    }

    /// The report as pretty JSON (the byte-identity artifact the
    /// determinism tests and CI compare).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// A query in flight on one session.
struct ActiveQuery<'q> {
    driver: Box<dyn QueryDriver + 'q>,
    submitted: SimTime,
    query_index: u32,
    selectivity: f64,
    plan_label: String,
    degree: u32,
    active_at_admit: u32,
}

enum SessState<'q> {
    /// Waiting on a think timer (the engine's timer map holds the id).
    Thinking,
    Running(ActiveQuery<'q>),
    Finished,
}

struct Sess<'q> {
    rng: SimRng,
    track: u32,
    issued: u32,
    completed: u32,
    latency: Histogram,
    latency_sum_us: f64,
    state: SessState<'q>,
}

/// The concurrent multi-query engine. See the module docs.
///
/// ```
/// use pioqo_exec::{
///     CpuConfig, CpuCosts, FixedPlanner, MultiEngine, PlanSpec, ScanInputs,
///     SimContext, SortedIsConfig, WorkloadSpec,
/// };
/// use pioqo_bufpool::BufferPool;
/// use pioqo_device::presets::consumer_pcie_ssd;
/// use pioqo_storage::{BTreeIndex, HeapTable, TableSpec, Tablespace};
///
/// let spec = TableSpec::paper_table(33, 20_000, 7);
/// let mut ts = Tablespace::new(4 * spec.n_pages() + 1000);
/// let table = HeapTable::create(spec, &mut ts).unwrap();
/// let index = BTreeIndex::build(
///     "c2_idx", table.data().c2_entries(), table.spec().page_size, &mut ts,
/// ).unwrap();
/// let mut dev = consumer_pcie_ssd(ts.capacity(), 7);
/// let mut pool = BufferPool::new(4096);
/// let mut ctx = SimContext::new(
///     &mut dev, &mut pool, CpuConfig::paper_xeon(), CpuCosts::default(),
/// );
/// let engine = MultiEngine::new(
///     WorkloadSpec { sessions: 2, queries_per_session: 2, ..WorkloadSpec::default() },
///     ScanInputs { table: &table, index: Some(&index), low: 0, high: 0 },
///     FixedPlanner { plan: PlanSpec::SortedIs(SortedIsConfig::default()) },
/// );
/// let report = engine.run(&mut ctx).unwrap();
/// assert_eq!(report.total_completed(), 4);
/// ```
pub struct MultiEngine<'q, P: AdmissionPlanner> {
    spec: WorkloadSpec,
    inputs: ScanInputs<'q>,
    planner: P,
}

impl<'q, P: AdmissionPlanner> MultiEngine<'q, P> {
    /// An engine for `spec` over the given table/index, with `planner`
    /// choosing each query's plan. The `low`/`high` fields of `inputs` are
    /// ignored: each query's predicate comes from the spec's selectivity
    /// cycle.
    pub fn new(spec: WorkloadSpec, inputs: ScanInputs<'q>, planner: P) -> MultiEngine<'q, P> {
        assert!(spec.sessions >= 1, "a workload needs at least one session");
        assert!(
            !spec.selectivities.is_empty(),
            "a workload needs at least one selectivity"
        );
        MultiEngine {
            spec,
            inputs,
            planner,
        }
    }

    /// Run the workload to completion on `ctx` and report.
    ///
    /// Returns `ExecError::Internal` if the event loop stalls with sessions
    /// outstanding (an engine bug, not a caller error), or the underlying
    /// error if any query's own I/O fails.
    pub fn run(self, ctx: &mut SimContext<'_>) -> Result<WorkloadReport, ExecError> {
        self.run_inner(ctx, None)
    }

    /// Run the workload with a [`WriteSystem`] sharing the machine: its
    /// group-commit and writeback I/O goes through the same device queue
    /// the scans use, so checkpoints visibly perturb scan latency — and
    /// the planner's [`AdmissionPlanner::background_acquire`] hook fires
    /// while writeback is in flight, shifting admission decisions.
    ///
    /// Returns [`ExecError::Crashed`] as soon as the device halts (a
    /// [`pioqo_device::Crashable`] plan firing); the write system then
    /// holds the exact pre-crash WAL/media state for
    /// [`crate::recovery::recover`].
    pub fn run_with_writes(
        mut self,
        ctx: &mut SimContext<'_>,
        ws: &mut WriteSystem,
    ) -> Result<WorkloadReport, ExecError> {
        self.spec.writes = Some(ws.config().clone());
        self.run_inner(ctx, Some(ws))
    }

    fn run_inner(
        mut self,
        ctx: &mut SimContext<'_>,
        mut ws: Option<&mut WriteSystem>,
    ) -> Result<WorkloadReport, ExecError> {
        let start = ctx.now();
        let pool_before = ctx.pool.stats().clone();
        let mut timer_owner: BTreeMap<u64, usize> = BTreeMap::new();
        let mut sessions: Vec<Sess<'q>> = Vec::with_capacity(self.spec.sessions as usize);
        for s in 0..self.spec.sessions {
            let track = ctx.trace_track(&format!("session{s}"));
            let mut rng = SimRng::derive(self.spec.seed, s as u64);
            // Initial stagger: sessions do not all arrive at t=0.
            let delay = self.spec.think.sample(&mut rng);
            let timer = ctx.schedule_timer(delay);
            timer_owner.insert(timer, s as usize);
            sessions.push(Sess {
                rng,
                track,
                issued: 0,
                completed: 0,
                latency: Histogram::new(),
                latency_sum_us: 0.0,
                state: SessState::Thinking,
            });
        }

        if let Some(w) = ws.as_deref_mut() {
            w.start(ctx);
        }

        let mut records: Vec<QueryRecord> = Vec::new();
        let mut plan_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut query_latency = Histogram::new();
        let mut last_complete = start;
        let mut events: Vec<Event> = Vec::new();
        let mut background_active = false;

        while sessions
            .iter()
            .any(|s| !matches!(s.state, SessState::Finished))
            || ws.as_deref().is_some_and(|w| !w.finished())
        {
            if ctx.device_crashed() {
                return Err(ExecError::Crashed);
            }
            events.clear();
            if !ctx.step(&mut events) {
                if ctx.device_crashed() {
                    return Err(ExecError::Crashed);
                }
                return Err(ExecError::Internal {
                    detail: "multi-query engine stalled with sessions outstanding",
                });
            }
            for &ev in &events {
                // The write system sees every event first; a `true` return
                // means the event was one of its own timers, which sessions
                // must never interpret as theirs.
                if let Some(w) = ws.as_deref_mut() {
                    let consumed = w.on_event(ctx, &ev)?;
                    let active = w.checkpoint_active();
                    if active != background_active {
                        background_active = active;
                        if active {
                            self.planner.background_acquire();
                        } else {
                            self.planner.background_release();
                        }
                    }
                    if consumed {
                        continue;
                    }
                }
                // Land every successful read in the pool up front. Drivers
                // admit their own pages anyway (admission is idempotent);
                // this covers completions whose owning query already
                // finished, so a stray prefetch still warms the pool exact
                // as `SimContext::quiesce` would have in single-query mode.
                match ev {
                    Event::IoPage {
                        device_page,
                        status: IoStatus::Ok,
                        ..
                    } => {
                        let _ = ctx.pool.admit_prefetched(device_page);
                    }
                    Event::IoBlock {
                        start,
                        len,
                        status: IoStatus::Ok,
                        ..
                    } => {
                        for p in start..start + len as u64 {
                            let _ = ctx.pool.admit_prefetched(p);
                        }
                    }
                    _ => {}
                }
                if let Event::Timer { id } = ev {
                    if let Some(s) = timer_owner.remove(&id) {
                        self.start_query(ctx, &mut sessions, &mut plan_counts, s)?;
                        if self.query_done(&sessions, s) {
                            // Degenerate (empty-range) query: finished at
                            // admission time.
                            self.complete_query(
                                ctx,
                                &mut sessions,
                                &mut timer_owner,
                                &mut records,
                                &mut query_latency,
                                &mut last_complete,
                                s,
                            );
                        }
                    }
                    continue;
                }
                // Broadcast to every active driver in session order; only
                // owners react (shared reads can have several owners).
                for s in 0..sessions.len() {
                    if let SessState::Running(q) = &mut sessions[s].state {
                        q.driver.on_event(ctx, &ev)?;
                        if q.driver.done() {
                            self.complete_query(
                                ctx,
                                &mut sessions,
                                &mut timer_owner,
                                &mut records,
                                &mut query_latency,
                                &mut last_complete,
                                s,
                            );
                        }
                    }
                }
            }
        }

        let write_stats = ws.as_deref().map(|w| w.stats());
        let io = ctx.io_profile();
        let resilience = ctx.resilience();
        ctx.quiesce();
        let hists = ctx.take_histograms();
        let pool = ctx.pool.stats().diff(&pool_before);
        let per_session = sessions
            .iter()
            .enumerate()
            .map(|(s, sess)| SessionSummary {
                session: s as u32,
                completed: sess.completed,
                mean_latency_us: if sess.completed == 0 {
                    0.0
                } else {
                    sess.latency_sum_us / sess.completed as f64
                },
                latency_us: sess.latency.clone(),
            })
            .collect();
        Ok(WorkloadReport {
            spec: self.spec,
            records,
            per_session,
            plan_counts,
            query_latency_us: query_latency,
            makespan: last_complete.since(start),
            io,
            pool,
            resilience,
            hists,
            writes: write_stats,
        })
    }

    fn query_done(&self, sessions: &[Sess<'q>], s: usize) -> bool {
        matches!(&sessions[s].state, SessState::Running(q) if q.driver.done())
    }

    /// A session's think timer fired: admit its next query, or retire the
    /// session if its count is done or the horizon has passed.
    fn start_query(
        &mut self,
        ctx: &mut SimContext<'_>,
        sessions: &mut [Sess<'q>],
        plan_counts: &mut BTreeMap<String, u64>,
        s: usize,
    ) -> Result<(), ExecError> {
        let now = ctx.now();
        let horizon_passed = self
            .spec
            .horizon
            .is_some_and(|h| now.since(SimTime::ZERO) >= h);
        if sessions[s].issued >= self.spec.queries_per_session || horizon_passed {
            sessions[s].state = SessState::Finished;
            return Ok(());
        }
        let active = sessions
            .iter()
            .filter(|x| matches!(x.state, SessState::Running(_)))
            .count() as u32;
        let query_index = sessions[s].issued;
        sessions[s].issued += 1;
        let selectivity =
            self.spec.selectivities[query_index as usize % self.spec.selectivities.len()];
        let (low, high) = range_for_selectivity(selectivity, self.inputs.table.spec().c2_max);
        let admission = QueryAdmission {
            session: s as u32,
            query_index,
            active,
            selectivity,
            low,
            high,
        };
        let plan = self.planner.admit(&admission, ctx.pool);
        *plan_counts.entry(plan.label()).or_insert(0) += 1;
        ctx.set_retry_policy(plan.retry().clone());
        let inputs = ScanInputs {
            low,
            high,
            ..self.inputs
        };
        let mut driver = make_driver(&plan, &inputs)?;
        ctx.trace_span_begin(sessions[s].track, "query");
        driver.start(ctx)?;
        sessions[s].state = SessState::Running(ActiveQuery {
            driver,
            submitted: now,
            query_index,
            selectivity,
            plan_label: plan.label(),
            degree: plan.degree(),
            active_at_admit: active,
        });
        Ok(())
    }

    /// A running query produced its answer: record it, return the lease,
    /// start the next think pause (or retire the session).
    #[allow(clippy::too_many_arguments)] // internal plumbing over `run`'s locals
    fn complete_query(
        &mut self,
        ctx: &mut SimContext<'_>,
        sessions: &mut [Sess<'q>],
        timer_owner: &mut BTreeMap<u64, usize>,
        records: &mut Vec<QueryRecord>,
        query_latency: &mut Histogram,
        last_complete: &mut SimTime,
        s: usize,
    ) {
        let sess = &mut sessions[s];
        let q = match std::mem::replace(&mut sess.state, SessState::Thinking) {
            SessState::Running(q) => q,
            other => {
                // A completion for a session that isn't running would be
                // an event-loop bug; library code may not panic, so put
                // the state back and drop the spurious event.
                sess.state = other;
                return;
            }
        };
        let answer = q.driver.answer();
        let latency = ctx.now().since(q.submitted);
        ctx.trace_span_end(sess.track, "query");
        let latency_us = latency.as_nanos() / 1000;
        sess.latency.record(latency_us);
        query_latency.record(latency_us);
        sess.latency_sum_us += latency.as_micros_f64();
        sess.completed += 1;
        *last_complete = (*last_complete).max(ctx.now());
        records.push(QueryRecord {
            session: s as u32,
            query_index: q.query_index,
            selectivity: q.selectivity,
            plan: q.plan_label,
            degree: q.degree,
            active_at_admit: q.active_at_admit,
            submitted: q.submitted,
            latency,
            max_c1: answer.max_c1,
            rows_matched: answer.rows_matched,
        });
        self.planner.complete(s as u32);
        if sess.issued >= self.spec.queries_per_session {
            sess.state = SessState::Finished;
        } else {
            let delay = self.spec.think.sample(&mut sess.rng);
            let timer = ctx.schedule_timer(delay);
            timer_owner.insert(timer, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuConfig;
    use crate::engine::CpuCosts;
    use crate::is::IsConfig;
    use crate::sorted_is::SortedIsConfig;
    use pioqo_device::presets::consumer_pcie_ssd;
    use pioqo_storage::{BTreeIndex, HeapTable, TableSpec, Tablespace};

    fn fixture(rows: u64, rpp: u32) -> (HeapTable, BTreeIndex, u64) {
        let spec = TableSpec::paper_table(rpp, rows, 31);
        let mut ts = Tablespace::new(4 * spec.n_pages() + 1000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build(
            "c2_idx",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("fits");
        let cap = ts.capacity();
        (table, index, cap)
    }

    fn run_workload(
        fx: &(HeapTable, BTreeIndex, u64),
        spec: WorkloadSpec,
        plan: PlanSpec,
    ) -> WorkloadReport {
        let mut dev = consumer_pcie_ssd(fx.2, 13);
        let mut pool = BufferPool::new(4096);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let engine = MultiEngine::new(
            spec,
            ScanInputs {
                table: &fx.0,
                index: Some(&fx.1),
                low: 0,
                high: 0,
            },
            FixedPlanner { plan },
        );
        engine.run(&mut ctx).expect("workload runs")
    }

    #[test]
    fn every_query_answers_the_oracle() {
        let fx = fixture(20_000, 33);
        let spec = WorkloadSpec {
            sessions: 3,
            queries_per_session: 3,
            ..WorkloadSpec::default()
        };
        let report = run_workload(&fx, spec, PlanSpec::Is(IsConfig::default()));
        assert_eq!(report.total_completed(), 9);
        assert_eq!(report.records.len(), 9);
        for r in &report.records {
            let (low, high) = range_for_selectivity(r.selectivity, fx.0.spec().c2_max);
            assert_eq!(
                r.max_c1,
                fx.0.data().naive_max_c1(low, high),
                "session {} query {}",
                r.session,
                r.query_index
            );
        }
        assert_eq!(report.fairness_ratio(), 1.0);
        assert!(report.makespan > SimDuration::ZERO);
    }

    #[test]
    fn concurrent_run_is_deterministic() {
        let fx = fixture(20_000, 33);
        let spec = WorkloadSpec {
            sessions: 4,
            queries_per_session: 2,
            ..WorkloadSpec::default()
        };
        let a = run_workload(
            &fx,
            spec.clone(),
            PlanSpec::SortedIs(SortedIsConfig::default()),
        );
        let b = run_workload(&fx, spec, PlanSpec::SortedIs(SortedIsConfig::default()));
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "double run must be byte-identical"
        );
    }

    #[test]
    fn sessions_overlap_in_time() {
        let fx = fixture(40_000, 33);
        let spec = WorkloadSpec {
            sessions: 8,
            ..WorkloadSpec::default()
        };
        let report = run_workload(&fx, spec, PlanSpec::Is(IsConfig::default()));
        assert!(
            report.records.iter().any(|r| r.active_at_admit > 0),
            "8 closed-loop sessions with short think time must overlap"
        );
    }

    #[test]
    fn scans_and_writes_share_the_machine() {
        use crate::write::{WriteConfig, WriteSystem};
        use pioqo_device::MediaStore;
        use pioqo_storage::decode_heap_page;

        let spec = TableSpec::paper_table(33, 20_000, 31);
        let mut ts = Tablespace::new(4 * spec.n_pages() + 1000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build(
            "c2_idx",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("fits");
        let wspec = TableSpec {
            name: "W33".into(),
            ..TableSpec::paper_table(33, 3_000, 77)
        };
        let wtable = HeapTable::create(wspec, &mut ts).expect("fits");
        let wal = ts.alloc("wal", 512).expect("fits");

        let run = || {
            let mut dev = consumer_pcie_ssd(ts.capacity(), 13);
            let mut pool = BufferPool::new(4096);
            let mut ctx = SimContext::new(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
            );
            let mut ws = WriteSystem::new(
                WriteConfig::default(),
                &wtable,
                wal,
                MediaStore::new(wtable.spec().page_size),
            );
            let engine = MultiEngine::new(
                WorkloadSpec {
                    sessions: 2,
                    queries_per_session: 2,
                    ..WorkloadSpec::default()
                },
                ScanInputs {
                    table: &table,
                    index: Some(&index),
                    low: 0,
                    high: 0,
                },
                FixedPlanner {
                    plan: PlanSpec::Is(IsConfig::default()),
                },
            );
            let report = engine.run_with_writes(&mut ctx, &mut ws).expect("runs");
            (report, ws)
        };
        let (report, ws) = run();
        // Scans still answer the oracle while writers churn.
        assert_eq!(report.total_completed(), 4);
        for r in &report.records {
            let (low, high) = range_for_selectivity(r.selectivity, table.spec().c2_max);
            assert_eq!(r.max_c1, table.data().naive_max_c1(low, high));
        }
        // The report is self-describing and carries the write counters.
        let stats = report.writes.as_ref().expect("write stats present");
        assert!(report.spec.writes.is_some());
        let cfg = WriteConfig::default();
        assert_eq!(
            stats.commits_acked,
            (cfg.writers * cfg.commits_per_writer) as u64
        );
        // The write path quiesced cleanly and its media decodes.
        assert!(ws.finished());
        for dp in ws.touched_pages() {
            let image = ws.media().read(dp).expect("flushed");
            let page = decode_heap_page(ws.table_spec(), image).expect("decodes");
            assert_eq!(page.rows, ws.current_rows(dp));
        }
        // Byte-determinism holds with writers in the mix.
        let (report2, _) = run();
        assert_eq!(report.to_json(), report2.to_json());
    }

    #[test]
    fn horizon_caps_issuance() {
        let fx = fixture(20_000, 33);
        let spec = WorkloadSpec {
            sessions: 2,
            queries_per_session: 1000,
            horizon: Some(SimDuration::from_micros_f64(30_000.0)),
            ..WorkloadSpec::default()
        };
        let report = run_workload(&fx, spec, PlanSpec::Is(IsConfig::default()));
        let total = report.total_completed();
        assert!(total > 0, "some queries run before the horizon");
        assert!(total < 2000, "the horizon must stop issuance");
    }
}
