//! The crash-consistent write path: dirty pages, WAL group commit, and
//! background writeback — all inside the discrete-event loop.
//!
//! [`WriteSystem`] runs a set of closed-loop *writers* against a dedicated
//! write table. Each commit reads its target pages through the shared
//! buffer pool (contending with concurrent scans for frames and device
//! queue slots), applies row updates in memory, logs them to a [`Wal`]
//! (full page image on the first touch of each page, incremental records
//! afterwards — see the WAL module docs for why replay never reads data
//! pages), and then waits for a group-commit tick to seal the records into
//! a segment and write it through the *same* device queue the scans use.
//! A background flusher writes dirty data pages back (never ahead of their
//! log records), and periodic checkpoint records mark writeback progress.
//!
//! Bytes live in a [`MediaStore`] beside the timing model: a page image is
//! stored when (and only when) its write *completion* is durable, so
//! "what is on disk after a crash" is an exact, byte-comparable object.
//! After a crash ([`crate::ExecError::Crashed`]), [`WriteSystem::apply_crash`]
//! translates the device's [`CrashReport`] into torn/lost page images, and
//! [`crate::recovery::recover`] replays the WAL against the media.
//!
//! Determinism: per-writer randomness derives from the config seed, state
//! lives in ordered collections, and every decision happens at a virtual
//! instant — identical configs produce byte-identical WAL extents, media
//! stores and stats.

use crate::engine::{Event, ExecError, SimContext};
use pioqo_bufpool::wal::{Lsn, SealedSegment, Wal, WalOp};
use pioqo_device::{CrashReport, IoStatus, MediaStore};
use pioqo_obs::EventKind;
use pioqo_simkit::{SimDuration, SimRng, SimTime};
use pioqo_storage::{encode_heap_page, Extent, HeapTable, TableSpec};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of a [`WriteSystem`] workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WriteConfig {
    /// Closed-loop writer sessions.
    pub writers: u32,
    /// Commits each writer performs before it stops.
    pub commits_per_writer: u32,
    /// Row updates bundled into each commit.
    pub updates_per_commit: u32,
    /// Mean of the exponential think pause between a writer's commits.
    pub think: SimDuration,
    /// Group-commit tick interval: pending WAL records are sealed into a
    /// segment and written out at this cadence.
    pub group_commit: SimDuration,
    /// Background-flusher tick interval.
    pub flush_interval: SimDuration,
    /// Most dirty pages one flusher tick writes back.
    pub flush_batch: u32,
    /// A checkpoint record is logged every this many flusher ticks
    /// (0 disables periodic checkpoints; the closing checkpoint always
    /// happens).
    pub checkpoint_every: u32,
    /// Master seed; writer `w` draws from `SimRng::derive(seed, w)`.
    pub seed: u64,
}

impl Default for WriteConfig {
    fn default() -> Self {
        WriteConfig {
            writers: 2,
            commits_per_writer: 8,
            updates_per_commit: 4,
            think: SimDuration::from_micros_f64(500.0),
            group_commit: SimDuration::from_micros_f64(200.0),
            flush_interval: SimDuration::from_micros_f64(1_000.0),
            flush_batch: 4,
            checkpoint_every: 4,
            seed: 97,
        }
    }
}

/// Counters a [`WriteSystem`] accumulates (WAL counters are folded in when
/// the stats are read).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WriteStats {
    /// Commits acknowledged durable (their last record reached the
    /// contiguous-durable WAL prefix).
    pub commits_acked: u64,
    /// Row updates applied (and logged).
    pub updates_applied: u64,
    /// Page reads issued by writers to bring commit targets into the pool.
    pub reads_issued: u64,
    /// Group-commit ticks that sealed and submitted a segment.
    pub wal_flushes: u64,
    /// WAL records appended.
    pub wal_records: u64,
    /// WAL segments sealed.
    pub wal_segments: u64,
    /// WAL-extent pages consumed.
    pub wal_pages: u64,
    /// Checkpoint records logged.
    pub checkpoints: u64,
    /// Dirty data pages submitted for writeback.
    pub data_page_flushes: u64,
    /// Background-flusher ticks that ran.
    pub flush_ticks: u64,
}

/// The staged row updates of one commit: `(device_page, slot, new_c1)`.
type CommitUpdates = Vec<(u64, u32, u32)>;

enum WriterState {
    /// Waiting on a think timer.
    Thinking,
    /// Waiting for the commit's target pages to arrive in the pool.
    Reading {
        pending: BTreeSet<u64>,
        updates: CommitUpdates,
    },
    /// Updates applied and logged; waiting for `durable_lsn` to cover them.
    WaitingCommit { lsn: Lsn, appended: SimTime },
    /// All commits done.
    Done,
}

struct Writer {
    rng: SimRng,
    commits_done: u32,
    state: WriterState,
}

/// The write path of one simulated machine. See the module docs.
pub struct WriteSystem {
    cfg: WriteConfig,
    spec: TableSpec,
    extent: Extent,
    wal_extent: Extent,
    /// Current row values of every page a writer ever touched
    /// (device page -> rows in slot order). Untouched pages keep the
    /// table's generated values.
    rows: BTreeMap<u64, Vec<(u32, u32)>>,
    /// Initial row values (the write table's generated data), used to
    /// materialize a page's rows on first touch.
    initial: pioqo_storage::ColumnData,
    wal: Wal,
    media: MediaStore,
    /// Latest update LSN per touched device page.
    page_lsn: BTreeMap<u64, Lsn>,
    /// Pages whose first-touch full image is already logged.
    fpw_done: BTreeSet<u64>,
    /// Oldest possibly-unflushed LSN per dirty page (drives the
    /// conservative checkpoint `flushed_through`).
    dirty_since: BTreeMap<u64, Lsn>,
    /// Sealed WAL segments whose write is in flight, by first WAL page.
    pending_wal: BTreeMap<u64, SealedSegment>,
    /// Data-page writebacks in flight: device page -> (LSN the image
    /// carries, the staged image).
    pending_flush: BTreeMap<u64, (Lsn, Vec<u8>)>,
    /// Writer indexes waiting on a logical read handle.
    read_waiters: BTreeMap<u64, Vec<usize>>,
    /// Timer ids this system owns -> what they drive.
    timers: BTreeMap<u64, TimerKind>,
    writers: Vec<Writer>,
    acked: Vec<Lsn>,
    /// Last LSN covered by a sealed segment; the delta to the next seal is
    /// the group-commit cohort size.
    last_sealed_lsn: Lsn,
    stats: WriteStats,
    final_checkpoint: bool,
    started: bool,
    track: u32,
}

#[derive(Debug, Clone, Copy)]
enum TimerKind {
    Think(usize),
    GroupCommit,
    Flush,
}

impl WriteSystem {
    /// A write system over `table` (its pages are the update targets),
    /// logging into `wal_extent` and persisting into `media`. The table's
    /// extent and the WAL extent must not overlap.
    pub fn new(cfg: WriteConfig, table: &HeapTable, wal_extent: Extent, media: MediaStore) -> Self {
        let extent = table.extent();
        assert!(
            wal_extent.base >= extent.end() || wal_extent.end() <= extent.base,
            "WAL extent overlaps the write table"
        );
        assert!(cfg.writers >= 1, "a write workload needs a writer");
        assert!(cfg.updates_per_commit >= 1, "a commit must update a row");
        let page_size = table.spec().page_size;
        let writers = (0..cfg.writers)
            .map(|w| Writer {
                rng: SimRng::derive(cfg.seed, w as u64),
                commits_done: 0,
                state: WriterState::Thinking,
            })
            .collect();
        WriteSystem {
            spec: table.spec().clone(),
            extent,
            wal_extent,
            rows: BTreeMap::new(),
            initial: table.data().clone(),
            wal: Wal::new(wal_extent.base, wal_extent.pages, page_size),
            media,
            page_lsn: BTreeMap::new(),
            fpw_done: BTreeSet::new(),
            dirty_since: BTreeMap::new(),
            pending_wal: BTreeMap::new(),
            pending_flush: BTreeMap::new(),
            read_waiters: BTreeMap::new(),
            timers: BTreeMap::new(),
            writers,
            acked: Vec::new(),
            last_sealed_lsn: 0,
            stats: WriteStats::default(),
            final_checkpoint: false,
            started: false,
            track: 0,
            cfg,
        }
    }

    /// The configuration this system runs.
    pub fn config(&self) -> &WriteConfig {
        &self.cfg
    }

    /// The media store (post-run/post-crash byte inspection).
    pub fn media(&self) -> &MediaStore {
        &self.media
    }

    /// Consume the system, keeping the media store for recovery.
    pub fn into_media(self) -> MediaStore {
        self.media
    }

    /// The write-ahead log (durability watermarks for assertions).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The WAL extent this system logs into.
    pub fn wal_extent(&self) -> Extent {
        self.wal_extent
    }

    /// The write table's spec.
    pub fn table_spec(&self) -> &TableSpec {
        &self.spec
    }

    /// The write table's extent.
    pub fn table_extent(&self) -> Extent {
        self.extent
    }

    /// LSNs of every acknowledged commit, in ack order. After a crash,
    /// recovery must find each of these within the durable WAL prefix —
    /// that is the durability contract the crash suite asserts.
    pub fn acked_lsns(&self) -> &[Lsn] {
        &self.acked
    }

    /// Counters so far (WAL counters folded in).
    pub fn stats(&self) -> WriteStats {
        let w = self.wal.stats();
        WriteStats {
            wal_records: w.records,
            wal_segments: w.segments,
            wal_pages: w.pages,
            checkpoints: w.checkpoints,
            ..self.stats.clone()
        }
    }

    /// True while data-page writeback is in flight — the signal the
    /// concurrent engine forwards to the admission planner's background
    /// hooks, so checkpoint writeback claims a queue-depth lease.
    pub fn checkpoint_active(&self) -> bool {
        !self.pending_flush.is_empty()
    }

    /// True once every writer committed, every record is durable, and the
    /// closing checkpoint landed.
    pub fn finished(&self) -> bool {
        self.started
            && self.final_checkpoint
            && self
                .writers
                .iter()
                .all(|w| matches!(w.state, WriterState::Done))
            && !self.wal.has_pending()
            && !self.wal.has_inflight()
            && self.pending_wal.is_empty()
            && self.pending_flush.is_empty()
            && self.read_waiters.is_empty()
    }

    /// Arm the initial think/group-commit/flusher timers. Call once before
    /// stepping the event loop.
    pub fn start(&mut self, ctx: &mut SimContext<'_>) {
        assert!(!self.started, "write system started twice");
        self.started = true;
        self.track = ctx.trace_track("writes");
        for w in 0..self.writers.len() {
            let delay = self.think_sample(w);
            let id = ctx.schedule_timer(delay);
            self.timers.insert(id, TimerKind::Think(w));
        }
        let id = ctx.schedule_timer(self.cfg.group_commit);
        self.timers.insert(id, TimerKind::GroupCommit);
        let id = ctx.schedule_timer(self.cfg.flush_interval);
        self.timers.insert(id, TimerKind::Flush);
    }

    fn think_sample(&mut self, w: usize) -> SimDuration {
        let u = self.writers[w].rng.unit();
        self.cfg.think * (-(1.0 - u).ln())
    }

    /// Handle one engine event. Returns `true` when the event was a timer
    /// owned by this system (sessions must not see it); all other events
    /// are shared and the caller keeps broadcasting them.
    pub fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: &Event) -> Result<bool, ExecError> {
        match *ev {
            Event::Timer { id, .. } => {
                let Some(kind) = self.timers.remove(&id) else {
                    return Ok(false);
                };
                match kind {
                    TimerKind::Think(w) => self.begin_commit(ctx, w)?,
                    TimerKind::GroupCommit => {
                        self.group_commit_tick(ctx)?;
                        if !self.finished() {
                            let id = ctx.schedule_timer(self.cfg.group_commit);
                            self.timers.insert(id, TimerKind::GroupCommit);
                        }
                    }
                    TimerKind::Flush => {
                        self.flush_tick(ctx)?;
                        if !self.finished() {
                            let id = ctx.schedule_timer(self.cfg.flush_interval);
                            self.timers.insert(id, TimerKind::Flush);
                        }
                    }
                }
                Ok(true)
            }
            Event::IoPage {
                io,
                device_page,
                status,
                attempts,
            } => {
                let Some(waiters) = self.read_waiters.remove(&io) else {
                    return Ok(false);
                };
                if status == IoStatus::Error {
                    return Err(crate::engine::io_failure("write", device_page, attempts));
                }
                ctx.pool.admit_prefetched(device_page)?;
                for w in waiters {
                    let done = match &mut self.writers[w].state {
                        WriterState::Reading { pending, .. } => {
                            pending.remove(&io);
                            pending.is_empty()
                        }
                        _ => false,
                    };
                    if done {
                        self.apply_commit(ctx, w)?;
                    }
                }
                Ok(false)
            }
            Event::IoWrite {
                start,
                len,
                status,
                attempts,
                ..
            } => {
                if let Some(seg) = self.pending_wal.remove(&start) {
                    if status == IoStatus::Error {
                        return Err(crate::engine::io_failure("wal", start, attempts));
                    }
                    let ps = self.spec.page_size as usize;
                    for p in 0..seg.pages as u64 {
                        let from = (p as usize) * ps;
                        self.media.write(start + p, &seg.image[from..from + ps]);
                    }
                    self.wal.mark_durable(start);
                    ctx.emit(
                        EventKind::WalDurable,
                        self.track,
                        0,
                        start,
                        self.wal.durable_lsn(),
                    );
                    self.ack_commits(ctx);
                } else if let Some((lsn, image)) = self.pending_flush.remove(&start) {
                    if status == IoStatus::Error {
                        return Err(crate::engine::io_failure("flush", start, attempts));
                    }
                    debug_assert_eq!(len, 1, "data-page flushes are single-page");
                    self.media.write(start, &image);
                    if self.page_lsn.get(&start) == Some(&lsn) {
                        // No update raced the flush: the page is clean.
                        ctx.pool.mark_clean(start)?;
                        self.dirty_since.remove(&start);
                    } else {
                        // Updates landed while the flush was in flight; the
                        // oldest un-flushed one is at least lsn + 1.
                        self.dirty_since.insert(start, lsn + 1);
                    }
                }
                Ok(false)
            }
            _ => Ok(false),
        }
    }

    /// A writer's think timer fired: stage a commit's updates and fetch the
    /// target pages through the pool.
    fn begin_commit(&mut self, ctx: &mut SimContext<'_>, w: usize) -> Result<(), ExecError> {
        let mut updates: CommitUpdates = Vec::with_capacity(self.cfg.updates_per_commit as usize);
        for _ in 0..self.cfg.updates_per_commit {
            let rng = &mut self.writers[w].rng;
            let row = rng.below(self.spec.rows);
            let value = rng.next_u64() as u32;
            let dp = self.extent.device_page(self.spec.page_of_row(row));
            updates.push((dp, self.spec.slot_of_row(row), value));
        }
        let mut pending: BTreeSet<u64> = BTreeSet::new();
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for &(dp, _, _) in &updates {
            if seen.insert(dp) && !ctx.pool.contains(dp) {
                let io = ctx.read_page(dp);
                self.read_waiters.entry(io).or_default().push(w);
                pending.insert(io);
                self.stats.reads_issued += 1;
            }
        }
        self.writers[w].state = WriterState::Reading { pending, updates };
        if matches!(&self.writers[w].state, WriterState::Reading { pending, .. } if pending.is_empty())
        {
            self.apply_commit(ctx, w)?;
        }
        Ok(())
    }

    /// Every target page is resident: apply the staged updates, log them,
    /// dirty the pages, and wait for durability.
    fn apply_commit(&mut self, ctx: &mut SimContext<'_>, w: usize) -> Result<(), ExecError> {
        let updates = match std::mem::replace(&mut self.writers[w].state, WriterState::Thinking) {
            WriterState::Reading { updates, .. } => updates,
            other => {
                self.writers[w].state = other;
                return Err(ExecError::Internal {
                    detail: "commit applied in a non-reading state",
                });
            }
        };
        let mut last = 0;
        for (dp, slot, value) in updates {
            // The page may have been evicted between its read completing
            // and the last of the commit's reads arriving; re-admit it (a
            // refetch the pool accounts for).
            if !ctx.pool.contains(dp) {
                ctx.pool.admit(dp)?;
            }
            let local = dp - self.extent.base;
            let spec = &self.spec;
            let initial = &self.initial;
            let rows = self.rows.entry(dp).or_insert_with(|| {
                spec.rows_in_page(local)
                    .map(|r| (initial.c1(r), initial.c2(r)))
                    .collect()
            });
            rows[slot as usize].0 = value;
            let lsn = if self.fpw_done.insert(dp) {
                // First touch ever: log the full post-update image so
                // replay never needs the (possibly torn) data page.
                let image = encode_heap_page(&self.spec, local, rows);
                self.wal.append(WalOp::PageImage {
                    page: dp,
                    image: image.to_vec(),
                })
            } else {
                self.wal.append(WalOp::Update {
                    page: dp,
                    slot,
                    value,
                })
            };
            self.page_lsn.insert(dp, lsn);
            self.dirty_since.entry(dp).or_insert(lsn);
            ctx.pool.mark_dirty(dp)?;
            self.stats.updates_applied += 1;
            last = lsn;
        }
        self.writers[w].state = WriterState::WaitingCommit {
            lsn: last,
            appended: ctx.now(),
        };
        Ok(())
    }

    /// Group commit: seal pending records into a segment and write it.
    fn group_commit_tick(&mut self, ctx: &mut SimContext<'_>) -> Result<(), ExecError> {
        if !self.wal.has_pending() {
            return Ok(());
        }
        self.submit_seal(ctx)
    }

    fn submit_seal(&mut self, ctx: &mut SimContext<'_>) -> Result<(), ExecError> {
        let Some(seg) = self.wal.seal() else {
            if self.wal.is_full() {
                return Err(ExecError::Internal {
                    detail: "WAL extent exhausted; size the extent for the workload",
                });
            }
            return Ok(());
        };
        ctx.emit(
            EventKind::WalFlush,
            self.track,
            0,
            seg.start_page,
            seg.pages as u64,
        );
        ctx.write_block(seg.start_page, seg.pages);
        ctx.metric_hist(
            "wal_group_commit_records",
            seg.last_lsn.saturating_sub(self.last_sealed_lsn),
        );
        self.last_sealed_lsn = seg.last_lsn;
        self.pending_wal.insert(seg.start_page, seg);
        self.stats.wal_flushes += 1;
        Ok(())
    }

    /// Background flusher: write back a batch of dirty pages whose records
    /// are durable, checkpoint on cadence, and close the log when the
    /// writers are done and everything is clean.
    fn flush_tick(&mut self, ctx: &mut SimContext<'_>) -> Result<(), ExecError> {
        self.stats.flush_ticks += 1;
        ctx.metric_sample(
            "wal_flush_lag_lsn",
            self.wal.last_lsn().saturating_sub(self.wal.durable_lsn()),
        );
        let mut dirty = Vec::new();
        ctx.pool.dirty_pages(&mut dirty);
        let durable = self.wal.durable_lsn();
        let mut submitted = 0u32;
        for dp in dirty {
            if submitted >= self.cfg.flush_batch {
                break;
            }
            if !self.extent.contains(dp) || self.pending_flush.contains_key(&dp) {
                continue;
            }
            let lsn = *self.page_lsn.get(&dp).expect("dirty page has an LSN");
            if lsn > durable {
                // WAL rule: never write a data page ahead of its log.
                continue;
            }
            let local = dp - self.extent.base;
            let rows = self.rows.get(&dp).expect("dirty page has rows");
            let image = encode_heap_page(&self.spec, local, rows);
            ctx.emit(EventKind::PageFlush, self.track, 0, dp, 0);
            ctx.write_page(dp);
            self.pending_flush.insert(dp, (lsn, image.to_vec()));
            self.stats.data_page_flushes += 1;
            submitted += 1;
        }
        let writers_done = self
            .writers
            .iter()
            .all(|w| matches!(w.state, WriterState::Done));
        if writers_done && !self.final_checkpoint {
            // Closing checkpoint: once every page is clean and no flush is
            // in flight, certify the whole log and stop.
            let all_clean = ctx.pool.dirty_count() == 0 && self.pending_flush.is_empty();
            if all_clean && !self.wal.has_pending() {
                self.append_checkpoint(ctx);
                self.final_checkpoint = true;
                self.submit_seal(ctx)?;
            }
        } else if self.cfg.checkpoint_every > 0
            && self
                .stats
                .flush_ticks
                .is_multiple_of(self.cfg.checkpoint_every as u64)
            && self.wal.last_lsn() > 0
        {
            self.append_checkpoint(ctx);
            self.submit_seal(ctx)?;
        }
        Ok(())
    }

    /// Log a writeback-progress checkpoint. `flushed_through` is the
    /// conservative largest LSN all of whose updates are durably on media.
    fn append_checkpoint(&mut self, ctx: &mut SimContext<'_>) {
        let flushed_through = match self.dirty_since.values().min() {
            Some(&oldest) => oldest.saturating_sub(1),
            None => self.wal.last_lsn(),
        };
        let lsn = self.wal.append(WalOp::Checkpoint { flushed_through });
        ctx.emit(EventKind::Checkpoint, self.track, 0, lsn, flushed_through);
    }

    /// Acknowledge every commit whose records the durable prefix covers.
    fn ack_commits(&mut self, ctx: &mut SimContext<'_>) {
        let durable = self.wal.durable_lsn();
        let now = ctx.now();
        for w in 0..self.writers.len() {
            let acked = match self.writers[w].state {
                WriterState::WaitingCommit { lsn, appended } if lsn <= durable => {
                    ctx.record_commit_ack(now.since(appended).as_nanos() / 1000);
                    self.acked.push(lsn);
                    true
                }
                _ => false,
            };
            if !acked {
                continue;
            }
            self.stats.commits_acked += 1;
            self.writers[w].commits_done += 1;
            if self.writers[w].commits_done >= self.cfg.commits_per_writer {
                self.writers[w].state = WriterState::Done;
            } else {
                self.writers[w].state = WriterState::Thinking;
                let delay = self.think_sample(w);
                let id = ctx.schedule_timer(delay);
                self.timers.insert(id, TimerKind::Think(w));
            }
        }
    }

    /// Translate a device [`CrashReport`] into media state: durable
    /// completions already landed through [`on_event`](Self::on_event);
    /// here every in-flight write becomes, per page and per the seeded
    /// coin, either nothing (lost), a full page, or a torn page.
    pub fn apply_crash(&mut self, report: &CrashReport, seed: u64) {
        for req in &report.torn_writes {
            let staged: Option<Vec<u8>> = if let Some(seg) = self.pending_wal.get(&req.offset) {
                Some(seg.image.clone())
            } else {
                self.pending_flush
                    .get(&req.offset)
                    .map(|(_, image)| image.clone())
            };
            let Some(bytes) = staged else {
                continue; // a write this system did not stage (foreign traffic)
            };
            let ps = self.spec.page_size as usize;
            for p in 0..req.len as u64 {
                let page = req.offset + p;
                let mut rng =
                    SimRng::seeded(seed ^ page.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x544F_524E);
                let u = rng.unit();
                if u < 0.25 {
                    // This sector never made it out of the device cache.
                    continue;
                }
                let from = (p as usize) * ps;
                self.media.write(page, &bytes[from..from + ps]);
                if u >= 0.5 {
                    // The adversarial (and most common) outcome: the sector
                    // landed, damaged.
                    self.media.tear(page, seed);
                }
            }
        }
        // Lost writes left no trace; either way nothing stays staged.
        self.pending_wal.clear();
        self.pending_flush.clear();
    }

    /// The current (in-memory) rows of device page `dp` — the crash-free
    /// oracle's view. Pages never touched return the generated data.
    pub fn current_rows(&self, dp: u64) -> Vec<(u32, u32)> {
        match self.rows.get(&dp) {
            Some(r) => r.clone(),
            None => {
                let local = dp - self.extent.base;
                self.spec
                    .rows_in_page(local)
                    .map(|r| (self.initial.c1(r), self.initial.c2(r)))
                    .collect()
            }
        }
    }

    /// Device pages a writer ever updated, in page order.
    pub fn touched_pages(&self) -> Vec<u64> {
        self.rows.keys().copied().collect()
    }
}

/// Drive a standalone write workload (no concurrent scans) to completion.
/// Returns [`ExecError::Crashed`] as soon as the device halts, leaving the
/// system's WAL/media state exactly as the crash left it.
pub fn drive_writes(ctx: &mut SimContext<'_>, ws: &mut WriteSystem) -> Result<(), ExecError> {
    ws.start(ctx);
    let mut events: Vec<Event> = Vec::new();
    while !ws.finished() {
        if ctx.device_crashed() {
            return Err(ExecError::Crashed);
        }
        events.clear();
        if !ctx.step(&mut events) {
            if ctx.device_crashed() {
                return Err(ExecError::Crashed);
            }
            return Err(ExecError::Internal {
                detail: "write workload stalled before finishing",
            });
        }
        for ev in &events {
            ws.on_event(ctx, ev)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuConfig;
    use crate::engine::CpuCosts;
    use pioqo_bufpool::BufferPool;
    use pioqo_device::presets::consumer_pcie_ssd;
    use pioqo_storage::{decode_heap_page, Tablespace};

    fn fixture() -> (HeapTable, Extent, u64) {
        let spec = TableSpec::paper_table(33, 3_000, 11);
        let mut ts = Tablespace::new(spec.n_pages() + 600);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let wal = ts.alloc("wal", 512).expect("fits");
        (table, wal, ts.capacity())
    }

    fn run(cfg: WriteConfig) -> (WriteSystem, WriteStats) {
        let (table, wal, cap) = fixture();
        let mut dev = consumer_pcie_ssd(cap, 3);
        let mut pool = BufferPool::new(1024);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let mut ws = WriteSystem::new(cfg, &table, wal, MediaStore::new(4096));
        drive_writes(&mut ctx, &mut ws).expect("workload completes");
        let stats = ws.stats();
        (ws, stats)
    }

    #[test]
    fn every_commit_acks_and_media_matches_memory() {
        let cfg = WriteConfig::default();
        let expect = (cfg.writers * cfg.commits_per_writer) as u64;
        let (ws, stats) = run(cfg);
        assert_eq!(stats.commits_acked, expect);
        assert_eq!(ws.acked_lsns().len(), expect as usize);
        assert!(stats.wal_segments > 0 && stats.data_page_flushes > 0);
        assert!(ws.wal().durable_lsn() >= *ws.acked_lsns().last().expect("acked"));
        // Every touched page was flushed, and its media image decodes to
        // exactly the in-memory rows.
        for dp in ws.touched_pages() {
            let image = ws.media().read(dp).expect("touched page flushed");
            let page = decode_heap_page(ws.table_spec(), image).expect("clean page decodes");
            assert_eq!(page.rows, ws.current_rows(dp), "page {dp}");
        }
    }

    #[test]
    fn closing_checkpoint_certifies_the_whole_log() {
        let (ws, stats) = run(WriteConfig::default());
        assert!(stats.checkpoints >= 1);
        let scan = Wal::scan(
            ws.wal_extent().base,
            ws.wal_extent().pages,
            ws.table_spec().page_size,
            |p| ws.media().read(p).map(<[u8]>::to_vec),
        );
        // The closing checkpoint is the last record and certifies every
        // update before it.
        let last = scan.records.last().expect("non-empty log");
        match last.op {
            WalOp::Checkpoint { flushed_through } => {
                assert_eq!(
                    flushed_through,
                    last.lsn - 1,
                    "all updates flushed at close"
                );
            }
            ref other => panic!("log must close with a checkpoint, got {other:?}"),
        }
        assert_eq!(scan.durable_lsn, ws.wal().durable_lsn());
    }

    #[test]
    fn write_workload_is_deterministic() {
        let a = run(WriteConfig::default());
        let b = run(WriteConfig::default());
        assert_eq!(a.1, b.1, "stats must match");
        assert_eq!(a.0.acked_lsns(), b.0.acked_lsns());
        let pages_a: Vec<_> = a.0.media().pages().map(|(p, i)| (p, i.to_vec())).collect();
        let pages_b: Vec<_> = b.0.media().pages().map(|(p, i)| (p, i.to_vec())).collect();
        assert_eq!(pages_a, pages_b, "media must be byte-identical");
    }

    #[test]
    fn flusher_never_writes_ahead_of_the_log() {
        // White-box: with group commit much slower than the flusher, dirty
        // pages pile up waiting for durability; the run must still finish
        // with every flush gated behind its records.
        let cfg = WriteConfig {
            group_commit: SimDuration::from_micros_f64(2_000.0),
            flush_interval: SimDuration::from_micros_f64(300.0),
            ..WriteConfig::default()
        };
        let (ws, stats) = run(cfg);
        assert!(stats.commits_acked > 0);
        // Replaying the durable log must reproduce the media exactly —
        // which fails if any page was flushed ahead of its records.
        for dp in ws.touched_pages() {
            let image = ws.media().read(dp).expect("flushed");
            decode_heap_page(ws.table_spec(), image).expect("decodes");
        }
    }
}
