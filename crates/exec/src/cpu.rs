//! CPU scheduler with a hyper-threading capacity model.
//!
//! The paper's machine is a quad-core Xeon with hyper-threading (4 physical,
//! 8 logical cores). PFTS scaling plateaus at parallel degree 8 precisely
//! because logical cores beyond the physical count add only fractional
//! capacity (§3.2: "increasing the parallel degree to a number larger than
//! the number of logical cores would not be helpful anymore").
//!
//! Model: with `n` runnable tasks the aggregate compute capacity (in
//! core-equivalents) is
//!
//! ```text
//! C(n) = min(n, physical)                                 n <= physical
//! C(n) = physical + ht_efficiency * (min(n, logical) - physical)   otherwise
//! ```
//!
//! and capacity is shared equally (processor sharing), so each task
//! progresses at `C(n)/n` core-equivalents. This is the standard fluid
//! approximation of an OS round-robin scheduler, and it is what makes
//! "degree 32 on 8 logical cores" cost the right amount.

use pioqo_simkit::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// CPU geometry and hyper-threading efficiency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Physical cores.
    pub physical: u32,
    /// Logical (SMT) cores; must be >= `physical`.
    pub logical: u32,
    /// Extra core-equivalents contributed by each logical core beyond the
    /// physical count (0.0 = SMT useless, 1.0 = SMT as good as a core).
    pub ht_efficiency: f64,
}

impl CpuConfig {
    /// The paper's quad-core hyper-threaded Xeon W3530.
    pub fn paper_xeon() -> CpuConfig {
        CpuConfig {
            physical: 4,
            logical: 8,
            ht_efficiency: 0.25,
        }
    }

    /// Aggregate capacity in core-equivalents with `n` runnable tasks.
    pub fn capacity(&self, n: usize) -> f64 {
        let n = n as f64;
        let phys = self.physical as f64;
        if n <= phys {
            n
        } else {
            let extra = (n.min(self.logical as f64) - phys).max(0.0);
            phys + self.ht_efficiency * extra
        }
    }
}

/// Identifier of a submitted compute task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Work residue below this threshold (in core-microseconds, 0.1 ns) counts
/// as complete — it absorbs integer-clock rounding.
const COMPLETE_EPS: f64 = 1e-4;

#[derive(Debug)]
struct Task {
    /// Remaining work in core-microseconds.
    remaining: f64,
}

/// Processor-sharing CPU scheduler. See the module docs.
#[derive(Debug)]
pub struct CpuScheduler {
    cfg: CpuConfig,
    tasks: BTreeMap<TaskId, Task>,
    next_id: u64,
    /// Time at which `remaining` values were last brought current.
    last_update: SimTime,
}

impl CpuScheduler {
    /// A scheduler for the given CPU.
    pub fn new(cfg: CpuConfig) -> CpuScheduler {
        CpuScheduler {
            cfg,
            tasks: BTreeMap::new(),
            next_id: 0,
            last_update: SimTime::ZERO,
        }
    }

    /// The CPU configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Number of runnable tasks.
    pub fn runnable(&self) -> usize {
        self.tasks.len()
    }

    /// Per-task progress rate (core-equivalents) right now.
    fn rate(&self) -> f64 {
        let n = self.tasks.len();
        if n == 0 {
            return 0.0;
        }
        self.cfg.capacity(n) / n as f64
    }

    /// Bring all `remaining` values current to `now`.
    fn settle(&mut self, now: SimTime) {
        let dt_us = now.since(self.last_update).as_micros_f64();
        if dt_us > 0.0 {
            let rate = self.rate();
            if rate > 0.0 {
                for t in self.tasks.values_mut() {
                    t.remaining -= dt_us * rate;
                }
            }
        }
        self.last_update = now;
    }

    /// Submit a compute task of `work_us` core-microseconds at time `now`.
    pub fn submit(&mut self, now: SimTime, work_us: f64) -> TaskId {
        self.settle(now);
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.tasks.insert(
            id,
            Task {
                remaining: work_us.max(0.0),
            },
        );
        id
    }

    /// Earliest time a task will finish (given no further submissions),
    /// or `None` when idle.
    pub fn next_event(&self) -> Option<SimTime> {
        let rate = self.rate();
        if rate == 0.0 {
            return None;
        }
        let min_remaining = self
            .tasks
            .values()
            .map(|t| t.remaining)
            .fold(f64::INFINITY, f64::min);
        if min_remaining <= COMPLETE_EPS {
            // Finished (possibly with float residue): completes "now".
            return Some(self.last_update);
        }
        let dt = SimDuration::from_micros_f64(min_remaining / rate);
        // Rounding the event time to the integer clock must never produce a
        // zero-length step for unfinished work, or the event loop would spin
        // without progress; force at least one nanosecond.
        let dt = if dt.is_zero() {
            SimDuration::from_nanos(1)
        } else {
            dt
        };
        Some(self.last_update + dt)
    }

    /// Advance to `now`, appending finished task ids to `out`.
    pub fn advance(&mut self, now: SimTime, out: &mut Vec<TaskId>) {
        self.settle(now);
        let mut finished: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.remaining <= COMPLETE_EPS)
            .map(|(&id, _)| id)
            .collect();
        finished.sort_unstable();
        for id in &finished {
            self.tasks.remove(id);
        }
        out.extend(finished);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon() -> CpuScheduler {
        CpuScheduler::new(CpuConfig::paper_xeon())
    }

    fn run_to_idle(cpu: &mut CpuScheduler) -> (SimTime, Vec<TaskId>) {
        let mut done = Vec::new();
        let mut now = SimTime::ZERO;
        while let Some(t) = cpu.next_event() {
            now = t;
            cpu.advance(now, &mut done);
        }
        (now, done)
    }

    #[test]
    fn capacity_model() {
        let c = CpuConfig::paper_xeon();
        assert_eq!(c.capacity(1), 1.0);
        assert_eq!(c.capacity(4), 4.0);
        assert_eq!(c.capacity(8), 5.0); // 4 + 0.25*4
        assert_eq!(c.capacity(32), 5.0); // oversubscription adds nothing
    }

    #[test]
    fn single_task_runs_at_full_speed() {
        let mut cpu = xeon();
        cpu.submit(SimTime::ZERO, 100.0);
        let (end, done) = run_to_idle(&mut cpu);
        assert_eq!(done.len(), 1);
        assert!((end.as_micros_f64() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn four_tasks_run_in_parallel() {
        let mut cpu = xeon();
        for _ in 0..4 {
            cpu.submit(SimTime::ZERO, 100.0);
        }
        let (end, done) = run_to_idle(&mut cpu);
        assert_eq!(done.len(), 4);
        assert!((end.as_micros_f64() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn eight_tasks_see_ht_capacity() {
        let mut cpu = xeon();
        for _ in 0..8 {
            cpu.submit(SimTime::ZERO, 100.0);
        }
        // 800 core-us of work at 5 core-equivalents -> 160 us.
        let (end, _) = run_to_idle(&mut cpu);
        assert!((end.as_micros_f64() - 160.0).abs() < 1e-6, "{end}");
    }

    #[test]
    fn oversubscription_no_faster_than_logical() {
        let mut cpu = xeon();
        for _ in 0..32 {
            cpu.submit(SimTime::ZERO, 100.0);
        }
        // 3200 core-us at 5 -> 640 us.
        let (end, _) = run_to_idle(&mut cpu);
        assert!((end.as_micros_f64() - 640.0).abs() < 1e-6, "{end}");
    }

    #[test]
    fn staggered_submission_shares_fairly() {
        let mut cpu = CpuScheduler::new(CpuConfig {
            physical: 1,
            logical: 1,
            ht_efficiency: 0.0,
        });
        let a = cpu.submit(SimTime::ZERO, 100.0);
        // At t=50, task a has 50 left; b arrives, they share the core.
        let b = cpu.submit(SimTime::from_micros(50), 100.0);
        let mut done = Vec::new();
        let t1 = cpu.next_event().expect("busy");
        cpu.advance(t1, &mut done);
        // a finishes after 50 more core-us at rate 1/2 -> t = 150.
        assert_eq!(done, vec![a]);
        assert!((t1.as_micros_f64() - 150.0).abs() < 1e-6);
        let t2 = cpu.next_event().expect("b still running");
        done.clear();
        cpu.advance(t2, &mut done);
        // b: progresses 50 core-us by t=150 (rate 1/2), then runs alone at
        // full speed for its remaining 50 -> finishes at t=200.
        assert_eq!(done, vec![b]);
        assert!((t2.as_micros_f64() - 200.0).abs() < 1e-6);
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut cpu = xeon();
        cpu.submit(SimTime::from_micros(5), 0.0);
        let t = cpu.next_event().expect("task pending");
        assert_eq!(t, SimTime::from_micros(5));
        let mut done = Vec::new();
        cpu.advance(t, &mut done);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn idle_scheduler_has_no_events() {
        let cpu = xeon();
        assert_eq!(cpu.next_event(), None);
        assert_eq!(cpu.runnable(), 0);
    }
}
