//! # pioqo-exec — scan operator execution engine
//!
//! The paper's access methods, executed over simulated hardware:
//!
//! * [`FtsConfig`] — full table scan / parallel full table scan (Fig. 2),
//!   with asynchronous block prefetching;
//! * [`IsConfig`] — index scan / parallel index scan (Fig. 3), with the
//!   §3.3 per-worker, per-leaf asynchronous prefetch ring;
//! * [`SortedIsConfig`] — sorted index scan (§3.1), each table page fetched
//!   at most once.
//!
//! Everything runs inside one discrete-event loop ([`SimContext`]) binding
//! the device model, a hyper-threaded CPU scheduler ([`CpuScheduler`]) and
//! the buffer pool. A query is described by a [`PlanSpec`] + [`ScanInputs`]
//! and executed by [`execute`] (single query) or interleaved with others by
//! [`MultiEngine`] (concurrent closed-loop sessions). Each scan returns
//! [`ScanMetrics`]: the query answer, the virtual runtime, and the observed
//! I/O profile (queue depth, throughput), which is what the paper's figures
//! plot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cpu;
pub mod driver;
pub mod engine;
pub mod execute;
pub mod fts;
pub mod is;
pub mod metrics;
pub mod recovery;
pub mod session;
pub mod shared;
pub mod sorted_is;
pub mod write;

pub use cpu::{CpuConfig, CpuScheduler, TaskId};
pub use driver::{QueryAnswer, QueryDriver};
pub use engine::{CpuCosts, Event, ExecError, IoProfile, ResilienceStats, RetryPolicy, SimContext};
pub use execute::{execute, make_driver, PlanSpec, ScanInputs, ScanOutput};
pub use fts::FtsConfig;
pub use is::IsConfig;
pub use metrics::ScanMetrics;
pub use recovery::{recover, RecoveryStats};
pub use session::{
    AdmissionPlanner, FixedPlanner, MultiEngine, QueryAdmission, QueryRecord, SessionSummary,
    SharedChoice, ThinkTime, WorkloadReport, WorkloadSpec,
};
pub use shared::{Detached, ScanHub, SharedScanStats};
pub use sorted_is::SortedIsConfig;
pub use write::{drive_writes, WriteConfig, WriteStats, WriteSystem};
