//! # pioqo-exec — scan operator execution engine
//!
//! The paper's four access methods, executed over simulated hardware:
//!
//! * [`run_fts`] — full table scan / parallel full table scan (Fig. 2),
//!   with asynchronous block prefetching;
//! * [`run_is`] — index scan / parallel index scan (Fig. 3), with the
//!   §3.3 per-worker, per-leaf asynchronous prefetch ring.
//!
//! Everything runs inside one discrete-event loop ([`SimContext`]) binding
//! the device model, a hyper-threaded CPU scheduler ([`CpuScheduler`]) and
//! the buffer pool. Each scan returns [`ScanMetrics`]: the query answer, the
//! virtual runtime, and the observed I/O profile (queue depth, throughput),
//! which is what the paper's figures plot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cpu;
pub mod engine;
pub mod fts;
pub mod is;
pub mod metrics;
pub mod sorted_is;

pub use cpu::{CpuConfig, CpuScheduler, TaskId};
pub use engine::{CpuCosts, Event, ExecError, IoProfile, ResilienceStats, RetryPolicy, SimContext};
pub use fts::{run_fts, run_fts_traced, FtsConfig};
pub use is::{run_is, run_is_traced, IsConfig};
pub use metrics::ScanMetrics;
pub use sorted_is::{run_sorted_is, run_sorted_is_traced, SortedIsConfig};
