//! # pioqo-exec — query execution engine
//!
//! The paper's access methods plus a real query layer, executed over
//! simulated hardware:
//!
//! * [`FtsConfig`] — full table scan / parallel full table scan (Fig. 2),
//!   with asynchronous block prefetching;
//! * [`IsConfig`] — index scan / parallel index scan (Fig. 3), with the
//!   §3.3 per-worker, per-leaf asynchronous prefetch ring;
//! * [`SortedIsConfig`] — sorted index scan (§3.1), each table page fetched
//!   at most once;
//! * [`InlConfig`] — index-nested-loop join (random probes into the inner
//!   index, wants deep queues);
//! * [`HashJoinConfig`] — hybrid hash join (sequential partitioned I/O
//!   through the spill write path).
//!
//! Everything runs inside one discrete-event loop ([`SimContext`]) binding
//! the device model, a hyper-threaded CPU scheduler ([`CpuScheduler`]) and
//! the buffer pool. A query is a [`QuerySpec`]: the table, a [`Predicate`]
//! tree, a [`Projection`], an [`Aggregate`] and a physical [`PlanSpec`] —
//! predicates and projections are evaluated *inside* the scan drivers
//! (pushdown: each page is decoded once and filtered at scan rate, never
//! materialized upward). [`execute`] runs a single query; [`MultiEngine`]
//! interleaves concurrent closed-loop sessions. Each query returns
//! [`ScanMetrics`]: the answer (aggregate, row counts, an order-independent
//! result fingerprint), the virtual runtime, and the observed I/O profile
//! (queue depth, throughput), which is what the paper's figures plot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cpu;
pub mod driver;
pub mod engine;
pub mod execute;
pub mod fts;
pub mod is;
pub mod join;
pub mod metrics;
pub mod query;
pub mod recovery;
pub mod session;
pub mod shared;
pub mod sorted_is;
pub mod write;

pub use cpu::{CpuConfig, CpuScheduler, TaskId};
pub use driver::{QueryAnswer, QueryDriver};
pub use engine::{CpuCosts, Event, ExecError, IoProfile, ResilienceStats, RetryPolicy, SimContext};
pub use execute::{execute, make_driver, PlanSpec, ScanOutput};
pub use fts::FtsConfig;
pub use is::IsConfig;
pub use join::{HashJoinConfig, HashJoinDriver, InlConfig, InlDriver};
pub use metrics::ScanMetrics;
pub use query::{
    oracle, Aggregate, CmpOp, Col, JoinClause, Predicate, Projection, QuerySpec, RowAcc, RowEval,
};
pub use recovery::{recover, RecoveryStats};
pub use session::{
    AdmissionPlanner, FixedPlanner, MultiEngine, QueryAdmission, QueryRecord, SessionSummary,
    SharedChoice, ThinkTime, WorkloadReport, WorkloadSpec,
};
pub use shared::{Detached, ScanHub, SharedScanStats};
pub use sorted_is::SortedIsConfig;
pub use write::{drive_writes, WriteConfig, WriteStats, WriteSystem};
