//! The simulation context shared by all operators: one event loop binding a
//! device, the CPU scheduler and the buffer pool, with single-page read
//! deduplication and queue-depth profiling.

use crate::cpu::{CpuConfig, CpuScheduler, TaskId};
use pioqo_bufpool::{BufferPool, PoolEvent};
use pioqo_device::{DeviceModel, IoCompletion, IoRequest, IoStatus};
use pioqo_obs::{EventKind, HistSet, MetricsRegistry, SeriesHandle, TraceEvent, TraceSink};
use pioqo_simkit::{EventQueue, SimDuration, SimTime, TimeWeighted};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// CPU work constants for the scan operators, in microseconds.
///
/// These play the role of SQL Anywhere's calibrated CPU cost-model unit
/// costs; the defaults are tuned so the simulated throughput hierarchy
/// matches the paper's Table 3 (see EXPERIMENTS.md).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuCosts {
    /// Fixed work to process one heap page in a table scan (latching,
    /// slot-array walk, page checksum).
    pub page_overhead_us: f64,
    /// Work per row evaluated by the table-scan predicate.
    pub row_scan_us: f64,
    /// Work per index-scan row: locate slot, fetch row, evaluate output.
    pub row_lookup_us: f64,
    /// Work to decode one index leaf page.
    pub leaf_decode_us: f64,
    /// Work per `(key, row_id)` entry extracted from a leaf.
    pub entry_decode_us: f64,
    /// One-time work to start a worker (thread wake-up, plan fragment
    /// setup) — the §4.3 "overhead cost for synchronization and
    /// coordination" that makes parallel plans not free.
    pub worker_startup_us: f64,
    /// Work per comparison-ish unit for sorting row ids (sorted index
    /// scan extension): total sort cost = `k log2 k × sort_entry_us`.
    pub sort_entry_us: f64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            page_overhead_us: 12.0,
            row_scan_us: 0.13,
            row_lookup_us: 1.6,
            leaf_decode_us: 6.0,
            entry_decode_us: 0.05,
            worker_startup_us: 250.0,
            sort_entry_us: 0.02,
        }
    }
}

/// Deterministic retry/timeout policy for reads issued through a context.
///
/// All times are virtual, so a policy is reproducible bit-for-bit: the k-th
/// retry of a failed read waits `backoff * 2^(k-1)` of *simulated* time, and
/// a timeout re-issue happens at an exact simulated instant. The default
/// policy (`max_attempts = 1`, no timeout) disables both mechanisms, so a
/// context without an explicit policy behaves exactly as before this layer
/// existed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per logical read, including the first issue.
    /// `1` means a device error surfaces immediately (no retries).
    pub max_attempts: u32,
    /// Base backoff before the first retry; doubled on each further retry.
    pub backoff: SimDuration,
    /// Re-issue a read still outstanding after this long (hedging against
    /// tail latency). Each re-issue consumes one attempt; `None` disables.
    pub timeout: Option<SimDuration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: SimDuration::from_micros_f64(100.0),
            timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that retries up to `max_attempts` total attempts with the
    /// default backoff and no timeout.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }
}

/// Fault-handling counters accumulated by a context (and reported per scan).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Failed reads re-submitted after backoff.
    pub retries: u64,
    /// Reads re-issued because they were outstanding past the timeout.
    pub timeouts: u64,
    /// Completions served by redundancy reconstruction (RAID degraded mode).
    pub degraded_reads: u64,
}

impl ResilienceStats {
    /// Fold another counter set into this one (par_map reduction / trace
    /// summary).
    pub fn merge(&mut self, other: &ResilienceStats) {
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.degraded_reads += other.degraded_reads;
    }
}

/// Execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The device reported an I/O error for this device page.
    Io {
        /// The scan operator that issued the failed read.
        operator: &'static str,
        /// First device page of the failed request.
        device_page: u64,
    },
    /// A read failed on every attempt the [`RetryPolicy`] allowed.
    IoExhausted {
        /// First device page of the failed request.
        device_page: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The buffer pool could not make room (all frames pinned).
    PoolExhausted,
    /// The device halted on an injected crash; in-flight work is gone and
    /// the run must go through recovery, not completion.
    Crashed,
    /// An executor state-machine invariant was violated (a bug in the
    /// engine, not in the caller's configuration).
    Internal {
        /// Description of the violated invariant.
        detail: &'static str,
    },
}

/// Map a failed read to the right error: a single-attempt failure is a
/// plain [`ExecError::Io`]; a failure after retries is
/// [`ExecError::IoExhausted`] (the attempt count is the diagnosis).
pub(crate) fn io_failure(operator: &'static str, device_page: u64, attempts: u32) -> ExecError {
    if attempts > 1 {
        ExecError::IoExhausted {
            device_page,
            attempts,
        }
    } else {
        ExecError::Io {
            operator,
            device_page,
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Io {
                operator,
                device_page,
            } => write!(f, "{operator}: I/O error at device page {device_page}"),
            ExecError::IoExhausted {
                device_page,
                attempts,
            } => write!(
                f,
                "I/O error at device page {device_page} after {attempts} attempts"
            ),
            ExecError::PoolExhausted => write!(f, "buffer pool exhausted (all frames pinned)"),
            ExecError::Crashed => write!(f, "device crashed mid-run; recovery required"),
            ExecError::Internal { detail } => {
                write!(f, "executor invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<pioqo_bufpool::PoolError> for ExecError {
    fn from(_: pioqo_bufpool::PoolError) -> Self {
        ExecError::PoolExhausted
    }
}

/// What a completed I/O was for.
#[derive(Debug, Clone, Copy)]
enum IoMeta {
    /// Single-page read (demand or index prefetch), deduplicated per page.
    Page { device_page: u64 },
    /// Multi-page sequential block read (table-scan prefetch).
    Block { start: u64, len: u32 },
    /// Page-aligned write (data-page flush or WAL segment). Never
    /// deduplicated: each write carries its own payload on the byte side.
    Write { start: u64, len: u32 },
}

/// A logical read: one handle handed to the operator, backed by one or more
/// physical device requests (the original plus retries / timeout re-issues).
struct LogicalIo {
    meta: IoMeta,
    /// Attempts issued so far (1 = the original).
    attempts: u32,
    /// Physical requests currently in flight for this read.
    live: u32,
    /// When the operator first asked for this read (drives the page-wait
    /// histogram).
    started: SimTime,
    /// When the newest physical request was issued (drives the timeout).
    issue_time: SimTime,
    /// A backoff retry is scheduled; the timeout must not also re-issue.
    pending_retry: bool,
}

/// An event delivered by [`SimContext::step`].
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A single-page read finished.
    IoPage {
        /// The I/O handle returned by [`SimContext::read_page`].
        io: u64,
        /// The device page read.
        device_page: u64,
        /// Outcome. `Error` means the retry policy is exhausted.
        status: IoStatus,
        /// Physical attempts the read took (1 = no retries).
        attempts: u32,
    },
    /// A block read finished.
    IoBlock {
        /// The I/O handle returned by [`SimContext::read_block`].
        io: u64,
        /// First device page of the block.
        start: u64,
        /// Block length in pages.
        len: u32,
        /// Outcome. `Error` means the retry policy is exhausted.
        status: IoStatus,
        /// Physical attempts the read took (1 = no retries).
        attempts: u32,
    },
    /// A write finished.
    IoWrite {
        /// The I/O handle returned by [`SimContext::write_page`] /
        /// [`SimContext::write_block`].
        io: u64,
        /// First device page of the write.
        start: u64,
        /// Write length in pages.
        len: u32,
        /// Outcome. `Error` means the retry policy is exhausted.
        status: IoStatus,
        /// Physical attempts the write took (1 = no retries).
        attempts: u32,
    },
    /// A compute task finished.
    Cpu(TaskId),
    /// A virtual-time timer armed with [`SimContext::schedule_timer`] or
    /// [`SimContext::schedule_timer_tagged`] expired (session think time,
    /// periodic samplers).
    Timer {
        /// The handle returned by [`SimContext::schedule_timer`].
        id: u64,
        /// Caller-chosen routing tag (`0` for untagged timers). Lets a
        /// dispatcher route the wakeup to its owner in O(1) instead of
        /// keeping an id-to-owner side table.
        tag: u64,
    },
}

/// Aggregate I/O statistics observed by a context over its lifetime.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IoProfile {
    /// Pages transferred by reads.
    pub pages_read: u64,
    /// I/O operations completed (reads and writes).
    pub io_ops: u64,
    /// Pages transferred by writes (WAL segments + data-page flushes).
    pub pages_written: u64,
    /// Write operations completed.
    pub write_ops: u64,
    /// Time-weighted mean device queue depth while the scan ran.
    pub mean_queue_depth: f64,
    /// Peak device queue depth.
    pub peak_queue_depth: f64,
    /// Mean read throughput between first submission and last completion,
    /// MB/s.
    pub throughput_mb_s: f64,
    /// Mean per-I/O latency, µs.
    pub mean_latency_us: f64,
}

/// The per-scan simulation context. See the module docs.
pub struct SimContext<'a> {
    /// The storage device under the scan.
    pub device: &'a mut dyn DeviceModel,
    /// The buffer pool.
    pub pool: &'a mut BufferPool,
    /// The CPU scheduler.
    pub cpu: CpuScheduler,
    costs: CpuCosts,
    retry: RetryPolicy,
    res: ResilienceStats,
    now: SimTime,
    next_io: u64,
    next_req: u64,
    inflight_page: BTreeMap<u64, u64>, // device page -> io id
    ios: BTreeMap<u64, LogicalIo>,
    req_owner: BTreeMap<u64, u64>, // physical request id -> io id
    retry_queue: BTreeMap<SimTime, Vec<u64>>,
    deadline_queue: BTreeMap<SimTime, Vec<u64>>,
    timer_queue: EventQueue<(u64, u64)>, // (timer id, routing tag)
    next_timer: u64,
    io_buf: Vec<IoCompletion>,
    cpu_buf: Vec<TaskId>,
    depth: TimeWeighted,
    latency_sum_us: f64,
    pages_read: u64,
    io_ops: u64,
    pages_written: u64,
    write_ops: u64,
    first_submit: Option<SimTime>,
    last_complete: SimTime,
    hists: HistSet,
    /// Requests currently outstanding on the device (integer twin of
    /// `depth`, sampled into the queue-depth histogram at every submit).
    depth_now: u32,
    trace: Option<&'a mut dyn TraceSink>,
    io_track: u32,
    pool_track: u32,
    pool_evbuf: Vec<PoolEvent>,
    metrics: Option<&'a mut MetricsRegistry>,
    /// Next sim-time cadence boundary at which `step` samples the engine
    /// series (queue depth, pool hit rate, device channel occupancy).
    next_metric_sample: SimTime,
    /// Slots for the five engine series, resolved once in `set_metrics`
    /// so the per-boundary sampler never walks the name index.
    series_handles: [SeriesHandle; 5],
}

impl<'a> SimContext<'a> {
    /// Build a context over a device, pool and CPU.
    pub fn new(
        device: &'a mut dyn DeviceModel,
        pool: &'a mut BufferPool,
        cpu_cfg: CpuConfig,
        costs: CpuCosts,
    ) -> SimContext<'a> {
        SimContext {
            device,
            pool,
            cpu: CpuScheduler::new(cpu_cfg),
            costs,
            retry: RetryPolicy::default(),
            res: ResilienceStats::default(),
            now: SimTime::ZERO,
            next_io: 0,
            next_req: 0,
            inflight_page: BTreeMap::new(),
            ios: BTreeMap::new(),
            req_owner: BTreeMap::new(),
            retry_queue: BTreeMap::new(),
            deadline_queue: BTreeMap::new(),
            timer_queue: EventQueue::new(),
            next_timer: 0,
            io_buf: Vec::new(),
            cpu_buf: Vec::new(),
            depth: TimeWeighted::new(SimTime::ZERO, 0.0),
            latency_sum_us: 0.0,
            pages_read: 0,
            io_ops: 0,
            pages_written: 0,
            write_ops: 0,
            first_submit: None,
            last_complete: SimTime::ZERO,
            hists: HistSet::new(),
            depth_now: 0,
            trace: None,
            io_track: 0,
            pool_track: 0,
            pool_evbuf: Vec::new(),
            metrics: None,
            next_metric_sample: SimTime::ZERO,
            series_handles: [SeriesHandle::INERT; 5],
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The CPU cost constants.
    pub fn costs(&self) -> &CpuCosts {
        &self.costs
    }

    /// Install a retry/timeout policy (the default policy does neither).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        assert!(retry.max_attempts >= 1, "at least one attempt is required");
        self.retry = retry;
    }

    /// The fault-handling counters accumulated so far.
    pub fn resilience(&self) -> ResilienceStats {
        self.res
    }

    /// Install a trace sink. Disabled sinks (the default
    /// [`pioqo_obs::NullSink`]) are never installed, so the untraced hot
    /// path stays a single `None` branch. An enabled sink also switches on
    /// the buffer pool's event journal, which the context drains and
    /// timestamps at every step.
    pub fn set_trace_sink(&mut self, sink: &'a mut dyn TraceSink) {
        if !sink.enabled() {
            return;
        }
        self.io_track = sink.track("io");
        self.pool_track = sink.track("pool");
        self.pool.set_event_log(true);
        self.trace = Some(sink);
    }

    /// Whether an enabled trace sink is installed.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Install a metrics registry. Disabled registries are never installed
    /// (same contract as [`SimContext::set_trace_sink`]): the unmetered hot
    /// path stays a single `None` branch and the registry allocates
    /// nothing. An installed registry makes `step` sample the engine
    /// series — queue depth, pool hit rate, dirty backlog, device channel
    /// occupancy — on the registry's sim-time cadence.
    pub fn set_metrics(&mut self, metrics: &'a mut MetricsRegistry) {
        if !metrics.is_enabled() {
            return;
        }
        self.next_metric_sample = self.now;
        self.series_handles = [
            metrics.series_handle("engine_queue_depth"),
            metrics.series_handle("pool_hit_rate_permille"),
            metrics.series_handle("pool_dirty_pages"),
            metrics.series_handle("device_busy_channels"),
            metrics.series_handle("device_util_permille"),
        ];
        self.metrics = Some(metrics);
    }

    /// Whether an enabled metrics registry is installed.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// Add to a named counter on the installed registry (no-op unmetered).
    #[inline]
    pub fn metric_counter(&mut self, name: &'static str, delta: u64) {
        if let Some(m) = &mut self.metrics {
            m.counter_add(name, delta);
        }
    }

    /// Set a named gauge on the installed registry (no-op unmetered).
    #[inline]
    pub fn metric_gauge(&mut self, name: &'static str, value: u64) {
        if let Some(m) = &mut self.metrics {
            m.gauge_set(name, value);
        }
    }

    /// Record into a named histogram on the installed registry (no-op
    /// unmetered).
    #[inline]
    pub fn metric_hist(&mut self, name: &'static str, value: u64) {
        if let Some(m) = &mut self.metrics {
            m.hist_record(name, value);
        }
    }

    /// Sample a named sim-time series at the current virtual time (no-op
    /// unmetered). Subsystems with event-driven signals (WAL flush lag,
    /// admission lease occupancy) call this from their handlers; the
    /// cadence reservoir bounds the stored points.
    #[inline]
    pub fn metric_sample(&mut self, name: &'static str, value: u64) {
        if let Some(m) = &mut self.metrics {
            m.series_sample(name, self.now, value);
        }
    }

    /// Sample the engine series when the clock advancing to `t` crosses a
    /// cadence boundary. Values are the state as of the *previous* events
    /// — exactly what a sampler waking at the boundary would observe. A
    /// jump across many boundaries (an idle gap) emits one point at the
    /// *last* boundary crossed: no events fired inside the gap, so the
    /// skipped boundaries would all have recorded the same values, and
    /// series consumers forward-fill between points.
    fn sample_metric_series(&mut self, t: SimTime) {
        let Some(m) = &mut self.metrics else {
            return;
        };
        if t < self.next_metric_sample {
            return;
        }
        let cadence = m.cadence();
        let skipped = t.since(self.next_metric_sample).as_nanos() / cadence.as_nanos().max(1);
        let at = self.next_metric_sample + cadence * skipped;
        let depth = self.depth_now as u64;
        let pstats = self.pool.stats();
        let lookups = pstats.hits + pstats.misses;
        let hit_permille = (pstats.hits * 1000).checked_div(lookups).unwrap_or(0);
        let dirty = self.pool.dirty_count() as u64;
        let busy = self.device.channels_busy(at) as u64;
        let total = self.device.channels().max(1) as u64;
        let [h_depth, h_hit, h_dirty, h_busy, h_util] = self.series_handles;
        m.series_sample_at(h_depth, at, depth);
        m.series_sample_at(h_hit, at, hit_permille);
        m.series_sample_at(h_dirty, at, dirty);
        m.series_sample_at(h_busy, at, busy);
        m.series_sample_at(h_util, at, busy * 1000 / total);
        self.next_metric_sample = at + cadence;
    }

    /// Fold the end-of-run subsystem counters into the installed registry:
    /// the timer calendar's occupancy/churn stats, the pool counters, the
    /// physical I/O profile and the engine histogram bundle. Harnesses
    /// call this once, after the event loop quiesces and before
    /// snapshotting the registry.
    pub fn fold_metrics(&mut self) {
        if self.metrics.is_none() {
            return;
        }
        let q = self.timer_queue.stats();
        let pstats = self.pool.stats();
        let io = self.io_profile();
        let res = self.res;
        // Histograms fold in `take_histograms` (the run paths all drain
        // them there); a leftover non-empty set still folds here.
        let hists = self.hists.clone();
        let m = self
            .metrics
            .as_mut()
            .expect("metrics presence checked above");
        m.counter_add("timer_events_scheduled_total", q.scheduled);
        m.counter_add("timer_events_popped_total", q.popped);
        m.counter_add("timer_batch_pops_total", q.batch_pops);
        m.gauge_set("timer_max_cohort", q.max_cohort);
        m.gauge_set("timer_peak_buckets", q.peak_buckets);
        m.gauge_set("timer_peak_len", q.peak_len);
        m.counter_add("timer_bucket_allocs_total", q.bucket_allocs);
        m.counter_add("pool_hits_total", pstats.hits);
        m.counter_add("pool_misses_total", pstats.misses);
        m.counter_add("pool_evictions_total", pstats.evictions);
        m.counter_add("pool_refetches_total", pstats.refetches);
        m.counter_add("pool_pages_dirtied_total", pstats.pages_dirtied);
        m.counter_add("pool_pages_flushed_total", pstats.pages_flushed);
        m.counter_add("io_pages_read_total", io.pages_read);
        m.counter_add("io_pages_written_total", io.pages_written);
        m.counter_add("io_ops_total", io.io_ops);
        m.counter_add("io_write_ops_total", io.write_ops);
        m.counter_add("io_retries_total", res.retries);
        m.counter_add("io_timeout_hedges_total", res.timeouts);
        m.counter_add("io_degraded_reads_total", res.degraded_reads);
        m.hist_merge("io_latency_us", &hists.io_latency_us);
        m.hist_merge("queue_depth", &hists.queue_depth);
        m.hist_merge("page_wait_us", &hists.page_wait_us);
        m.hist_merge("io_retries_per_read", &hists.retries);
        m.hist_merge("commit_ack_us", &hists.commit_ack_us);
    }

    /// Intern a track name on the installed sink (0 when untraced).
    pub fn trace_track(&mut self, name: &str) -> u32 {
        match &mut self.trace {
            Some(sink) => sink.track(name),
            None => 0,
        }
    }

    /// Open a named phase span on `track` at the current virtual time.
    pub fn trace_span_begin(&mut self, track: u32, name: &'static str) {
        self.emit(EventKind::SpanBegin(name), track, 0, 0, 0);
    }

    /// Close the innermost phase span on `track`.
    pub fn trace_span_end(&mut self, track: u32, name: &'static str) {
        self.emit(EventKind::SpanEnd(name), track, 0, 0, 0);
    }

    /// The histogram bundle collected so far. Histograms are always
    /// collected (integer-only recording, no sink required).
    pub fn histograms(&self) -> &HistSet {
        &self.hists
    }

    /// Take the histogram bundle for attachment to a
    /// [`crate::ScanMetrics`], flushing any journaled pool events to the
    /// trace sink first. This is the moment the histograms leave the
    /// context, so an installed metrics registry folds them here (the
    /// empty-histogram guard in `hist_merge` makes a second take a no-op).
    pub fn take_histograms(&mut self) -> HistSet {
        self.pump_pool_events();
        let hists = std::mem::take(&mut self.hists);
        if let Some(m) = self.metrics.as_mut() {
            m.hist_merge("io_latency_us", &hists.io_latency_us);
            m.hist_merge("queue_depth", &hists.queue_depth);
            m.hist_merge("page_wait_us", &hists.page_wait_us);
            m.hist_merge("io_retries_per_read", &hists.retries);
            m.hist_merge("commit_ack_us", &hists.commit_ack_us);
        }
        hists
    }

    #[inline]
    pub(crate) fn emit(&mut self, kind: EventKind, track: u32, span: u64, a: u64, b: u64) {
        if let Some(sink) = &mut self.trace {
            sink.record(TraceEvent {
                t: self.now,
                track,
                span,
                kind,
                a,
                b,
            });
        }
    }

    /// Drain the pool's event journal into the sink, stamped at the
    /// current virtual time (pool activity happens synchronously between
    /// steps, so `now` is exact).
    fn pump_pool_events(&mut self) {
        let Some(sink) = &mut self.trace else {
            return;
        };
        let mut buf = std::mem::take(&mut self.pool_evbuf);
        buf.clear();
        self.pool.take_events(&mut buf);
        for ev in &buf {
            let (kind, page) = match *ev {
                PoolEvent::Hit(p) => (EventKind::PoolHit, p),
                PoolEvent::PrefetchHit(p) => (EventKind::PoolPrefetchHit, p),
                PoolEvent::Miss(p) => (EventKind::PoolMiss, p),
                PoolEvent::Refetch(p) => (EventKind::PoolRefetch, p),
                PoolEvent::Evict(p) => (EventKind::PoolEvict, p),
                PoolEvent::Dirty(p) => (EventKind::PoolDirty, p),
                PoolEvent::Flush(p) => (EventKind::PoolFlush, p),
            };
            sink.record(TraceEvent {
                t: self.now,
                track: self.pool_track,
                span: 0,
                kind,
                a: page,
                b: 0,
            });
        }
        self.pool_evbuf = buf;
    }

    /// Read one device page. If an identical read is already in flight the
    /// existing handle is returned, so concurrent workers (or a prefetcher
    /// and a demand read) share one physical I/O.
    pub fn read_page(&mut self, device_page: u64) -> u64 {
        if let Some(&io) = self.inflight_page.get(&device_page) {
            return io;
        }
        let io = self.next_io;
        self.next_io += 1;
        self.inflight_page.insert(device_page, io);
        self.start_logical(io, IoMeta::Page { device_page });
        io
    }

    /// Read a block of consecutive device pages (no deduplication; the
    /// table-scan prefetcher is the only issuer and never overlaps blocks).
    pub fn read_block(&mut self, start: u64, len: u32) -> u64 {
        let io = self.next_io;
        self.next_io += 1;
        self.start_logical(io, IoMeta::Block { start, len });
        io
    }

    /// Write one device page. Writes share the reads' queue, band and
    /// retry machinery but are never deduplicated — two writes to the same
    /// page carry different payloads on the byte side.
    pub fn write_page(&mut self, device_page: u64) -> u64 {
        self.write_block(device_page, 1)
    }

    /// Write a block of consecutive device pages (a WAL segment or a
    /// multi-page flush).
    pub fn write_block(&mut self, start: u64, len: u32) -> u64 {
        let io = self.next_io;
        self.next_io += 1;
        self.start_logical(io, IoMeta::Write { start, len });
        io
    }

    /// True once the underlying device halted on an injected crash. Event
    /// loops check this when a step stalls (or each iteration) and surface
    /// [`ExecError::Crashed`] instead of spinning on timers forever.
    pub fn device_crashed(&self) -> bool {
        self.device.crashed()
    }

    /// Record one group-commit acknowledgement latency sample (µs) into
    /// the context's histogram bundle. Called by the write system when a
    /// WAL flush completion releases waiting commits.
    pub fn record_commit_ack(&mut self, us: u64) {
        self.hists.commit_ack_us.record(us);
    }

    fn start_logical(&mut self, io: u64, meta: IoMeta) {
        self.ios.insert(
            io,
            LogicalIo {
                meta,
                attempts: 0,
                live: 0,
                started: self.now,
                issue_time: self.now,
                pending_retry: false,
            },
        );
        self.submit_physical(io);
    }

    /// Issue one physical device request for logical read `io`.
    fn submit_physical(&mut self, io: u64) {
        let rid = self.next_req;
        self.next_req += 1;
        let st = self
            .ios
            .get_mut(&io)
            .expect("submit for unknown logical I/O");
        st.attempts += 1;
        st.live += 1;
        st.issue_time = self.now;
        let req = match st.meta {
            IoMeta::Page { device_page } => IoRequest::page(rid, device_page),
            IoMeta::Block { start, len } => IoRequest::block(rid, start, len),
            IoMeta::Write { start, len } => IoRequest::write_block(rid, start, len),
        };
        let (first_page, len) = (req.offset, req.len as u64);
        self.req_owner.insert(rid, io);
        if let Some(grace) = self.retry.timeout {
            let due = self.now + grace;
            self.deadline_queue.entry(due).or_default().push(io);
        }
        self.track_submit();
        self.emit(EventKind::IoSubmit, self.io_track, rid, first_page, len);
        self.device.submit(self.now, req);
    }

    /// Sim-time exponential backoff before retry number `retry_no` (1-based):
    /// `backoff * 2^(retry_no - 1)`, with the shift clamped so a pathological
    /// policy cannot overflow.
    fn backoff_for(&self, retry_no: u32) -> SimDuration {
        self.retry.backoff * (1u64 << retry_no.saturating_sub(1).min(20))
    }

    /// Submit `work_us` core-microseconds of compute.
    pub fn submit_cpu(&mut self, work_us: f64) -> TaskId {
        self.cpu.submit(self.now, work_us)
    }

    /// Arm a virtual-time timer that fires as [`Event::Timer`] once `after`
    /// has elapsed. Timers keep [`SimContext::step`] progressing even when
    /// no I/O or compute is pending (e.g. every session of a closed-loop
    /// workload is in think time), and consume neither device nor CPU
    /// capacity. Timers armed for the same instant fire in arming order.
    pub fn schedule_timer(&mut self, after: SimDuration) -> u64 {
        self.schedule_timer_tagged(after, 0)
    }

    /// [`SimContext::schedule_timer`] with a caller-chosen routing `tag`
    /// carried back on the [`Event::Timer`]. Tag `0` is the untagged
    /// default; a multi-owner dispatcher (e.g. the session engine) uses
    /// nonzero tags to route each wakeup to its owner without a per-timer
    /// side table. Timers live on a calendar [`EventQueue`], so arming and
    /// expiry are O(1) amortized regardless of how many are outstanding.
    pub fn schedule_timer_tagged(&mut self, after: SimDuration, tag: u64) -> u64 {
        let id = self.next_timer;
        self.next_timer += 1;
        self.timer_queue.schedule(self.now + after, (id, tag));
        id
    }

    fn track_submit(&mut self) {
        self.first_submit.get_or_insert(self.now);
        self.depth.add(self.now, 1.0);
        self.depth_now += 1;
        self.hists.queue_depth.record(self.depth_now as u64);
        if self.trace.is_some() {
            let depth = self.depth_now as u64;
            self.emit(EventKind::QueueDepth, self.io_track, 0, depth, 0);
        }
    }

    /// Advance to the next event and append the wakes to `events`.
    /// Returns `false` when neither the device, the CPU, nor the retry
    /// machinery has anything pending (deadlock or completion — the caller
    /// knows which).
    pub fn step(&mut self, events: &mut Vec<Event>) -> bool {
        if self.trace.is_some() {
            // Flush pool activity that happened since the last step, before
            // virtual time moves on (pool calls are synchronous at `now`).
            self.pump_pool_events();
        }
        let mut t: Option<SimTime> = None;
        for cand in [
            self.device.next_event(),
            self.cpu.next_event(),
            self.retry_queue.keys().next().copied(),
            self.deadline_queue.keys().next().copied(),
            self.timer_queue.peek_time(),
        ] {
            t = match (t, cand) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        let Some(t) = t else { return false };
        debug_assert!(t >= self.now);
        self.now = t;
        if self.metrics.is_some() {
            // Sample series at every cadence boundary the clock just
            // crossed, before this instant's events are processed.
            self.sample_metric_series(t);
        }

        let mut io_buf = std::mem::take(&mut self.io_buf);
        io_buf.clear();
        self.device.advance(t, &mut io_buf);
        for c in &io_buf {
            self.deliver(c, events);
        }
        self.io_buf = io_buf;

        // Backoff expiries: re-submit failed reads whose wait is over.
        while let Some((&due, _)) = self.retry_queue.iter().next() {
            if due > t {
                break;
            }
            let ios = self.retry_queue.remove(&due).expect("key just observed");
            for io in ios {
                let st = self
                    .ios
                    .get_mut(&io)
                    .expect("retry for unknown logical I/O");
                st.pending_retry = false;
                let attempts = st.attempts as u64;
                self.res.retries += 1;
                self.emit(EventKind::Retry, self.io_track, 0, io, attempts);
                self.submit_physical(io);
            }
        }

        // Timeout expiries: hedge reads still outstanding from the issuance
        // the deadline was armed for (a completed, failed or already
        // re-issued read leaves a stale entry behind — skip those).
        while let Some((&due, _)) = self.deadline_queue.iter().next() {
            if due > t {
                break;
            }
            let ios = self.deadline_queue.remove(&due).expect("key just observed");
            let Some(grace) = self.retry.timeout else {
                continue;
            };
            for io in ios {
                let Some(st) = self.ios.get(&io) else {
                    continue;
                };
                let armed_for = st.issue_time + grace;
                if armed_for != due || st.live == 0 || st.pending_retry {
                    continue;
                }
                if st.attempts >= self.retry.max_attempts {
                    continue; // out of attempts: wait for what's in flight
                }
                let attempts = st.attempts as u64;
                self.res.timeouts += 1;
                self.emit(EventKind::TimeoutHedge, self.io_track, 0, io, attempts);
                self.submit_physical(io);
            }
        }

        // Expired timers, in arming order within each instant (the
        // calendar queue pops FIFO within a timestamp).
        while self.timer_queue.peek_time().is_some_and(|due| due <= t) {
            let Some((_, (id, tag))) = self.timer_queue.pop() else {
                break;
            };
            events.push(Event::Timer { id, tag });
        }

        self.cpu_buf.clear();
        self.cpu.advance(t, &mut self.cpu_buf);
        for &id in &self.cpu_buf {
            events.push(Event::Cpu(id));
        }
        true
    }

    /// Account for one physical completion and, when it settles the owning
    /// logical read (success, or failure with no retry budget and no
    /// duplicate still in flight), emit its event.
    fn deliver(&mut self, c: &IoCompletion, events: &mut Vec<Event>) {
        // Physical accounting happens for every completion, including
        // duplicates of reads that already finished: the device really did
        // the work, so the profile must see it.
        self.depth.add(c.completed, -1.0);
        self.depth_now = self.depth_now.saturating_sub(1);
        self.latency_sum_us += c.latency().as_micros_f64();
        self.hists
            .io_latency_us
            .record(c.latency().as_nanos() / 1000);
        if c.req.is_write() {
            self.pages_written += c.req.len as u64;
            self.write_ops += 1;
        } else {
            self.pages_read += c.req.len as u64;
        }
        self.io_ops += 1;
        self.last_complete = self.last_complete.max(c.completed);
        if c.degraded {
            self.res.degraded_reads += 1;
        }
        if let Some(sink) = &mut self.trace {
            sink.record(TraceEvent {
                t: c.completed,
                track: self.io_track,
                span: c.req.id,
                kind: EventKind::IoComplete,
                a: c.req.len as u64,
                b: (c.status == IoStatus::Ok) as u64,
            });
        }
        let io = match self.req_owner.remove(&c.req.id) {
            Some(io) => io,
            None => return, // duplicate of a read that already settled
        };
        let (attempts, live, pending) = {
            // The logical read may have settled already via another physical
            // attempt (a hedge raced the original); this arrival is then
            // accounting-only.
            let Some(st) = self.ios.get_mut(&io) else {
                return;
            };
            st.live -= 1;
            (st.attempts, st.live, st.pending_retry)
        };
        match c.status {
            IoStatus::Ok => {
                let st = self.ios.remove(&io).expect("present just above");
                self.finish(io, &st, IoStatus::Ok, events);
            }
            IoStatus::Error if attempts < self.retry.max_attempts => {
                if !pending {
                    let wait = self.backoff_for(attempts);
                    let due = c.completed + wait;
                    self.retry_queue.entry(due).or_default().push(io);
                    self.ios
                        .get_mut(&io)
                        .expect("present just above")
                        .pending_retry = true;
                    let wait_us = wait.as_nanos() / 1000;
                    self.emit(EventKind::Backoff, self.io_track, 0, io, wait_us);
                }
            }
            IoStatus::Error if live == 0 && !pending => {
                let st = self.ios.remove(&io).expect("present just above");
                self.finish(io, &st, IoStatus::Error, events);
            }
            // A duplicate is still in flight; let it settle the read
            // (a late success wins over this failure).
            IoStatus::Error => {}
        }
    }

    fn finish(&mut self, io: u64, st: &LogicalIo, status: IoStatus, events: &mut Vec<Event>) {
        self.hists
            .page_wait_us
            .record((self.now - st.started).as_nanos() / 1000);
        self.hists
            .retries
            .record(st.attempts.saturating_sub(1) as u64);
        match st.meta {
            IoMeta::Page { device_page } => {
                self.inflight_page.remove(&device_page);
                events.push(Event::IoPage {
                    io,
                    device_page,
                    status,
                    attempts: st.attempts,
                });
            }
            IoMeta::Block { start, len } => events.push(Event::IoBlock {
                io,
                start,
                len,
                status,
                attempts: st.attempts,
            }),
            IoMeta::Write { start, len } => events.push(Event::IoWrite {
                io,
                start,
                len,
                status,
                attempts: st.attempts,
            }),
        }
    }

    /// Let the context's own in-flight I/O finish (without emitting events)
    /// so its pages land in the pool and its accounting closes. Bounded by
    /// the context's outstanding work, not the device's — a device carrying
    /// unrelated background load stays busy forever.
    pub fn quiesce(&mut self) {
        let mut events = Vec::new();
        while !self.ios.is_empty() || !self.req_owner.is_empty() || self.cpu.next_event().is_some()
        {
            events.clear();
            if !self.step(&mut events) {
                break;
            }
            // Stale completions: admit prefetched pages so accounting stays
            // coherent, drop everything else.
            for e in &events {
                if let Event::IoBlock {
                    start,
                    len,
                    status: IoStatus::Ok,
                    ..
                } = e
                {
                    for p in *start..*start + *len as u64 {
                        let _ = self.pool.admit_prefetched(p);
                    }
                }
                if let Event::IoPage {
                    device_page,
                    status: IoStatus::Ok,
                    ..
                } = e
                {
                    let _ = self.pool.admit_prefetched(*device_page);
                }
            }
        }
    }

    /// The I/O profile observed so far (`now` bounds the queue-depth mean).
    pub fn io_profile(&self) -> IoProfile {
        let window = match self.first_submit {
            Some(t0) => self.last_complete - t0,
            None => SimDuration::ZERO,
        };
        IoProfile {
            pages_read: self.pages_read,
            io_ops: self.io_ops,
            pages_written: self.pages_written,
            write_ops: self.write_ops,
            mean_queue_depth: match self.first_submit {
                Some(_) => self.depth.mean(self.last_complete.max(self.now)),
                None => 0.0,
            },
            peak_queue_depth: self.depth.peak(),
            throughput_mb_s: pioqo_simkit::stats::mb_per_sec(
                self.pages_read * self.device.page_size() as u64,
                window,
            ),
            mean_latency_us: if self.io_ops == 0 {
                0.0
            } else {
                self.latency_sum_us / self.io_ops as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_device::presets::consumer_pcie_ssd;

    #[test]
    fn page_reads_deduplicate() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let a = ctx.read_page(100);
        let b = ctx.read_page(100);
        assert_eq!(a, b, "same in-flight page must share one I/O");
        let c = ctx.read_page(101);
        assert_ne!(a, c);
        let mut events = Vec::new();
        while ctx.step(&mut events) {}
        let pages: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::IoPage { device_page, .. } => Some(*device_page),
                _ => None,
            })
            .collect();
        assert_eq!(pages.len(), 2);
        // After completion the page may be read again with a fresh I/O.
        let d = ctx.read_page(100);
        assert_ne!(a, d);
    }

    #[test]
    fn step_interleaves_io_and_cpu() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.read_page(5);
        let t = ctx.submit_cpu(3.0);
        let mut events = Vec::new();
        let mut cpu_done = false;
        let mut io_done = false;
        while ctx.step(&mut events) {
            for e in events.drain(..) {
                match e {
                    Event::Cpu(id) => {
                        assert_eq!(id, t);
                        cpu_done = true;
                        // CPU task (3 us) finishes before the flash read.
                        assert!(!io_done);
                    }
                    Event::IoPage { .. } => io_done = true,
                    _ => {}
                }
            }
        }
        assert!(cpu_done && io_done);
    }

    #[test]
    fn profile_counts_io() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.read_block(0, 16);
        ctx.read_page(1000);
        let mut events = Vec::new();
        while ctx.step(&mut events) {}
        let p = ctx.io_profile();
        assert_eq!(p.io_ops, 2);
        assert_eq!(p.pages_read, 17);
        assert!(p.throughput_mb_s > 0.0);
        assert!(p.mean_latency_us > 0.0);
        assert!(p.peak_queue_depth >= 2.0);
    }

    #[test]
    fn transient_fault_is_retried_to_success() {
        let inner = consumer_pcie_ssd(1 << 16, 1);
        let mut dev = pioqo_device::Faulty::new(
            inner,
            pioqo_device::FaultPlan::Transient {
                p: 1.0,
                attempts: 2,
                seed: 7,
            },
        );
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.set_retry_policy(RetryPolicy::attempts(4));
        let io = ctx.read_page(42);
        let mut events = Vec::new();
        while ctx.step(&mut events) {}
        let done: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::IoPage {
                    io: id,
                    status,
                    attempts,
                    ..
                } if *id == io => Some((*status, *attempts)),
                _ => None,
            })
            .collect();
        assert_eq!(done, vec![(IoStatus::Ok, 3)], "fails twice, heals on 3rd");
        assert_eq!(ctx.resilience().retries, 2);
        assert_eq!(ctx.resilience().timeouts, 0);
    }

    #[test]
    fn exhausted_retries_surface_as_error_with_attempts() {
        let inner = consumer_pcie_ssd(1 << 16, 1);
        let mut dev = pioqo_device::Faulty::new(inner, pioqo_device::FaultPlan::EveryNth(1));
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.set_retry_policy(RetryPolicy::attempts(3));
        let io = ctx.read_page(9);
        let mut events = Vec::new();
        while ctx.step(&mut events) {}
        let done: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::IoPage {
                    io: id,
                    status,
                    attempts,
                    ..
                } if *id == io => Some((*status, *attempts)),
                _ => None,
            })
            .collect();
        assert_eq!(done, vec![(IoStatus::Error, 3)]);
        assert_eq!(ctx.resilience().retries, 2);
        assert_eq!(
            io_failure("fts", 9, 3),
            ExecError::IoExhausted {
                device_page: 9,
                attempts: 3
            }
        );
    }

    #[test]
    fn backoff_spaces_retries_in_sim_time() {
        let inner = consumer_pcie_ssd(1 << 16, 1);
        let mut dev = pioqo_device::Faulty::new(inner, pioqo_device::FaultPlan::EveryNth(1));
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.set_retry_policy(RetryPolicy {
            max_attempts: 3,
            backoff: SimDuration::from_micros_f64(1000.0),
            timeout: None,
        });
        ctx.read_page(9);
        let mut events = Vec::new();
        while ctx.step(&mut events) {}
        // One flash read is well under 1 ms, so the run is dominated by the
        // two backoff waits: 1 ms + 2 ms of exponential spacing.
        assert!(ctx.now() >= SimTime::ZERO + SimDuration::from_micros_f64(3000.0));
        assert_eq!(ctx.resilience().retries, 2);
    }

    #[test]
    fn timeout_reissues_a_slow_read() {
        // A deep queue on a single spindle makes the last read wait far
        // longer than the timeout, so the context hedges it.
        let mut dev = pioqo_device::presets::hdd_7200(1 << 20, 1);
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.set_retry_policy(RetryPolicy {
            max_attempts: 2,
            backoff: SimDuration::from_micros_f64(100.0),
            timeout: Some(SimDuration::from_micros_f64(500.0)),
        });
        for i in 0..8u64 {
            ctx.read_page(i * 100_000);
        }
        let mut events = Vec::new();
        while ctx.step(&mut events) {}
        let oks = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::IoPage {
                        status: IoStatus::Ok,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(oks, 8, "every logical read settles exactly once");
        assert!(ctx.resilience().timeouts > 0, "some reads were hedged");
        // Hedged duplicates really ran: more physical ops than logical reads.
        assert!(ctx.io_profile().io_ops > 8);
        ctx.quiesce();
        assert_eq!(ctx.device.outstanding(), 0);
    }

    #[test]
    fn default_policy_is_inert() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.read_block(0, 16);
        ctx.read_page(1000);
        let mut events = Vec::new();
        while ctx.step(&mut events) {}
        assert_eq!(ctx.resilience(), ResilienceStats::default());
        assert_eq!(ctx.io_profile().io_ops, 2);
    }

    #[test]
    fn tracing_records_io_events_and_histograms() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut sink = pioqo_obs::RingSink::with_capacity(1024);
        {
            let mut ctx = SimContext::new(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
            );
            ctx.set_trace_sink(&mut sink);
            assert!(ctx.trace_enabled());
            ctx.read_block(0, 4);
            ctx.read_page(1000);
            ctx.pool.request(0); // miss journaled by the pool
            let mut events = Vec::new();
            while ctx.step(&mut events) {}
            let h = ctx.take_histograms();
            assert_eq!(h.io_latency_us.count, 2);
            assert_eq!(h.queue_depth.count, 2);
            assert_eq!(h.page_wait_us.count, 2);
            assert_eq!(h.retries.count, 2);
            assert_eq!(h.retries.max, 0, "clean device: no retries");
        }
        let mut submits = 0;
        let mut completes = 0;
        let mut depth_samples = 0;
        let mut pool_misses = 0;
        for ev in sink.events() {
            match ev.kind {
                EventKind::IoSubmit => submits += 1,
                EventKind::IoComplete => completes += 1,
                EventKind::QueueDepth => depth_samples += 1,
                EventKind::PoolMiss => pool_misses += 1,
                _ => {}
            }
        }
        assert_eq!(submits, 2);
        assert_eq!(completes, 2);
        assert_eq!(depth_samples, 2);
        assert_eq!(pool_misses, 1);
        let json = sink.to_chrome_json();
        assert!(json.contains("\"cat\":\"io\""));
    }

    #[test]
    fn histograms_collected_without_a_sink() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        assert!(!ctx.trace_enabled());
        ctx.read_page(7);
        let mut events = Vec::new();
        while ctx.step(&mut events) {}
        assert_eq!(ctx.histograms().io_latency_us.count, 1);
        assert_eq!(ctx.histograms().queue_depth.mode_lo(), 1);
    }

    #[test]
    fn disabled_sink_is_never_installed() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut null = pioqo_obs::NullSink;
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.set_trace_sink(&mut null);
        assert!(!ctx.trace_enabled());
    }

    #[test]
    fn resilience_stats_merge_sums_fields() {
        let mut a = ResilienceStats {
            retries: 1,
            timeouts: 2,
            degraded_reads: 3,
        };
        let b = ResilienceStats {
            retries: 10,
            timeouts: 20,
            degraded_reads: 30,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ResilienceStats {
                retries: 11,
                timeouts: 22,
                degraded_reads: 33,
            }
        );
    }

    #[test]
    fn quiesce_leaves_device_idle_and_pool_populated() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.read_block(0, 8);
        ctx.quiesce();
        assert_eq!(ctx.device.outstanding(), 0);
        for p in 0..8u64 {
            assert!(ctx.pool.contains(p));
        }
    }
}
