//! The simulation context shared by all operators: one event loop binding a
//! device, the CPU scheduler and the buffer pool, with single-page read
//! deduplication and queue-depth profiling.

use crate::cpu::{CpuConfig, CpuScheduler, TaskId};
use pioqo_bufpool::BufferPool;
use pioqo_device::{DeviceModel, IoCompletion, IoRequest, IoStatus};
use pioqo_simkit::{SimDuration, SimTime, TimeWeighted};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// CPU work constants for the scan operators, in microseconds.
///
/// These play the role of SQL Anywhere's calibrated CPU cost-model unit
/// costs; the defaults are tuned so the simulated throughput hierarchy
/// matches the paper's Table 3 (see EXPERIMENTS.md).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuCosts {
    /// Fixed work to process one heap page in a table scan (latching,
    /// slot-array walk, page checksum).
    pub page_overhead_us: f64,
    /// Work per row evaluated by the table-scan predicate.
    pub row_scan_us: f64,
    /// Work per index-scan row: locate slot, fetch row, evaluate output.
    pub row_lookup_us: f64,
    /// Work to decode one index leaf page.
    pub leaf_decode_us: f64,
    /// Work per `(key, row_id)` entry extracted from a leaf.
    pub entry_decode_us: f64,
    /// One-time work to start a worker (thread wake-up, plan fragment
    /// setup) — the §4.3 "overhead cost for synchronization and
    /// coordination" that makes parallel plans not free.
    pub worker_startup_us: f64,
    /// Work per comparison-ish unit for sorting row ids (sorted index
    /// scan extension): total sort cost = `k log2 k × sort_entry_us`.
    pub sort_entry_us: f64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            page_overhead_us: 12.0,
            row_scan_us: 0.13,
            row_lookup_us: 1.6,
            leaf_decode_us: 6.0,
            entry_decode_us: 0.05,
            worker_startup_us: 250.0,
            sort_entry_us: 0.02,
        }
    }
}

/// Execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The device reported an I/O error for this device page.
    Io {
        /// First device page of the failed request.
        device_page: u64,
    },
    /// The buffer pool could not make room (all frames pinned).
    PoolExhausted,
    /// An executor state-machine invariant was violated (a bug in the
    /// engine, not in the caller's configuration).
    Internal {
        /// Description of the violated invariant.
        detail: &'static str,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Io { device_page } => write!(f, "I/O error at device page {device_page}"),
            ExecError::PoolExhausted => write!(f, "buffer pool exhausted (all frames pinned)"),
            ExecError::Internal { detail } => {
                write!(f, "executor invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<pioqo_bufpool::PoolError> for ExecError {
    fn from(_: pioqo_bufpool::PoolError) -> Self {
        ExecError::PoolExhausted
    }
}

/// What a completed I/O was for.
#[derive(Debug, Clone, Copy)]
enum IoMeta {
    /// Single-page read (demand or index prefetch), deduplicated per page.
    Page { device_page: u64 },
    /// Multi-page sequential block read (table-scan prefetch).
    Block { start: u64, len: u32 },
}

/// An event delivered by [`SimContext::step`].
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A single-page read finished.
    IoPage {
        /// The I/O handle returned by [`SimContext::read_page`].
        io: u64,
        /// The device page read.
        device_page: u64,
        /// Outcome.
        status: IoStatus,
    },
    /// A block read finished.
    IoBlock {
        /// The I/O handle returned by [`SimContext::read_block`].
        io: u64,
        /// First device page of the block.
        start: u64,
        /// Block length in pages.
        len: u32,
        /// Outcome.
        status: IoStatus,
    },
    /// A compute task finished.
    Cpu(TaskId),
}

/// Aggregate I/O statistics observed by a context over its lifetime.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IoProfile {
    /// Pages transferred.
    pub pages_read: u64,
    /// I/O operations completed.
    pub io_ops: u64,
    /// Time-weighted mean device queue depth while the scan ran.
    pub mean_queue_depth: f64,
    /// Peak device queue depth.
    pub peak_queue_depth: f64,
    /// Mean read throughput between first submission and last completion,
    /// MB/s.
    pub throughput_mb_s: f64,
    /// Mean per-I/O latency, µs.
    pub mean_latency_us: f64,
}

/// The per-scan simulation context. See the module docs.
pub struct SimContext<'a> {
    /// The storage device under the scan.
    pub device: &'a mut dyn DeviceModel,
    /// The buffer pool.
    pub pool: &'a mut BufferPool,
    /// The CPU scheduler.
    pub cpu: CpuScheduler,
    costs: CpuCosts,
    now: SimTime,
    next_io: u64,
    inflight_page: BTreeMap<u64, u64>, // device page -> io id
    io_meta: BTreeMap<u64, IoMeta>,
    io_buf: Vec<IoCompletion>,
    cpu_buf: Vec<TaskId>,
    depth: TimeWeighted,
    latency_sum_us: f64,
    pages_read: u64,
    io_ops: u64,
    first_submit: Option<SimTime>,
    last_complete: SimTime,
}

impl<'a> SimContext<'a> {
    /// Build a context over a device, pool and CPU.
    pub fn new(
        device: &'a mut dyn DeviceModel,
        pool: &'a mut BufferPool,
        cpu_cfg: CpuConfig,
        costs: CpuCosts,
    ) -> SimContext<'a> {
        SimContext {
            device,
            pool,
            cpu: CpuScheduler::new(cpu_cfg),
            costs,
            now: SimTime::ZERO,
            next_io: 0,
            inflight_page: BTreeMap::new(),
            io_meta: BTreeMap::new(),
            io_buf: Vec::new(),
            cpu_buf: Vec::new(),
            depth: TimeWeighted::new(SimTime::ZERO, 0.0),
            latency_sum_us: 0.0,
            pages_read: 0,
            io_ops: 0,
            first_submit: None,
            last_complete: SimTime::ZERO,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The CPU cost constants.
    pub fn costs(&self) -> &CpuCosts {
        &self.costs
    }

    /// Read one device page. If an identical read is already in flight the
    /// existing handle is returned, so concurrent workers (or a prefetcher
    /// and a demand read) share one physical I/O.
    pub fn read_page(&mut self, device_page: u64) -> u64 {
        if let Some(&io) = self.inflight_page.get(&device_page) {
            return io;
        }
        let io = self.next_io;
        self.next_io += 1;
        self.inflight_page.insert(device_page, io);
        self.io_meta.insert(io, IoMeta::Page { device_page });
        self.track_submit();
        self.device
            .submit(self.now, IoRequest::page(io, device_page));
        io
    }

    /// Read a block of consecutive device pages (no deduplication; the
    /// table-scan prefetcher is the only issuer and never overlaps blocks).
    pub fn read_block(&mut self, start: u64, len: u32) -> u64 {
        let io = self.next_io;
        self.next_io += 1;
        self.io_meta.insert(io, IoMeta::Block { start, len });
        self.track_submit();
        self.device
            .submit(self.now, IoRequest::block(io, start, len));
        io
    }

    /// Submit `work_us` core-microseconds of compute.
    pub fn submit_cpu(&mut self, work_us: f64) -> TaskId {
        self.cpu.submit(self.now, work_us)
    }

    fn track_submit(&mut self) {
        self.first_submit.get_or_insert(self.now);
        self.depth.add(self.now, 1.0);
    }

    /// Advance to the next event and append the wakes to `events`.
    /// Returns `false` when neither the device nor the CPU has anything
    /// pending (deadlock or completion — the caller knows which).
    pub fn step(&mut self, events: &mut Vec<Event>) -> bool {
        let t_dev = self.device.next_event();
        let t_cpu = self.cpu.next_event();
        let t = match (t_dev, t_cpu) {
            (None, None) => return false,
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (Some(a), Some(b)) => a.min(b),
        };
        debug_assert!(t >= self.now);
        self.now = t;

        self.io_buf.clear();
        self.device.advance(t, &mut self.io_buf);
        for c in &self.io_buf {
            self.depth.add(c.completed, -1.0);
            self.latency_sum_us += c.latency().as_micros_f64();
            self.pages_read += c.req.len as u64;
            self.io_ops += 1;
            self.last_complete = self.last_complete.max(c.completed);
            let meta = self
                .io_meta
                .remove(&c.req.id)
                .expect("completion for unknown I/O");
            match meta {
                IoMeta::Page { device_page } => {
                    self.inflight_page.remove(&device_page);
                    events.push(Event::IoPage {
                        io: c.req.id,
                        device_page,
                        status: c.status,
                    });
                }
                IoMeta::Block { start, len } => events.push(Event::IoBlock {
                    io: c.req.id,
                    start,
                    len,
                    status: c.status,
                }),
            }
        }

        self.cpu_buf.clear();
        self.cpu.advance(t, &mut self.cpu_buf);
        for &id in &self.cpu_buf {
            events.push(Event::Cpu(id));
        }
        true
    }

    /// Let the context's own in-flight I/O finish (without emitting events)
    /// so its pages land in the pool and its accounting closes. Bounded by
    /// the context's outstanding work, not the device's — a device carrying
    /// unrelated background load stays busy forever.
    pub fn quiesce(&mut self) {
        let mut events = Vec::new();
        while !self.io_meta.is_empty() || self.cpu.next_event().is_some() {
            events.clear();
            if !self.step(&mut events) {
                break;
            }
            // Stale completions: admit prefetched pages so accounting stays
            // coherent, drop everything else.
            for e in &events {
                if let Event::IoBlock {
                    start,
                    len,
                    status: IoStatus::Ok,
                    ..
                } = e
                {
                    for p in *start..*start + *len as u64 {
                        let _ = self.pool.admit_prefetched(p);
                    }
                }
                if let Event::IoPage {
                    device_page,
                    status: IoStatus::Ok,
                    ..
                } = e
                {
                    let _ = self.pool.admit_prefetched(*device_page);
                }
            }
        }
    }

    /// The I/O profile observed so far (`now` bounds the queue-depth mean).
    pub fn io_profile(&self) -> IoProfile {
        let window = match self.first_submit {
            Some(t0) => self.last_complete - t0,
            None => SimDuration::ZERO,
        };
        IoProfile {
            pages_read: self.pages_read,
            io_ops: self.io_ops,
            mean_queue_depth: match self.first_submit {
                Some(_) => self.depth.mean(self.last_complete.max(self.now)),
                None => 0.0,
            },
            peak_queue_depth: self.depth.peak(),
            throughput_mb_s: pioqo_simkit::stats::mb_per_sec(
                self.pages_read * self.device.page_size() as u64,
                window,
            ),
            mean_latency_us: if self.io_ops == 0 {
                0.0
            } else {
                self.latency_sum_us / self.io_ops as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_device::presets::consumer_pcie_ssd;

    #[test]
    fn page_reads_deduplicate() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let a = ctx.read_page(100);
        let b = ctx.read_page(100);
        assert_eq!(a, b, "same in-flight page must share one I/O");
        let c = ctx.read_page(101);
        assert_ne!(a, c);
        let mut events = Vec::new();
        while ctx.step(&mut events) {}
        let pages: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::IoPage { device_page, .. } => Some(*device_page),
                _ => None,
            })
            .collect();
        assert_eq!(pages.len(), 2);
        // After completion the page may be read again with a fresh I/O.
        let d = ctx.read_page(100);
        assert_ne!(a, d);
    }

    #[test]
    fn step_interleaves_io_and_cpu() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.read_page(5);
        let t = ctx.submit_cpu(3.0);
        let mut events = Vec::new();
        let mut cpu_done = false;
        let mut io_done = false;
        while ctx.step(&mut events) {
            for e in events.drain(..) {
                match e {
                    Event::Cpu(id) => {
                        assert_eq!(id, t);
                        cpu_done = true;
                        // CPU task (3 us) finishes before the flash read.
                        assert!(!io_done);
                    }
                    Event::IoPage { .. } => io_done = true,
                    _ => {}
                }
            }
        }
        assert!(cpu_done && io_done);
    }

    #[test]
    fn profile_counts_io() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.read_block(0, 16);
        ctx.read_page(1000);
        let mut events = Vec::new();
        while ctx.step(&mut events) {}
        let p = ctx.io_profile();
        assert_eq!(p.io_ops, 2);
        assert_eq!(p.pages_read, 17);
        assert!(p.throughput_mb_s > 0.0);
        assert!(p.mean_latency_us > 0.0);
        assert!(p.peak_queue_depth >= 2.0);
    }

    #[test]
    fn quiesce_leaves_device_idle_and_pool_populated() {
        let mut dev = consumer_pcie_ssd(1 << 16, 1);
        let mut pool = BufferPool::new(64);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        ctx.read_block(0, 8);
        ctx.quiesce();
        assert_eq!(ctx.device.outstanding(), 0);
        for p in 0..8u64 {
            assert!(ctx.pool.contains(p));
        }
    }
}
