//! Equi-join operators with *opposite* I/O profiles.
//!
//! Both join `outer.C2 = inner.C2` and push the outer predicate tree down
//! into the outer scan, but they stress the device in opposite ways —
//! which is exactly the choice the QDTT cost model arbitrates:
//!
//! * [`InlDriver`] — **index-nested-loop**: a sequential outer scan feeds
//!   a pool of concurrent index probes into the inner table. Every probe
//!   is a root→leaf descent plus random heap-page fetches, so the device
//!   sees random reads in a *small band* (the inner extent) at a queue
//!   depth set by [`InlConfig::probe_depth`] — the regime where deep
//!   queues and band locality pay (QDTT's D(band, depth) surface).
//! * [`HashJoinDriver`] — **hybrid hash**: both tables stream
//!   sequentially once; rows outside partition 0 spill to per-partition
//!   scratch slices with sequential page writes (the PR-7 write path) and
//!   stream back sequentially per partition. All I/O is sequential at
//!   ring depth [`HashJoinConfig::io_depth`]; the price is writing and
//!   re-reading the spilled fraction `(P-1)/P` of both inputs.
//!
//! Both are [`QueryDriver`]s: they run solo under [`crate::execute`] or
//! inside [`crate::MultiEngine`] sessions under admission leases, and
//! ignore events they do not own.

use crate::cpu::TaskId;
use crate::driver::{QueryAnswer, QueryDriver};
use crate::engine::{io_failure, Event, ExecError, RetryPolicy, SimContext};
use crate::query::{JoinClause, RowAcc, RowEval};
use pioqo_bufpool::Access;
use pioqo_device::IoStatus;
use pioqo_storage::{BTreeIndex, HeapTable};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Index-nested-loop join configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InlConfig {
    /// Concurrent index probes kept in flight (the operator's effective
    /// random-read queue depth; admission leases cap it).
    pub probe_depth: u32,
    /// Outer-scan prefetch distance in blocks.
    pub prefetch_blocks: u32,
    /// Pages per outer-scan prefetch block.
    pub block_pages: u32,
    /// Retry/timeout policy for the join's I/O (default: no retries).
    pub retry: RetryPolicy,
}

impl Default for InlConfig {
    fn default() -> Self {
        InlConfig {
            probe_depth: 8,
            prefetch_blocks: 4,
            block_pages: 16,
            retry: RetryPolicy::default(),
        }
    }
}

/// Hybrid hash join configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashJoinConfig {
    /// Hash partitions. Partition 0 is held in memory (the "hybrid" part);
    /// partitions 1..P spill to the scratch extent. 1 = a pure in-memory
    /// hash join, no spill I/O at all.
    pub partitions: u32,
    /// Sequential read ring depth (outstanding block submissions).
    pub io_depth: u32,
    /// Pages per block submission.
    pub block_pages: u32,
    /// Retry/timeout policy for the join's I/O (default: no retries).
    pub retry: RetryPolicy,
}

impl Default for HashJoinConfig {
    fn default() -> Self {
        HashJoinConfig {
            partitions: 8,
            io_depth: 8,
            block_pages: 16,
            retry: RetryPolicy::default(),
        }
    }
}

/// A sequential block-read ring: streams `total_pages` pages starting at
/// `base_dp` in `block_pages`-sized submissions, keeping up to `depth`
/// blocks in flight, and hands back contiguous ready runs at the frontier.
struct SeqReader {
    base_dp: u64,
    total_pages: u64,
    block_pages: u32,
    depth: u32,
    /// Next page offset to submit.
    next_off: u64,
    /// io id -> (page offset, pages).
    inflight: BTreeMap<u64, (u64, u32)>,
    /// Completed runs not yet consumed: page offset -> pages.
    ready: BTreeMap<u64, u32>,
    /// Offsets below this are consumed.
    frontier: u64,
}

impl SeqReader {
    fn new(base_dp: u64, total_pages: u64, block_pages: u32, depth: u32) -> SeqReader {
        SeqReader {
            base_dp,
            total_pages,
            block_pages: block_pages.max(1),
            depth: depth.max(1),
            next_off: 0,
            inflight: BTreeMap::new(),
            ready: BTreeMap::new(),
            frontier: 0,
        }
    }

    /// Everything submitted, completed and consumed.
    fn exhausted(&self) -> bool {
        self.frontier >= self.total_pages
    }

    /// Keep `depth` blocks in flight ahead of the frontier.
    fn top_up(&mut self, ctx: &mut SimContext<'_>) {
        while self.next_off < self.total_pages && self.inflight.len() < self.depth as usize {
            let len = (self.block_pages as u64).min(self.total_pages - self.next_off) as u32;
            let io = ctx.read_block(self.base_dp + self.next_off, len);
            self.inflight.insert(io, (self.next_off, len));
            self.next_off += len as u64;
        }
    }

    /// Mark a block completion; returns its `(device start, pages)` when
    /// the io belonged to this reader.
    fn on_block(&mut self, io: u64) -> Option<(u64, u32)> {
        let (off, len) = self.inflight.remove(&io)?;
        self.ready.insert(off, len);
        Some((self.base_dp + off, len))
    }

    fn owns(&self, io: u64) -> bool {
        self.inflight.contains_key(&io)
    }

    /// Consume the contiguous ready run at the frontier, if any.
    fn take_run(&mut self) -> Option<(u64, u64)> {
        let start = self.frontier;
        let mut len = 0u64;
        while let Some(&l) = self.ready.get(&(start + len)) {
            self.ready.remove(&(start + len));
            len += l as u64;
        }
        if len == 0 {
            return None;
        }
        self.frontier += len;
        Some((start, len))
    }
}

/// One in-flight index probe: root→leaf descent, then the key's entry
/// range, then the referenced heap rows.
struct Probe {
    /// Outer row that spawned the probe (`lc2` is the join key).
    lc1: u32,
    lc2: u32,
    stage: PStage,
    /// Root→leaf device pages still to visit.
    path: Vec<u64>,
    path_idx: usize,
    /// Inner-index leaves overlapping the key's entry range.
    leaves: Vec<u64>,
    leaf_idx: usize,
    first_entry: u64,
    end_entry: u64,
    /// Heap row ids of the current leaf's key-equal entries.
    rids: Vec<u64>,
    rid_idx: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PStage {
    /// Descending the path; a pending CPU task finishes the current level.
    Path,
    /// Fetching/decoding the current leaf.
    Leaf,
    /// Fetching/joining the current rid's heap row.
    Row,
}

/// The index-nested-loop join state machine. See the module docs.
pub struct InlDriver<'q> {
    cfg: InlConfig,
    left: &'q HeapTable,
    right: &'q HeapTable,
    right_index: &'q BTreeIndex,
    eval: RowEval,
    outer: SeqReader,
    /// The single outer-scan CPU task in flight: (task, run start, len).
    outer_cpu: Option<(TaskId, u64, u64)>,
    /// Outer rows admitted by the predicate, awaiting a probe slot.
    keys: VecDeque<(u32, u32)>,
    probes: BTreeMap<u64, Probe>,
    next_probe: u64,
    /// Page read io -> probes waiting on it.
    probe_io: BTreeMap<u64, Vec<u64>>,
    /// CPU task -> probe it advances.
    probe_task: BTreeMap<TaskId, u64>,
    acc: RowAcc,
    op_track: u32,
    finished: bool,
}

impl<'q> InlDriver<'q> {
    /// A driver joining `left` (outer, filtered by `eval`) against the
    /// clause's inner table via its `C2` index.
    pub fn new(
        cfg: InlConfig,
        left: &'q HeapTable,
        join: JoinClause<'q>,
        eval: RowEval,
    ) -> Result<InlDriver<'q>, ExecError> {
        assert!(cfg.probe_depth >= 1);
        let right_index = join.right_index.ok_or(ExecError::Internal {
            detail: "index-nested-loop join without an inner index",
        })?;
        let outer = SeqReader::new(
            left.device_page(0),
            left.n_pages(),
            cfg.block_pages,
            cfg.prefetch_blocks.max(1),
        );
        Ok(InlDriver {
            cfg,
            left,
            right: join.right,
            right_index,
            eval,
            outer,
            outer_cpu: None,
            keys: VecDeque::new(),
            probes: BTreeMap::new(),
            next_probe: 0,
            probe_io: BTreeMap::new(),
            probe_task: BTreeMap::new(),
            acc: RowAcc::default(),
            op_track: 0,
            finished: false,
        })
    }

    /// Probe-queue high-water mark: beyond it the outer scan stops
    /// claiming new runs so memory (and the probe backlog) stays bounded.
    fn high_water(&self) -> usize {
        (self.cfg.probe_depth as usize) * 4
    }

    /// Advance everything that can move without an event.
    fn pump(&mut self, ctx: &mut SimContext<'_>) {
        // Spawn probes up to the configured depth.
        while self.probes.len() < self.cfg.probe_depth as usize {
            let Some((lc1, lc2)) = self.keys.pop_front() else {
                break;
            };
            self.start_probe(ctx, lc1, lc2);
        }
        // Outer scan: fetch ahead unless the probe backlog is deep, and
        // evaluate the ready run when no evaluation is in flight.
        if self.keys.len() < self.high_water() {
            self.outer.top_up(ctx);
            if self.outer_cpu.is_none() {
                if let Some((start, len)) = self.outer.take_run() {
                    let mut work = 0.0;
                    for p in start..start + len {
                        let rows = self.left.spec().rows_in_page(p);
                        work += self.eval.page_work(ctx.costs(), rows.end - rows.start);
                    }
                    let t = ctx.submit_cpu(work);
                    self.outer_cpu = Some((t, start, len));
                }
            }
        }
        self.maybe_finish(ctx);
    }

    fn outer_done(&self) -> bool {
        self.outer.exhausted() && self.outer_cpu.is_none()
    }

    fn maybe_finish(&mut self, ctx: &mut SimContext<'_>) {
        if !self.finished && self.outer_done() && self.keys.is_empty() && self.probes.is_empty() {
            ctx.trace_span_end(self.op_track, "inl_join");
            self.finished = true;
        }
    }

    fn start_probe(&mut self, ctx: &mut SimContext<'_>, lc1: u32, lc2: u32) {
        let id = self.next_probe;
        self.next_probe += 1;
        let (leaves, first_entry, end_entry, probe_leaf) = match self.right_index.range(lc2, lc2) {
            Some(r) => (
                (r.first_leaf..=r.last_leaf).collect(),
                r.first_entry,
                r.end_entry,
                r.first_leaf,
            ),
            // Missing key: the descent still happens, finds nothing.
            None => (Vec::new(), 0, 0, 0),
        };
        self.probes.insert(
            id,
            Probe {
                lc1,
                lc2,
                stage: PStage::Path,
                path: self.right_index.path_to_leaf(probe_leaf),
                path_idx: 0,
                leaves,
                leaf_idx: 0,
                first_entry,
                end_entry,
                rids: Vec::new(),
                rid_idx: 0,
            },
        );
        self.step_probe(ctx, id);
    }

    /// Move probe `id` forward: request the page its stage needs, issuing
    /// a read on a miss, a CPU task on a hit, or finishing the probe.
    fn step_probe(&mut self, ctx: &mut SimContext<'_>, id: u64) {
        loop {
            let p = self.probes.get_mut(&id).expect("live probe");
            let dp = match p.stage {
                PStage::Path => {
                    if p.path_idx >= p.path.len() {
                        p.stage = PStage::Leaf;
                        continue;
                    }
                    p.path[p.path_idx]
                }
                PStage::Leaf => {
                    if p.leaf_idx >= p.leaves.len() {
                        self.finish_probe(ctx, id);
                        return;
                    }
                    self.right_index.device_page_of_leaf(p.leaves[p.leaf_idx])
                }
                PStage::Row => {
                    if p.rid_idx >= p.rids.len() {
                        p.leaf_idx += 1;
                        p.stage = PStage::Leaf;
                        continue;
                    }
                    let rid = p.rids[p.rid_idx];
                    self.right.device_page(self.right.spec().page_of_row(rid))
                }
            };
            let p = self.probes.get_mut(&id).expect("live probe");
            match ctx.pool.request(dp) {
                Access::Hit => {
                    let work = match p.stage {
                        PStage::Path => ctx.costs().leaf_decode_us,
                        PStage::Leaf => {
                            let leaf = p.leaves[p.leaf_idx];
                            let lr = self.right_index.leaf_entry_range(leaf);
                            let n = (lr.end.min(p.end_entry))
                                .saturating_sub(lr.start.max(p.first_entry));
                            ctx.costs().leaf_decode_us + n as f64 * ctx.costs().entry_decode_us
                        }
                        PStage::Row => ctx.costs().row_lookup_us,
                    };
                    let t = ctx.submit_cpu(work);
                    self.probe_task.insert(t, id);
                }
                Access::Miss => {
                    let io = ctx.read_page(dp);
                    self.probe_io.entry(io).or_default().push(id);
                }
            }
            return;
        }
    }

    /// A probe's CPU task completed: apply the stage's effect and step on.
    fn on_probe_cpu(&mut self, ctx: &mut SimContext<'_>, id: u64) -> Result<(), ExecError> {
        let p = self.probes.get_mut(&id).expect("live probe");
        match p.stage {
            PStage::Path => {
                ctx.pool.unpin(p.path[p.path_idx])?;
                p.path_idx += 1;
            }
            PStage::Leaf => {
                let leaf = p.leaves[p.leaf_idx];
                let lr = self.right_index.leaf_entry_range(leaf);
                let from = lr.start.max(p.first_entry);
                let to = lr.end.min(p.end_entry);
                p.rids = (from..to).map(|i| self.right_index.entry(i).1).collect();
                p.rid_idx = 0;
                p.stage = PStage::Row;
                ctx.pool.unpin(self.right_index.device_page_of_leaf(leaf))?;
            }
            PStage::Row => {
                let rid = p.rids[p.rid_idx];
                let (rc1, rc2) = self.right.row(rid);
                debug_assert_eq!(rc2, p.lc2, "index probe returned a foreign key");
                let (lc1, lc2) = (p.lc1, p.lc2);
                self.eval.join_pair(lc1, lc2, rc1, &mut self.acc);
                let p = self.probes.get_mut(&id).expect("live probe");
                p.rid_idx += 1;
                ctx.pool
                    .unpin(self.right.device_page(self.right.spec().page_of_row(rid)))?;
            }
        }
        self.step_probe(ctx, id);
        Ok(())
    }

    fn finish_probe(&mut self, ctx: &mut SimContext<'_>, id: u64) {
        self.probes.remove(&id);
        if let Some((lc1, lc2)) = self.keys.pop_front() {
            self.start_probe(ctx, lc1, lc2);
        }
        self.maybe_finish(ctx);
    }
}

impl QueryDriver for InlDriver<'_> {
    fn operator(&self) -> &'static str {
        "inl"
    }

    fn start(&mut self, ctx: &mut SimContext<'_>) -> Result<(), ExecError> {
        self.op_track = ctx.trace_track("inl");
        ctx.trace_span_begin(self.op_track, "inl_join");
        self.pump(ctx);
        self.maybe_finish(ctx);
        Ok(())
    }

    fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: &Event) -> Result<(), ExecError> {
        match *ev {
            Event::IoBlock {
                io,
                start,
                len,
                status,
                attempts,
            } => {
                if !self.outer.owns(io) {
                    return Ok(());
                }
                if status == IoStatus::Error {
                    return Err(io_failure("inl", start, attempts));
                }
                self.outer.on_block(io);
                for dp in start..start + len as u64 {
                    ctx.pool.admit_prefetched(dp)?;
                }
                self.pump(ctx);
            }
            Event::IoPage {
                io,
                device_page,
                status,
                attempts,
            } => {
                let Some(ids) = self.probe_io.remove(&io) else {
                    return Ok(());
                };
                if status == IoStatus::Error {
                    return Err(io_failure("inl", device_page, attempts));
                }
                ctx.pool.admit_prefetched(device_page)?;
                for id in ids {
                    // Re-request in step: hit now (or a fresh read if a
                    // pathologically small pool evicted it again).
                    self.step_probe(ctx, id);
                }
                self.pump(ctx);
            }
            Event::Cpu(task) => {
                if let Some(id) = self.probe_task.remove(&task) {
                    self.on_probe_cpu(ctx, id)?;
                    self.pump(ctx);
                    return Ok(());
                }
                let Some((t, start, len)) = self.outer_cpu else {
                    return Ok(());
                };
                if t != task {
                    return Ok(());
                }
                self.outer_cpu = None;
                // The evaluated run: matching outer rows join the queue.
                for page in start..start + len {
                    for r in self.left.spec().rows_in_page(page) {
                        let (c1, c2) = self.left.row(r);
                        if self.eval.left_row(c1, c2, &mut self.acc) {
                            self.keys.push_back((c1, c2));
                        }
                    }
                }
                self.pump(ctx);
            }
            Event::IoWrite { .. } | Event::Timer { .. } => {}
        }
        Ok(())
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn answer(&self) -> QueryAnswer {
        QueryAnswer::from_acc(&self.acc)
    }
}

/// A spill slice: a contiguous run of scratch pages for one partition of
/// one side.
struct Slice {
    base_dp: u64,
    capacity: u64,
    /// Pages written so far.
    used: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum HPhase {
    /// Streaming the inner (build) table.
    Build,
    /// Streaming the outer (probe) table.
    Probe,
    /// Barrier: all spill writes must land before re-reading.
    Drain,
    /// Re-reading spilled partition `p`'s inner slice.
    PartBuild(u32),
    /// Re-reading spilled partition `p`'s outer slice.
    PartProbe(u32),
    Done,
}

/// The hybrid-hash-join state machine. See the module docs.
pub struct HashJoinDriver<'q> {
    cfg: HashJoinConfig,
    left: &'q HeapTable,
    right: &'q HeapTable,
    eval: RowEval,
    phase: HPhase,
    reader: SeqReader,
    /// The single scan/partition CPU task in flight.
    cur_cpu: Option<(TaskId, u64, u64)>,
    /// Partition 0's in-memory table: key -> (count, max inner payload).
    ht: BTreeMap<u32, (u64, u32)>,
    /// Spilled inner rows per partition (index 0 unused).
    spill_right: Vec<Vec<(u32, u32)>>,
    /// Spilled outer rows per partition (index 0 unused).
    spill_left: Vec<Vec<(u32, u32)>>,
    /// Rows already flushed to disk per right/left spill slice.
    flushed_right: Vec<u64>,
    flushed_left: Vec<u64>,
    slices_right: Vec<Slice>,
    slices_left: Vec<Slice>,
    pending_writes: BTreeSet<u64>,
    acc: RowAcc,
    op_track: u32,
}

impl<'q> HashJoinDriver<'q> {
    /// A driver joining `left` (outer, filtered by `eval`) against the
    /// clause's inner table with a hybrid hash join. Partitions beyond the
    /// in-memory partition 0 need the clause's spill extent.
    pub fn new(
        cfg: HashJoinConfig,
        left: &'q HeapTable,
        join: JoinClause<'q>,
        eval: RowEval,
    ) -> Result<HashJoinDriver<'q>, ExecError> {
        assert!(cfg.partitions >= 1);
        let np = cfg.partitions as usize;
        let (slices_right, slices_left) = if np > 1 {
            let ext = join.spill.ok_or(ExecError::Internal {
                detail: "hybrid hash join without a spill extent",
            })?;
            let n_slices = 2 * (np as u64 - 1);
            let per = ext.pages / n_slices;
            if per == 0 {
                return Err(ExecError::Internal {
                    detail: "hash-join spill extent too small",
                });
            }
            let slice = |i: u64| Slice {
                base_dp: ext.base + i * per,
                capacity: per,
                used: 0,
            };
            (
                (0..np as u64 - 1).map(slice).collect(),
                (np as u64 - 1..n_slices).map(slice).collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let reader = SeqReader::new(
            join.right.device_page(0),
            join.right.n_pages(),
            cfg.block_pages,
            cfg.io_depth,
        );
        Ok(HashJoinDriver {
            cfg,
            left,
            right: join.right,
            eval,
            phase: HPhase::Build,
            reader,
            cur_cpu: None,
            ht: BTreeMap::new(),
            spill_right: vec![Vec::new(); np],
            spill_left: vec![Vec::new(); np],
            flushed_right: vec![0; np],
            flushed_left: vec![0; np],
            slices_right,
            slices_left,
            pending_writes: BTreeSet::new(),
            acc: RowAcc::default(),
            op_track: 0,
        })
    }

    fn partition_of(&self, key: u32) -> usize {
        (key % self.cfg.partitions) as usize
    }

    /// Flush full spill pages of partition `p` (or everything with
    /// `all`), charging one sequential page write per page.
    fn flush_spill(
        &mut self,
        ctx: &mut SimContext<'_>,
        right_side: bool,
        p: usize,
        all: bool,
    ) -> Result<(), ExecError> {
        let rpp = if right_side {
            self.right.spec().rows_per_page as u64
        } else {
            self.left.spec().rows_per_page as u64
        };
        let (rows, flushed, slice) = if right_side {
            (
                self.spill_right[p].len() as u64,
                &mut self.flushed_right[p],
                &mut self.slices_right[p - 1],
            )
        } else {
            (
                self.spill_left[p].len() as u64,
                &mut self.flushed_left[p],
                &mut self.slices_left[p - 1],
            )
        };
        loop {
            let unflushed = rows - *flushed;
            let write = if all { unflushed > 0 } else { unflushed >= rpp };
            if !write {
                return Ok(());
            }
            if slice.used >= slice.capacity {
                return Err(ExecError::Internal {
                    detail: "hash-join spill slice overflow",
                });
            }
            let io = ctx.write_page(slice.base_dp + slice.used);
            self.pending_writes.insert(io);
            slice.used += 1;
            *flushed += unflushed.min(rpp);
        }
    }

    /// Begin re-reading one spill slice (or skip ahead when it is empty).
    fn enter_part(&mut self, ctx: &mut SimContext<'_>, phase: HPhase) -> Result<(), ExecError> {
        self.phase = phase;
        loop {
            match self.phase {
                HPhase::PartBuild(p) => {
                    let s = &self.slices_right[p as usize - 1];
                    if s.used == 0 {
                        self.phase = HPhase::PartProbe(p);
                        continue;
                    }
                    self.reader =
                        SeqReader::new(s.base_dp, s.used, self.cfg.block_pages, self.cfg.io_depth);
                    self.reader.top_up(ctx);
                    return Ok(());
                }
                HPhase::PartProbe(p) => {
                    let s = &self.slices_left[p as usize - 1];
                    if s.used == 0 || self.spill_right[p as usize].is_empty() {
                        // Nothing on one side: no pairs from this partition.
                        self.phase = if (p as usize) + 1 < self.cfg.partitions as usize {
                            HPhase::PartBuild(p + 1)
                        } else {
                            HPhase::Done
                        };
                        continue;
                    }
                    self.reader =
                        SeqReader::new(s.base_dp, s.used, self.cfg.block_pages, self.cfg.io_depth);
                    self.reader.top_up(ctx);
                    return Ok(());
                }
                HPhase::Done => {
                    ctx.trace_span_end(self.op_track, "hash_join");
                    return Ok(());
                }
                HPhase::Build | HPhase::Probe | HPhase::Drain => {
                    return Err(ExecError::Internal {
                        detail: "enter_part called outside the partition phases",
                    })
                }
            }
        }
    }

    /// Join partition `p`'s spilled rows (both sides are in memory; the
    /// spill I/O priced their round trip).
    fn join_partition(&mut self, p: usize) {
        let mut pt: BTreeMap<u32, (u64, u32)> = BTreeMap::new();
        for &(rc1, rc2) in &self.spill_right[p] {
            let e = pt.entry(rc2).or_insert((0, 0));
            e.0 += 1;
            e.1 = e.1.max(rc1);
        }
        let rows = std::mem::take(&mut self.spill_left[p]);
        for (lc1, lc2) in rows {
            if let Some(&(n, max)) = pt.get(&lc2) {
                self.eval.join_pair_n(lc1, lc2, max, n, &mut self.acc);
            }
        }
    }

    /// Advance the streaming phases: top the ring up, start the next CPU
    /// task over the contiguous ready run, cross phase boundaries.
    fn pump(&mut self, ctx: &mut SimContext<'_>) -> Result<(), ExecError> {
        loop {
            match self.phase {
                HPhase::Build | HPhase::Probe => {
                    self.reader.top_up(ctx);
                    if self.cur_cpu.is_some() {
                        return Ok(());
                    }
                    if let Some((start, len)) = self.reader.take_run() {
                        let mut work = 0.0;
                        for p in start..start + len {
                            let rows = if self.phase == HPhase::Build {
                                let r = self.right.spec().rows_in_page(p);
                                work += ctx.costs().page_overhead_us
                                    + (r.end - r.start) as f64 * ctx.costs().row_scan_us;
                                continue;
                            } else {
                                let r = self.left.spec().rows_in_page(p);
                                r.end - r.start
                            };
                            work += self.eval.page_work(ctx.costs(), rows);
                        }
                        let t = ctx.submit_cpu(work);
                        self.cur_cpu = Some((t, start, len));
                        return Ok(());
                    }
                    if self.reader.exhausted() {
                        if self.phase == HPhase::Build {
                            // Flush partial spill pages, start the outer
                            // stream.
                            for p in 1..self.cfg.partitions as usize {
                                self.flush_spill(ctx, true, p, true)?;
                            }
                            self.phase = HPhase::Probe;
                            self.reader = SeqReader::new(
                                self.left.device_page(0),
                                self.left.n_pages(),
                                self.cfg.block_pages,
                                self.cfg.io_depth,
                            );
                            continue;
                        }
                        for p in 1..self.cfg.partitions as usize {
                            self.flush_spill(ctx, false, p, true)?;
                        }
                        self.phase = HPhase::Drain;
                        continue;
                    }
                    return Ok(());
                }
                HPhase::Drain => {
                    if !self.pending_writes.is_empty() {
                        return Ok(());
                    }
                    if self.cfg.partitions > 1 {
                        return self.enter_part(ctx, HPhase::PartBuild(1));
                    }
                    self.phase = HPhase::Done;
                    ctx.trace_span_end(self.op_track, "hash_join");
                    return Ok(());
                }
                HPhase::PartBuild(_) | HPhase::PartProbe(_) => {
                    self.reader.top_up(ctx);
                    if self.cur_cpu.is_some() {
                        return Ok(());
                    }
                    if let Some((start, len)) = self.reader.take_run() {
                        // Spill pages hold raw row runs; charge scan-rate
                        // CPU for rebuild, lookup-rate for probe.
                        let build = matches!(self.phase, HPhase::PartBuild(_));
                        let rpp = if build {
                            self.right.spec().rows_per_page
                        } else {
                            self.left.spec().rows_per_page
                        } as f64;
                        let per_row = if build {
                            ctx.costs().row_scan_us
                        } else {
                            ctx.costs().row_lookup_us
                        };
                        let work = len as f64 * (ctx.costs().page_overhead_us + rpp * per_row);
                        let t = ctx.submit_cpu(work);
                        self.cur_cpu = Some((t, start, len));
                        return Ok(());
                    }
                    if self.reader.exhausted() {
                        // Slice fully streamed and processed by the CPU
                        // completion handler; transition happens there.
                        return Ok(());
                    }
                    return Ok(());
                }
                HPhase::Done => return Ok(()),
            }
        }
    }

    /// Handle completion of the current phase's CPU task.
    fn on_cpu(&mut self, ctx: &mut SimContext<'_>, start: u64, len: u64) -> Result<(), ExecError> {
        match self.phase {
            HPhase::Build => {
                for page in start..start + len {
                    for r in self.right.spec().rows_in_page(page) {
                        let (rc1, rc2) = self.right.row(r);
                        let p = self.partition_of(rc2);
                        if p == 0 {
                            let e = self.ht.entry(rc2).or_insert((0, 0));
                            e.0 += 1;
                            e.1 = e.1.max(rc1);
                        } else {
                            self.spill_right[p].push((rc1, rc2));
                            self.flush_spill(ctx, true, p, false)?;
                        }
                    }
                }
            }
            HPhase::Probe => {
                for page in start..start + len {
                    for r in self.left.spec().rows_in_page(page) {
                        let (lc1, lc2) = self.left.row(r);
                        if !self.eval.left_row(lc1, lc2, &mut self.acc) {
                            continue;
                        }
                        let p = self.partition_of(lc2);
                        if p == 0 {
                            if let Some(&(n, max)) = self.ht.get(&lc2) {
                                self.eval.join_pair_n(lc1, lc2, max, n, &mut self.acc);
                            }
                        } else {
                            self.spill_left[p].push((lc1, lc2));
                            self.flush_spill(ctx, false, p, false)?;
                        }
                    }
                }
            }
            HPhase::PartBuild(p) => {
                if self.reader.exhausted() && self.reader.ready.is_empty() {
                    return self.enter_part(ctx, HPhase::PartProbe(p));
                }
            }
            HPhase::PartProbe(p) => {
                if self.reader.exhausted() && self.reader.ready.is_empty() {
                    self.join_partition(p as usize);
                    let next = if (p as usize) + 1 < self.cfg.partitions as usize {
                        HPhase::PartBuild(p + 1)
                    } else {
                        HPhase::Done
                    };
                    return self.enter_part(ctx, next);
                }
            }
            HPhase::Drain | HPhase::Done => {
                return Err(ExecError::Internal {
                    detail: "hash-join cpu completion in a non-compute phase",
                })
            }
        }
        Ok(())
    }
}

impl QueryDriver for HashJoinDriver<'_> {
    fn operator(&self) -> &'static str {
        "hash_join"
    }

    fn start(&mut self, ctx: &mut SimContext<'_>) -> Result<(), ExecError> {
        self.op_track = ctx.trace_track("hash_join");
        ctx.trace_span_begin(self.op_track, "hash_join");
        self.pump(ctx)
    }

    fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: &Event) -> Result<(), ExecError> {
        match *ev {
            Event::IoBlock {
                io,
                start,
                len,
                status,
                attempts,
            } => {
                if !self.reader.owns(io) {
                    return Ok(());
                }
                if status == IoStatus::Error {
                    return Err(io_failure("hash_join", start, attempts));
                }
                self.reader.on_block(io);
                // Heap pages go through the pool; spill re-reads are
                // scratch traffic and bypass it.
                if matches!(self.phase, HPhase::Build | HPhase::Probe) {
                    for dp in start..start + len as u64 {
                        ctx.pool.admit_prefetched(dp)?;
                    }
                }
                self.pump(ctx)?;
            }
            Event::IoWrite {
                io,
                start,
                status,
                attempts,
                ..
            } => {
                if !self.pending_writes.remove(&io) {
                    return Ok(());
                }
                if status == IoStatus::Error {
                    return Err(io_failure("hash_join", start, attempts));
                }
                self.pump(ctx)?;
            }
            Event::Cpu(task) => {
                let Some((t, start, len)) = self.cur_cpu else {
                    return Ok(());
                };
                if t != task {
                    return Ok(());
                }
                self.cur_cpu = None;
                self.on_cpu(ctx, start, len)?;
                self.pump(ctx)?;
            }
            Event::IoPage { .. } | Event::Timer { .. } => {}
        }
        Ok(())
    }

    fn done(&self) -> bool {
        matches!(self.phase, HPhase::Done) && self.pending_writes.is_empty()
    }

    fn answer(&self) -> QueryAnswer {
        QueryAnswer::from_acc(&self.acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuConfig;
    use crate::engine::CpuCosts;
    use crate::execute::{execute, PlanSpec};
    use crate::query::{oracle, Predicate, QuerySpec};
    use pioqo_bufpool::BufferPool;
    use pioqo_device::presets::{consumer_pcie_ssd, hdd_7200};
    use pioqo_storage::{Extent, TableSpec, Tablespace};

    struct Fixture {
        left: HeapTable,
        right: HeapTable,
        right_index: BTreeIndex,
        spill: Extent,
        capacity: u64,
    }

    fn fixture(left_rows: u64, right_rows: u64, c2_max: u32) -> Fixture {
        let lspec = TableSpec {
            c2_max,
            ..TableSpec::paper_table(33, left_rows, 401)
        };
        let rspec = TableSpec {
            name: "T_inner".to_string(),
            c2_max,
            ..TableSpec::paper_table(33, right_rows, 402)
        };
        let mut ts = Tablespace::new(4 * (lspec.n_pages() + rspec.n_pages()) + 4000);
        let left = HeapTable::create(lspec, &mut ts).expect("fits");
        let right = HeapTable::create(rspec, &mut ts).expect("fits");
        let right_index = BTreeIndex::build(
            "inner_c2",
            right.data().c2_entries(),
            right.spec().page_size,
            &mut ts,
        )
        .expect("fits");
        let spill = ts
            .alloc("join_spill", 2 * (left.n_pages() + right.n_pages()) + 64)
            .expect("fits");
        let capacity = ts.capacity();
        Fixture {
            left,
            right,
            right_index,
            spill,
            capacity,
        }
    }

    fn join_spec<'a>(fx: &'a Fixture, plan: PlanSpec) -> QuerySpec<'a> {
        QuerySpec::scan(&fx.left)
            .filter(Predicate::c2_between(0, u32::MAX / 2))
            .with_plan(plan)
            .join(crate::query::JoinClause {
                right: &fx.right,
                right_index: Some(&fx.right_index),
                spill: Some(fx.spill),
            })
    }

    fn run(fx: &Fixture, plan: PlanSpec, ssd: bool) -> crate::metrics::ScanMetrics {
        let mut pool = BufferPool::new(4096);
        let q = join_spec(fx, plan);
        if ssd {
            let mut dev = consumer_pcie_ssd(fx.capacity, 17);
            let mut ctx = SimContext::new(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
            );
            execute(&mut ctx, &q).expect("join runs")
        } else {
            let mut dev = hdd_7200(fx.capacity, 17);
            let mut ctx = SimContext::new(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
            );
            execute(&mut ctx, &q).expect("join runs")
        }
    }

    #[test]
    fn inl_matches_oracle() {
        let fx = fixture(3_000, 2_000, 1_000);
        let want = oracle(&join_spec(&fx, PlanSpec::Inl(InlConfig::default())));
        assert!(want.matched > 0, "fixture must produce joined pairs");
        let m = run(&fx, PlanSpec::Inl(InlConfig::default()), true);
        assert_eq!(m.max_c1, want.agg);
        assert_eq!(m.rows_matched, want.matched);
        assert_eq!(m.rows_examined, want.examined);
        assert_eq!(m.fingerprint, want.fingerprint);
    }

    #[test]
    fn hash_matches_oracle_with_and_without_spill() {
        let fx = fixture(3_000, 2_000, 1_000);
        let want = oracle(&join_spec(&fx, PlanSpec::Hash(HashJoinConfig::default())));
        for partitions in [1u32, 4, 8] {
            let m = run(
                &fx,
                PlanSpec::Hash(HashJoinConfig {
                    partitions,
                    ..HashJoinConfig::default()
                }),
                true,
            );
            assert_eq!(m.max_c1, want.agg, "P={partitions}");
            assert_eq!(m.rows_matched, want.matched, "P={partitions}");
            assert_eq!(m.fingerprint, want.fingerprint, "P={partitions}");
        }
    }

    #[test]
    fn operators_agree_with_each_other() {
        let fx = fixture(5_000, 3_000, 500);
        let inl = run(&fx, PlanSpec::Inl(InlConfig::default()), true);
        let hash = run(&fx, PlanSpec::Hash(HashJoinConfig::default()), true);
        assert_eq!(inl.max_c1, hash.max_c1);
        assert_eq!(inl.rows_matched, hash.rows_matched);
        assert_eq!(inl.fingerprint, hash.fingerprint);
    }

    #[test]
    fn probe_depth_raises_queue_depth() {
        let fx = fixture(4_000, 20_000, 2_000);
        let shallow = run(
            &fx,
            PlanSpec::Inl(InlConfig {
                probe_depth: 1,
                ..InlConfig::default()
            }),
            true,
        );
        let deep = run(
            &fx,
            PlanSpec::Inl(InlConfig {
                probe_depth: 16,
                ..InlConfig::default()
            }),
            true,
        );
        assert_eq!(shallow.rows_matched, deep.rows_matched);
        assert!(
            deep.io.mean_queue_depth > shallow.io.mean_queue_depth * 2.0,
            "probe depth should deepen the device queue: {} vs {}",
            shallow.io.mean_queue_depth,
            deep.io.mean_queue_depth
        );
        assert!(
            deep.runtime < shallow.runtime,
            "deep probes should finish faster on SSD: {} vs {}",
            shallow.runtime,
            deep.runtime
        );
    }

    #[test]
    fn hash_join_writes_and_rereads_spill() {
        let fx = fixture(6_000, 6_000, 3_000);
        let spilled = run(
            &fx,
            PlanSpec::Hash(HashJoinConfig {
                partitions: 8,
                ..HashJoinConfig::default()
            }),
            true,
        );
        assert!(
            spilled.io.pages_written > 0,
            "8 partitions must spill 7/8 of both inputs"
        );
        let memory = run(
            &fx,
            PlanSpec::Hash(HashJoinConfig {
                partitions: 1,
                ..HashJoinConfig::default()
            }),
            true,
        );
        assert_eq!(memory.io.pages_written, 0, "P=1 never spills");
        assert_eq!(memory.rows_matched, spilled.rows_matched);
        assert_eq!(memory.fingerprint, spilled.fingerprint);
        assert!(
            memory.runtime < spilled.runtime,
            "spilling costs I/O: {} vs {}",
            memory.runtime,
            spilled.runtime
        );
    }

    #[test]
    fn hash_beats_inl_on_hdd() {
        // Random probes on a spindle are brutal; two sequential streams
        // plus a sequential spill round trip win easily.
        let fx = fixture(4_000, 8_000, 1_000);
        let inl = run(&fx, PlanSpec::Inl(InlConfig::default()), false);
        let hash = run(&fx, PlanSpec::Hash(HashJoinConfig::default()), false);
        assert_eq!(inl.rows_matched, hash.rows_matched);
        assert!(
            hash.runtime < inl.runtime,
            "hash must beat INL on HDD: {} vs {}",
            hash.runtime,
            inl.runtime
        );
    }

    #[test]
    fn empty_outer_match_set_still_terminates() {
        let fx = fixture(2_000, 1_000, 300);
        let q = QuerySpec::scan(&fx.left)
            .filter(Predicate::c2_between(1, 0)) // empty window
            .with_plan(PlanSpec::Inl(InlConfig::default()))
            .join(crate::query::JoinClause {
                right: &fx.right,
                right_index: Some(&fx.right_index),
                spill: Some(fx.spill),
            });
        let mut dev = consumer_pcie_ssd(fx.capacity, 17);
        let mut pool = BufferPool::new(4096);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let m = execute(&mut ctx, &q).expect("join runs");
        assert_eq!(m.rows_matched, 0);
        assert_eq!(m.max_c1, None);
        assert_eq!(m.rows_examined, 2_000, "outer rows still examined");
    }

    #[test]
    fn determinism_double_run() {
        let fx = fixture(3_000, 2_000, 1_000);
        for plan in [
            PlanSpec::Inl(InlConfig::default()),
            PlanSpec::Hash(HashJoinConfig::default()),
        ] {
            let a = run(&fx, plan.clone(), true);
            let b = run(&fx, plan.clone(), true);
            assert_eq!(a.runtime, b.runtime, "{}", plan.label());
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.io.pages_read, b.io.pages_read);
        }
    }
}
