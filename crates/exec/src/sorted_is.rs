//! Sorted index scan — the access method the paper *couldn't* evaluate.
//!
//! §3.1: "Some databases support a variation of index scan in which before
//! fetching table pages, row identifiers are sorted in the order of page id.
//! In this way, each table page will be fetched at most once. ... Since SAP
//! SQL Anywhere does not support this operator, we could not consider it in
//! our experiments." We implement it as an extension so the optimizer
//! ablations can compare it (see DESIGN.md §8).
//!
//! Single worker, three phases:
//! 1. root→leaf traversal, then leaf pages streamed with a prefetch ring;
//! 2. qualifying row ids sorted by page id (costed `k·log₂k` CPU);
//! 3. each distinct table page fetched exactly once, ascending, with an
//!    active-waiting prefetch ring of configurable depth — so even this
//!    non-parallel operator sustains a deep I/O queue on SSD.
//!
//! The scan is a [`QueryDriver`] (see `driver.rs`): what used to be three
//! blocking wait loops is now one resumable state machine (`pump`), so the
//! operator can share its context with concurrent queries.

use crate::cpu::TaskId;
use crate::driver::{QueryAnswer, QueryDriver};
use crate::engine::{io_failure, Event, ExecError, RetryPolicy, SimContext};
use crate::query::{RowAcc, RowEval};
use pioqo_bufpool::Access;
use pioqo_device::IoStatus;
use pioqo_storage::{BTreeIndex, HeapTable, LeafRange};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// Sorted-index-scan configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SortedIsConfig {
    /// Outstanding table-page reads kept in flight during phase 3
    /// (the operator's effective I/O queue depth).
    pub prefetch_depth: u32,
    /// Outstanding leaf-page reads kept in flight during phase 1.
    pub leaf_prefetch: u32,
    /// Retry/timeout policy for the scan's reads (default: no retries).
    pub retry: RetryPolicy,
}

impl Default for SortedIsConfig {
    fn default() -> Self {
        SortedIsConfig {
            prefetch_depth: 32,
            leaf_prefetch: 8,
            retry: RetryPolicy::default(),
        }
    }
}

#[derive(Clone, Copy)]
enum TravStep {
    Pin,
    AwaitRead(u64),
    AwaitCpu(TaskId),
}

#[derive(Clone, Copy)]
enum RingStep {
    /// Top the ring up and pop the next item.
    Front,
    /// Waiting for the popped item's read.
    AwaitFront(u64),
    /// The item's read landed; pin its page (re-reading on eviction).
    Pin,
    /// Waiting for an eviction re-read.
    AwaitRepin(u64),
    /// Waiting for the item's compute (leaf decode / row lookups).
    AwaitCpu(TaskId),
}

#[derive(Clone, Copy)]
enum Phase {
    Traverse {
        idx: usize,
        step: TravStep,
    },
    /// `item` is the popped leaf id.
    Leaves {
        item: u64,
        step: RingStep,
    },
    Sort {
        task: TaskId,
    },
    /// `item` indexes `pages`.
    Fetch {
        item: usize,
        step: RingStep,
    },
    Done,
}

/// The sorted-index-scan state machine. See the module docs.
pub struct SortedIsDriver<'q> {
    cfg: SortedIsConfig,
    table: &'q HeapTable,
    index: &'q BTreeIndex,
    eval: RowEval,
    low: u32,
    high: u32,
    range: Option<LeafRange>,
    path: Vec<u64>,
    phase: Phase,
    /// Page reads this driver issued and still expects.
    pending: BTreeSet<u64>,
    /// Own reads that completed but have not been consumed by a wait yet.
    completed: BTreeSet<u64>,
    leaves: Vec<u64>,
    l_ring: VecDeque<(u64, u64)>,
    l_next: usize,
    rids: Vec<u64>,
    pages: Vec<(u64, Vec<u64>)>,
    f_ring: VecDeque<(u64, usize)>,
    f_next: usize,
    acc: RowAcc,
    op_track: u32,
    finished: bool,
}

impl<'q> SortedIsDriver<'q> {
    /// A driver evaluating `eval` with a sorted index scan: the index
    /// covers the predicate's sarg window on `C2`, the full tree is applied
    /// as a residual on each fetched row.
    pub fn new(
        cfg: SortedIsConfig,
        table: &'q HeapTable,
        index: &'q BTreeIndex,
        eval: RowEval,
    ) -> SortedIsDriver<'q> {
        let (low, high) = eval.sarg();
        SortedIsDriver {
            cfg,
            table,
            index,
            eval,
            low,
            high,
            range: None,
            path: Vec::new(),
            phase: Phase::Traverse {
                idx: 0,
                step: TravStep::Pin,
            },
            pending: BTreeSet::new(),
            completed: BTreeSet::new(),
            leaves: Vec::new(),
            l_ring: VecDeque::new(),
            l_next: 0,
            rids: Vec::new(),
            pages: Vec::new(),
            f_ring: VecDeque::new(),
            f_next: 0,
            acc: RowAcc::default(),
            op_track: 0,
            finished: false,
        }
    }

    fn read(&mut self, ctx: &mut SimContext<'_>, dp: u64) -> u64 {
        let io = ctx.read_page(dp);
        self.pending.insert(io);
        io
    }

    /// Advance the machine as far as it can go without waiting.
    fn pump(&mut self, ctx: &mut SimContext<'_>) {
        loop {
            // The phase is `Copy`: match on a snapshot, write the successor
            // back explicitly (the arms need `&mut self` for the rings).
            match self.phase {
                Phase::Traverse { idx, step } => match step {
                    TravStep::Pin => {
                        if idx >= self.path.len() {
                            ctx.trace_span_end(self.op_track, "sorted_is_traverse");
                            match self.range {
                                None => {
                                    // Nothing qualifies; the traversal cost
                                    // is the whole runtime.
                                    self.phase = Phase::Done;
                                    self.finished = true;
                                }
                                Some(range) => {
                                    ctx.trace_span_begin(self.op_track, "sorted_is_leaves");
                                    self.leaves = (range.first_leaf..=range.last_leaf).collect();
                                    self.rids = Vec::with_capacity(range.len() as usize);
                                    self.phase = Phase::Leaves {
                                        item: 0,
                                        step: RingStep::Front,
                                    };
                                }
                            }
                            continue;
                        }
                        let dp = self.path[idx];
                        let step = match ctx.pool.request(dp) {
                            Access::Hit => {
                                let work = ctx.costs().leaf_decode_us;
                                TravStep::AwaitCpu(ctx.submit_cpu(work))
                            }
                            Access::Miss => TravStep::AwaitRead(self.read(ctx, dp)),
                        };
                        self.phase = Phase::Traverse { idx, step };
                        return;
                    }
                    TravStep::AwaitRead(io) => {
                        if self.completed.remove(&io) {
                            self.phase = Phase::Traverse {
                                idx,
                                step: TravStep::Pin,
                            };
                            continue;
                        }
                        return;
                    }
                    TravStep::AwaitCpu(_) => return, // advanced by on_event
                },
                Phase::Leaves { item, step } => match step {
                    RingStep::Front => {
                        // Keep the ring primed ahead of the consumer.
                        let depth = self.cfg.leaf_prefetch.max(1) as usize;
                        while self.l_next < self.leaves.len() && self.l_ring.len() < depth {
                            let leaf = self.leaves[self.l_next];
                            let dp = self.index.device_page_of_leaf(leaf);
                            let io = self.read(ctx, dp);
                            self.l_ring.push_back((io, leaf));
                            self.l_next += 1;
                        }
                        match self.l_ring.pop_front() {
                            None => {
                                ctx.trace_span_end(self.op_track, "sorted_is_leaves");
                                ctx.trace_span_begin(self.op_track, "sorted_is_sort");
                                // Phase 2: sort row ids into page order (row
                                // id order == page order in a heap table),
                                // charging k·log2(k) CPU.
                                let k = self.rids.len() as f64;
                                if k > 1.0 {
                                    let work = k * k.log2() * ctx.costs().sort_entry_us;
                                    self.phase = Phase::Sort {
                                        task: ctx.submit_cpu(work),
                                    };
                                    return;
                                }
                                self.finish_sort(ctx);
                                continue;
                            }
                            Some((io, leaf)) => {
                                self.phase = Phase::Leaves {
                                    item: leaf,
                                    step: RingStep::AwaitFront(io),
                                };
                                continue;
                            }
                        }
                    }
                    RingStep::AwaitFront(io) | RingStep::AwaitRepin(io) => {
                        if self.completed.remove(&io) {
                            self.phase = Phase::Leaves {
                                item,
                                step: RingStep::Pin,
                            };
                            continue;
                        }
                        return;
                    }
                    RingStep::Pin => {
                        let dp = self.index.device_page_of_leaf(item);
                        let step = match ctx.pool.request(dp) {
                            Access::Hit => {
                                let entry_range = self.index.leaf_entry_range(item);
                                let n = (entry_range.end - entry_range.start) as f64;
                                let work =
                                    ctx.costs().leaf_decode_us + n * ctx.costs().entry_decode_us;
                                RingStep::AwaitCpu(ctx.submit_cpu(work))
                            }
                            // Evicted by a pathologically small pool:
                            // re-read on demand.
                            Access::Miss => RingStep::AwaitRepin(self.read(ctx, dp)),
                        };
                        self.phase = Phase::Leaves { item, step };
                        return;
                    }
                    RingStep::AwaitCpu(_) => return, // advanced by on_event
                },
                Phase::Sort { .. } => return, // advanced by on_event
                Phase::Fetch { item, step } => match step {
                    RingStep::Front => {
                        let depth = self.cfg.prefetch_depth.max(1) as usize;
                        while self.f_next < self.pages.len() && self.f_ring.len() < depth {
                            let dp = self.table.device_page(self.pages[self.f_next].0);
                            let io = self.read(ctx, dp);
                            self.f_ring.push_back((io, self.f_next));
                            self.f_next += 1;
                        }
                        match self.f_ring.pop_front() {
                            None => {
                                ctx.trace_span_end(self.op_track, "sorted_is_fetch");
                                self.phase = Phase::Done;
                                self.finished = true;
                                return;
                            }
                            Some((io, idx)) => {
                                self.phase = Phase::Fetch {
                                    item: idx,
                                    step: RingStep::AwaitFront(io),
                                };
                                continue;
                            }
                        }
                    }
                    RingStep::AwaitFront(io) | RingStep::AwaitRepin(io) => {
                        if self.completed.remove(&io) {
                            self.phase = Phase::Fetch {
                                item,
                                step: RingStep::Pin,
                            };
                            continue;
                        }
                        return;
                    }
                    RingStep::Pin => {
                        let dp = self.table.device_page(self.pages[item].0);
                        let step = match ctx.pool.request(dp) {
                            Access::Hit => {
                                let work =
                                    self.pages[item].1.len() as f64 * ctx.costs().row_lookup_us;
                                RingStep::AwaitCpu(ctx.submit_cpu(work))
                            }
                            Access::Miss => RingStep::AwaitRepin(self.read(ctx, dp)),
                        };
                        self.phase = Phase::Fetch { item, step };
                        return;
                    }
                    RingStep::AwaitCpu(_) => return, // advanced by on_event
                },
                Phase::Done => return,
            }
        }
    }

    /// Phase 2 → phase 3 transition: sort, group consecutive rids by table
    /// page, open the fetch ring.
    fn finish_sort(&mut self, ctx: &mut SimContext<'_>) {
        self.rids.sort_unstable();
        ctx.trace_span_end(self.op_track, "sorted_is_sort");
        let mut pages: Vec<(u64, Vec<u64>)> = Vec::new();
        for &rid in &self.rids {
            let p = self.table.spec().page_of_row(rid);
            match pages.last_mut() {
                Some((lp, v)) if *lp == p => v.push(rid),
                _ => pages.push((p, vec![rid])),
            }
        }
        self.pages = pages;
        ctx.trace_span_begin(self.op_track, "sorted_is_fetch");
        self.phase = Phase::Fetch {
            item: 0,
            step: RingStep::Front,
        };
    }

    /// Handle a compute completion that belongs to this driver; returns
    /// whether it did.
    fn on_cpu(&mut self, ctx: &mut SimContext<'_>, task: TaskId) -> Result<bool, ExecError> {
        match &self.phase {
            Phase::Traverse {
                idx,
                step: TravStep::AwaitCpu(t),
            } if *t == task => {
                let idx = *idx;
                ctx.pool.unpin(self.path[idx])?;
                self.phase = Phase::Traverse {
                    idx: idx + 1,
                    step: TravStep::Pin,
                };
                Ok(true)
            }
            Phase::Leaves {
                item,
                step: RingStep::AwaitCpu(t),
            } if *t == task => {
                let leaf = *item;
                let range = self.range.expect("leaf phase requires a range");
                let entry_range = self.index.leaf_entry_range(leaf);
                let from = entry_range.start.max(range.first_entry);
                let to = entry_range.end.min(range.end_entry);
                self.rids.extend((from..to).map(|i| self.index.entry(i).1));
                ctx.pool.unpin(self.index.device_page_of_leaf(leaf))?;
                self.phase = Phase::Leaves {
                    item: leaf,
                    step: RingStep::Front,
                };
                Ok(true)
            }
            Phase::Sort { task: t } if *t == task => {
                self.finish_sort(ctx);
                Ok(true)
            }
            Phase::Fetch {
                item,
                step: RingStep::AwaitCpu(t),
            } if *t == task => {
                let idx = *item;
                let dp = self.table.device_page(self.pages[idx].0);
                for i in 0..self.pages[idx].1.len() {
                    let rid = self.pages[idx].1[i];
                    let (c1, c2) = self.table.row(rid);
                    debug_assert!(c2 >= self.low && c2 <= self.high);
                    // Residual check beyond the sarg window.
                    self.eval.row(c1, c2, &mut self.acc);
                }
                ctx.pool.unpin(dp)?;
                self.phase = Phase::Fetch {
                    item: idx,
                    step: RingStep::Front,
                };
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

impl QueryDriver for SortedIsDriver<'_> {
    fn operator(&self) -> &'static str {
        "sorted_is"
    }

    fn start(&mut self, ctx: &mut SimContext<'_>) -> Result<(), ExecError> {
        self.op_track = ctx.trace_track("sorted_is");
        ctx.trace_span_begin(self.op_track, "sorted_is_traverse");
        self.range = if self.low <= self.high {
            self.index.range(self.low, self.high)
        } else {
            None // inverted sarg: the predicate matches nothing
        };
        let probe_leaf = self.range.map_or(0, |r| r.first_leaf);
        self.path = self.index.path_to_leaf(probe_leaf);
        self.pump(ctx);
        Ok(())
    }

    fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: &Event) -> Result<(), ExecError> {
        match *ev {
            Event::IoPage {
                io,
                device_page,
                status,
                attempts,
            } => {
                if !self.pending.remove(&io) {
                    return Ok(()); // another query's read
                }
                if status == IoStatus::Error {
                    return Err(io_failure("sorted_is", device_page, attempts));
                }
                ctx.pool.admit_prefetched(device_page)?;
                self.completed.insert(io);
                self.pump(ctx);
            }
            Event::Cpu(task) => {
                if self.on_cpu(ctx, task)? {
                    self.pump(ctx);
                }
            }
            Event::IoBlock { .. } | Event::IoWrite { .. } | Event::Timer { .. } => {}
        }
        Ok(())
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn answer(&self) -> QueryAnswer {
        QueryAnswer::from_acc(&self.acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuConfig;
    use crate::engine::CpuCosts;
    use crate::execute::{execute, PlanSpec};
    use crate::is::IsConfig;
    use crate::metrics::ScanMetrics;
    use crate::query::QuerySpec;
    use pioqo_bufpool::BufferPool;
    use pioqo_device::presets::consumer_pcie_ssd;
    use pioqo_storage::{range_for_selectivity, TableSpec, Tablespace};

    fn fixture(rows: u64, rpp: u32) -> (HeapTable, BTreeIndex, u64) {
        let spec = TableSpec::paper_table(rpp, rows, 31);
        let mut ts = Tablespace::new(4 * spec.n_pages() + 1000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build(
            "c2_idx",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("fits");
        let cap = ts.capacity();
        (table, index, cap)
    }

    fn run(
        fx: &(HeapTable, BTreeIndex, u64),
        sel: f64,
        plan: &PlanSpec,
        pool_frames: usize,
    ) -> ScanMetrics {
        let mut dev = consumer_pcie_ssd(fx.2, 13);
        let mut pool = BufferPool::new(pool_frames);
        let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        execute(
            &mut ctx,
            &QuerySpec::range_max(&fx.0, Some(&fx.1), low, high).with_plan(plan.clone()),
        )
        .expect("scan runs")
    }

    fn scan(fx: &(HeapTable, BTreeIndex, u64), sel: f64, cfg: &SortedIsConfig) -> ScanMetrics {
        run(fx, sel, &PlanSpec::SortedIs(cfg.clone()), 4096)
    }

    #[test]
    fn result_matches_oracle() {
        let fx = fixture(20_000, 33);
        for sel in [0.0, 0.01, 0.3] {
            let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
            let m = scan(&fx, sel, &SortedIsConfig::default());
            assert_eq!(m.max_c1, fx.0.data().naive_max_c1(low, high), "sel={sel}");
        }
    }

    #[test]
    fn each_page_fetched_at_most_once() {
        let fx = fixture(40_000, 33);
        // High selectivity, pool big enough: page count bounded by
        // table + index pages (the operator's defining property).
        let m = scan(&fx, 0.8, &SortedIsConfig::default());
        assert!(m.io.pages_read <= fx.0.n_pages() + fx.1.n_pages());
        assert_eq!(m.pool.refetches, 0);
    }

    #[test]
    fn deep_ring_sustains_queue_depth() {
        let fx = fixture(60_000, 33);
        let shallow = scan(
            &fx,
            0.05,
            &SortedIsConfig {
                prefetch_depth: 1,
                leaf_prefetch: 1,
                ..SortedIsConfig::default()
            },
        );
        let deep = scan(&fx, 0.05, &SortedIsConfig::default());
        assert!(
            deep.io.mean_queue_depth > shallow.io.mean_queue_depth * 4.0,
            "{} vs {}",
            shallow.io.mean_queue_depth,
            deep.io.mean_queue_depth
        );
        assert!(deep.runtime < shallow.runtime);
    }

    #[test]
    fn beats_plain_is_at_high_selectivity() {
        let fx = fixture(40_000, 33);
        // Small pool: plain IS will refetch.
        let plain = run(&fx, 0.5, &PlanSpec::Is(IsConfig::default()), 512);
        let sorted = run(
            &fx,
            0.5,
            &PlanSpec::SortedIs(SortedIsConfig::default()),
            512,
        );
        assert_eq!(plain.max_c1, sorted.max_c1);
        assert!(
            sorted.runtime < plain.runtime,
            "sorted IS should win at high selectivity: {} vs {}",
            plain.runtime,
            sorted.runtime
        );
    }
}
