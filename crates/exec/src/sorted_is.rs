//! Sorted index scan — the access method the paper *couldn't* evaluate.
//!
//! §3.1: "Some databases support a variation of index scan in which before
//! fetching table pages, row identifiers are sorted in the order of page id.
//! In this way, each table page will be fetched at most once. ... Since SAP
//! SQL Anywhere does not support this operator, we could not consider it in
//! our experiments." We implement it as an extension so the optimizer
//! ablations can compare it (see DESIGN.md §8).
//!
//! Single worker, three phases:
//! 1. root→leaf traversal, then leaf pages streamed with a prefetch ring;
//! 2. qualifying row ids sorted by page id (costed `k·log₂k` CPU);
//! 3. each distinct table page fetched exactly once, ascending, with an
//!    active-waiting prefetch ring of configurable depth — so even this
//!    non-parallel operator sustains a deep I/O queue on SSD.

use crate::cpu::CpuConfig;
use crate::engine::{io_failure, CpuCosts, Event, ExecError, RetryPolicy, SimContext};
use crate::fts::merge_max;
use crate::metrics::ScanMetrics;
use pioqo_bufpool::{Access, BufferPool};
use pioqo_device::{DeviceModel, IoStatus};
use pioqo_obs::{NullSink, TraceSink};
use pioqo_storage::{BTreeIndex, HeapTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Sorted-index-scan configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SortedIsConfig {
    /// Outstanding table-page reads kept in flight during phase 3
    /// (the operator's effective I/O queue depth).
    pub prefetch_depth: u32,
    /// Outstanding leaf-page reads kept in flight during phase 1.
    pub leaf_prefetch: u32,
    /// Retry/timeout policy for the scan's reads (default: no retries).
    pub retry: RetryPolicy,
}

impl Default for SortedIsConfig {
    fn default() -> Self {
        SortedIsConfig {
            prefetch_depth: 32,
            leaf_prefetch: 8,
            retry: RetryPolicy::default(),
        }
    }
}

/// Execute the query with a sorted index scan. See the module docs.
#[allow(clippy::too_many_arguments)] // explicit operator inputs beat an opaque params bag
pub fn run_sorted_is(
    device: &mut dyn DeviceModel,
    pool: &mut BufferPool,
    cpu: CpuConfig,
    costs: CpuCosts,
    table: &HeapTable,
    index: &BTreeIndex,
    low: u32,
    high: u32,
    cfg: &SortedIsConfig,
) -> Result<ScanMetrics, ExecError> {
    run_sorted_is_traced(
        device,
        pool,
        cpu,
        costs,
        table,
        index,
        low,
        high,
        cfg,
        &mut NullSink,
    )
}

/// [`run_sorted_is`] with a trace sink: when the sink is enabled the scan
/// records sim-time I/O, pool and phase-span events into it (and nothing
/// otherwise).
#[allow(clippy::too_many_arguments)] // explicit operator inputs beat an opaque params bag
pub fn run_sorted_is_traced(
    device: &mut dyn DeviceModel,
    pool: &mut BufferPool,
    cpu: CpuConfig,
    costs: CpuCosts,
    table: &HeapTable,
    index: &BTreeIndex,
    low: u32,
    high: u32,
    cfg: &SortedIsConfig,
    trace: &mut dyn TraceSink,
) -> Result<ScanMetrics, ExecError> {
    let pool_stats_before = pool.stats().clone();
    let mut ctx = SimContext::new(device, pool, cpu, costs);
    ctx.set_retry_policy(cfg.retry.clone());
    ctx.set_trace_sink(trace);
    let op_track = ctx.trace_track("sorted_is");
    let mut completed: BTreeSet<u64> = BTreeSet::new();

    // Phase 0: root-to-leaf traversal.
    ctx.trace_span_begin(op_track, "sorted_is_traverse");
    let range = index.range(low, high);
    let probe_leaf = range.map_or(0, |r| r.first_leaf);
    for dp in index.path_to_leaf(probe_leaf) {
        pin_resident(&mut ctx, dp, &mut completed)?;
        let work = ctx.costs().leaf_decode_us;
        cpu_now(&mut ctx, work, &mut completed)?;
        ctx.pool.unpin(dp)?;
    }
    ctx.trace_span_end(op_track, "sorted_is_traverse");

    let finish =
        |ctx: &mut SimContext<'_>, pool_before: &pioqo_bufpool::PoolStats, max_c1, matched| {
            let runtime = ctx.now() - pioqo_simkit::SimTime::ZERO;
            let io = ctx.io_profile();
            let resilience = ctx.resilience();
            ctx.quiesce();
            let hists = ctx.take_histograms();
            ScanMetrics {
                runtime,
                max_c1,
                rows_matched: matched,
                rows_examined: matched,
                io,
                pool: ctx.pool.stats().diff(pool_before),
                resilience,
                hists,
            }
        };

    let Some(range) = range else {
        return Ok(finish(&mut ctx, &pool_stats_before, None, 0));
    };

    // Phase 1: stream leaf pages with a prefetch ring; collect row ids.
    ctx.trace_span_begin(op_track, "sorted_is_leaves");
    let mut rids: Vec<u64> = Vec::with_capacity(range.len() as usize);
    {
        let leaves: Vec<u64> = (range.first_leaf..=range.last_leaf).collect();
        let mut ring: std::collections::VecDeque<(u64, u64)> = Default::default();
        let mut next = 0usize;
        let depth = cfg.leaf_prefetch.max(1) as usize;
        while next < leaves.len() || !ring.is_empty() {
            while next < leaves.len() && ring.len() < depth {
                let dp = index.device_page_of_leaf(leaves[next]);
                let io = ctx.read_page(dp);
                ring.push_back((io, leaves[next]));
                next += 1;
            }
            let (io, leaf) = ring.pop_front().expect("ring primed");
            wait_io(&mut ctx, io, &mut completed)?;
            let dp = index.device_page_of_leaf(leaf);
            pin_resident(&mut ctx, dp, &mut completed)?;
            let entry_range = index.leaf_entry_range(leaf);
            let n = (entry_range.end - entry_range.start) as f64;
            let work = ctx.costs().leaf_decode_us + n * ctx.costs().entry_decode_us;
            cpu_now(&mut ctx, work, &mut completed)?;
            let from = entry_range.start.max(range.first_entry);
            let to = entry_range.end.min(range.end_entry);
            rids.extend((from..to).map(|i| index.entry(i).1));
            ctx.pool.unpin(dp)?;
        }
    }

    ctx.trace_span_end(op_track, "sorted_is_leaves");

    // Phase 2: sort row ids into page order (row id order == page order in
    // a heap table), charging k·log2(k) CPU.
    ctx.trace_span_begin(op_track, "sorted_is_sort");
    let k = rids.len() as f64;
    if k > 1.0 {
        let work = k * k.log2() * ctx.costs().sort_entry_us;
        cpu_now(&mut ctx, work, &mut completed)?;
    }
    rids.sort_unstable();
    ctx.trace_span_end(op_track, "sorted_is_sort");

    // Phase 3: fetch each distinct page once, ascending, prefetch ring of
    // `prefetch_depth`.
    let mut pages: Vec<(u64, Vec<u64>)> = Vec::new();
    for &rid in &rids {
        let p = table.spec().page_of_row(rid);
        match pages.last_mut() {
            Some((lp, v)) if *lp == p => v.push(rid),
            _ => pages.push((p, vec![rid])),
        }
    }

    let mut max_c1: Option<u32> = None;
    let mut matched: u64 = 0;
    ctx.trace_span_begin(op_track, "sorted_is_fetch");
    {
        let depth = cfg.prefetch_depth.max(1) as usize;
        let mut ring: std::collections::VecDeque<(u64, usize)> = Default::default();
        let mut next = 0usize;
        while next < pages.len() || !ring.is_empty() {
            while next < pages.len() && ring.len() < depth {
                let dp = table.device_page(pages[next].0);
                let io = ctx.read_page(dp);
                ring.push_back((io, next));
                next += 1;
            }
            let (io, idx) = ring.pop_front().expect("ring primed");
            wait_io(&mut ctx, io, &mut completed)?;
            let (page, page_rids) = &pages[idx];
            let dp = table.device_page(*page);
            pin_resident(&mut ctx, dp, &mut completed)?;
            let work = page_rids.len() as f64 * ctx.costs().row_lookup_us;
            cpu_now(&mut ctx, work, &mut completed)?;
            for &rid in page_rids {
                let (c1, c2) = table.row(rid);
                debug_assert!(c2 >= low && c2 <= high);
                max_c1 = merge_max(max_c1, Some(c1));
                matched += 1;
            }
            ctx.pool.unpin(dp)?;
        }
    }
    ctx.trace_span_end(op_track, "sorted_is_fetch");

    Ok(finish(&mut ctx, &pool_stats_before, max_c1, matched))
}

/// Step until single-page I/O `io` completes, recording all completions
/// (admitting their pages) into `completed`.
fn wait_io(
    ctx: &mut SimContext<'_>,
    io: u64,
    completed: &mut BTreeSet<u64>,
) -> Result<(), ExecError> {
    let mut events = Vec::new();
    while !completed.contains(&io) {
        events.clear();
        let progressed = ctx.step(&mut events);
        assert!(progressed, "sorted index scan deadlocked");
        for e in &events {
            if let Event::IoPage {
                io: id,
                device_page,
                status,
                attempts,
            } = e
            {
                if *status == IoStatus::Error {
                    return Err(io_failure("sorted_is", *device_page, *attempts));
                }
                ctx.pool.admit_prefetched(*device_page)?;
                completed.insert(*id);
            }
        }
    }
    completed.remove(&io);
    Ok(())
}

/// Pin a page that should be resident; re-read if it was evicted by a
/// pathologically small pool.
fn pin_resident(
    ctx: &mut SimContext<'_>,
    dp: u64,
    completed: &mut BTreeSet<u64>,
) -> Result<(), ExecError> {
    loop {
        match ctx.pool.request(dp) {
            Access::Hit => return Ok(()),
            Access::Miss => {
                let io = ctx.read_page(dp);
                wait_io(ctx, io, completed)?;
            }
        }
    }
}

/// Run a compute task to completion while I/O keeps flowing; page
/// completions encountered along the way are admitted and recorded.
fn cpu_now(
    ctx: &mut SimContext<'_>,
    work_us: f64,
    completed: &mut BTreeSet<u64>,
) -> Result<(), ExecError> {
    let task = ctx.submit_cpu(work_us);
    let mut events = Vec::new();
    loop {
        events.clear();
        let progressed = ctx.step(&mut events);
        assert!(progressed, "cpu task never completed");
        let mut done = false;
        for e in &events {
            match e {
                Event::Cpu(t) if *t == task => done = true,
                Event::IoPage {
                    io,
                    device_page,
                    status,
                    attempts,
                } => {
                    if *status == IoStatus::Error {
                        return Err(io_failure("sorted_is", *device_page, *attempts));
                    }
                    ctx.pool.admit_prefetched(*device_page)?;
                    completed.insert(*io);
                }
                _ => {}
            }
        }
        if done {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is::{run_is, IsConfig};
    use pioqo_device::presets::consumer_pcie_ssd;
    use pioqo_storage::{range_for_selectivity, TableSpec, Tablespace};

    fn fixture(rows: u64, rpp: u32) -> (HeapTable, BTreeIndex, u64) {
        let spec = TableSpec::paper_table(rpp, rows, 31);
        let mut ts = Tablespace::new(4 * spec.n_pages() + 1000);
        let table = HeapTable::create(spec, &mut ts).expect("fits");
        let index = BTreeIndex::build(
            "c2_idx",
            table.data().c2_entries(),
            table.spec().page_size,
            &mut ts,
        )
        .expect("fits");
        let cap = ts.capacity();
        (table, index, cap)
    }

    fn scan(fx: &(HeapTable, BTreeIndex, u64), sel: f64, cfg: &SortedIsConfig) -> ScanMetrics {
        let mut dev = consumer_pcie_ssd(fx.2, 13);
        let mut pool = BufferPool::new(4096);
        let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
        run_sorted_is(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
            &fx.0,
            &fx.1,
            low,
            high,
            cfg,
        )
        .expect("scan runs")
    }

    #[test]
    fn result_matches_oracle() {
        let fx = fixture(20_000, 33);
        for sel in [0.0, 0.01, 0.3] {
            let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
            let m = scan(&fx, sel, &SortedIsConfig::default());
            assert_eq!(m.max_c1, fx.0.data().naive_max_c1(low, high), "sel={sel}");
        }
    }

    #[test]
    fn each_page_fetched_at_most_once() {
        let fx = fixture(40_000, 33);
        // High selectivity, pool big enough: page count bounded by
        // table + index pages (the operator's defining property).
        let m = scan(&fx, 0.8, &SortedIsConfig::default());
        assert!(m.io.pages_read <= fx.0.n_pages() + fx.1.n_pages());
        assert_eq!(m.pool.refetches, 0);
    }

    #[test]
    fn deep_ring_sustains_queue_depth() {
        let fx = fixture(60_000, 33);
        let shallow = scan(
            &fx,
            0.05,
            &SortedIsConfig {
                prefetch_depth: 1,
                leaf_prefetch: 1,
                ..SortedIsConfig::default()
            },
        );
        let deep = scan(&fx, 0.05, &SortedIsConfig::default());
        assert!(
            deep.io.mean_queue_depth > shallow.io.mean_queue_depth * 4.0,
            "{} vs {}",
            shallow.io.mean_queue_depth,
            deep.io.mean_queue_depth
        );
        assert!(deep.runtime < shallow.runtime);
    }

    #[test]
    fn beats_plain_is_at_high_selectivity() {
        let fx = fixture(40_000, 33);
        let (low, high) = range_for_selectivity(0.5, u32::MAX - 1);
        let mut dev = consumer_pcie_ssd(fx.2, 13);
        let mut pool = BufferPool::new(512); // small: plain IS will refetch
        let plain = run_is(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
            &fx.0,
            &fx.1,
            low,
            high,
            &IsConfig::default(),
        )
        .expect("is runs");
        let mut dev2 = consumer_pcie_ssd(fx.2, 13);
        let mut pool2 = BufferPool::new(512);
        let sorted = run_sorted_is(
            &mut dev2,
            &mut pool2,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
            &fx.0,
            &fx.1,
            low,
            high,
            &SortedIsConfig::default(),
        )
        .expect("sorted runs");
        assert_eq!(plain.max_c1, sorted.max_c1);
        assert!(
            sorted.runtime < plain.runtime,
            "sorted IS should win at high selectivity: {} vs {}",
            plain.runtime,
            sorted.runtime
        );
    }
}
