//! The event-driven query-driver abstraction behind [`crate::execute`] and
//! [`crate::MultiEngine`].
//!
//! A `QueryDriver` is one query's state machine, decoupled from the event
//! loop that feeds it: [`QueryDriver::start`] issues the initial I/O and
//! compute, and [`QueryDriver::on_event`] advances the machine on each
//! [`Event`] delivered by [`SimContext::step`]. Drivers track exactly which
//! I/O handles, compute tasks and timers belong to them and *silently
//! ignore everything else*, which is what lets many drivers share one
//! context: the multi-query engine broadcasts every event to every active
//! driver in session order, and only the owner reacts. A driver returns an
//! error only for a failure on I/O it issued itself.
//!
//! Determinism: drivers hold ordered collections only, never consult
//! wall-clock time, and react to events in the order the context delivers
//! them — the same invariants as the rest of the sim crates (DESIGN.md §8).

use crate::engine::{Event, ExecError, SimContext};

/// The answer of one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryAnswer {
    /// The aggregate value (`MAX`); `None` when nothing matched or the
    /// aggregate is `COUNT` (reported via `rows_matched`).
    pub max_c1: Option<u32>,
    /// Rows satisfying the predicate (joined pairs for join queries).
    pub rows_matched: u64,
    /// Rows the operator actually evaluated.
    pub rows_examined: u64,
    /// Order-independent fingerprint of the projected matching rows (see
    /// `crate::query::row_fingerprint`).
    pub fingerprint: u64,
}

impl QueryAnswer {
    /// Build an answer from a finished row accumulator.
    pub fn from_acc(acc: &crate::query::RowAcc) -> QueryAnswer {
        QueryAnswer {
            max_c1: acc.agg,
            rows_matched: acc.matched,
            rows_examined: acc.examined,
            fingerprint: acc.fingerprint,
        }
    }
}

/// One query's scan state machine, drivable by any event loop over a
/// [`SimContext`] (see the module docs).
pub trait QueryDriver {
    /// The operator name used in traces and [`ExecError::Io`].
    fn operator(&self) -> &'static str;

    /// Issue the query's initial work (startup compute, root fetch,
    /// prefetch window). Called exactly once, before any event delivery.
    fn start(&mut self, ctx: &mut SimContext<'_>) -> Result<(), ExecError>;

    /// React to one context event. Events for I/O, compute or timers the
    /// driver does not own must be ignored (return `Ok`); an error on the
    /// driver's own I/O surfaces as `Err`.
    fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: &Event) -> Result<(), ExecError>;

    /// Whether the query has produced its final answer. A done driver
    /// receives no further events (stray completions of its outstanding
    /// prefetch are absorbed by the event loop).
    fn done(&self) -> bool;

    /// The final answer. Meaningful once [`QueryDriver::done`] is true.
    fn answer(&self) -> QueryAnswer;
}
