//! Cooperative shared scans: one circular PFTS cursor, many consumers.
//!
//! [`ScanHub`] is the push-based storage-manager idea (one in-flight scan
//! per table, consumers attach to the stream) specialised to this
//! engine's range-MAX queries. A single circular cursor streams the heap
//! in block-sized submissions; every admitted consumer attaches at the
//! cursor's current position, rides the stream for exactly one lap
//! (`n_pages` page deliveries, wrapping at the table end) and completes
//! with the full-table answer. Because `MAX`/`COUNT` over a static table
//! are start-position independent, the hub evaluates each table page
//! **once per distinct predicate** as it streams past, no matter how many
//! consumers share that predicate or where they attached — N consumers
//! cost one device stream plus near-marginal CPU, not N scans.
//!
//! The device stream is one block submission window (sized by the shared
//! cursor's queue-depth lease, charged **once** by the admission layer —
//! see `QdttAdmission::cursor_start`), and evaluation is one in-flight
//! CPU task at a time over contiguous ready runs, so the hub adds O(1)
//! simulator events per delivered block regardless of consumer count.
//!
//! Positions are absolute **ticks**: tick `t` denotes table page
//! `t % n_pages`. Ticks only grow, which makes attach/finish bookkeeping
//! a pair of ordered maps and keeps wrap-around arithmetic out of the
//! hot path.

use crate::driver::QueryAnswer;
use crate::engine::{io_failure, Event, ExecError, SimContext};
use crate::fts::{evaluate_page, merge_max};
use pioqo_device::IoStatus;
use pioqo_storage::HeapTable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters describing one hub's lifetime, surfaced in workload reports.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SharedScanStats {
    /// Consumers attached to a shared cursor (fresh or resumed).
    pub attaches: u64,
    /// Times the circular cursor went from idle to streaming (each one
    /// costs exactly one queue-depth lease at the admission layer).
    pub cursor_starts: u64,
    /// Consumers detached before completing their lap.
    pub detaches: u64,
    /// Page deliveries evaluated by the shared stream (each table page
    /// counts once per tick it streamed past, not once per consumer).
    pub pages_delivered: u64,
    /// Block read submissions issued by the cursor.
    pub blocks_fetched: u64,
    /// Pages satisfied from the buffer pool without a device read.
    pub resident_pages: u64,
    /// Device page reads avoided by the shared stream: each delivered page
    /// would have cost one read per live rider running solo, but the
    /// cursor fetched it once — `(riders - 1)` saved per delivered page.
    pub pages_saved: u64,
}

/// A consumer's state carried across [`ScanHub::detach`] /
/// [`ScanHub::reattach`]: the partial aggregate over the pages already
/// seen plus where the stream must resume for the remainder.
#[derive(Debug, Clone)]
pub struct Detached {
    /// Predicate lower bound (inclusive).
    pub low: u32,
    /// Predicate upper bound (inclusive).
    pub high: u32,
    /// `MAX(C1)` over the pages seen before detaching.
    pub partial_max: Option<u32>,
    /// Matching rows over the pages seen before detaching.
    pub partial_matched: u64,
    /// Rows examined over the pages seen before detaching.
    pub partial_examined: u64,
    /// Row fingerprint (all columns projected) over the pages seen.
    pub partial_fp: u64,
    /// Pages already delivered to this consumer.
    pub pages_seen: u64,
    /// Table page the stream must be at when the consumer reattaches.
    pub resume_page: u64,
    /// Pages still owed after resuming.
    pub pages_left: u64,
}

/// How a reattached consumer finishes: the carried partial is combined
/// with a direct evaluation of the residual page range (the shared
/// predicate accumulator covers a *full* lap and would double count).
#[derive(Debug, Clone)]
enum ConsumerKind {
    /// Fresh attach: answer comes from the shared predicate accumulator.
    Fresh { pred: usize },
    /// Resumed after a detach: answer = carried partial + residual pages.
    Resumed { det: Detached, resume_tick: u64 },
}

#[derive(Debug, Clone)]
struct Consumer {
    kind: ConsumerKind,
    /// Tick (exclusive) at which this consumer has seen a full lap.
    finish: u64,
}

/// Sentinel `start_tick` for a predicate whose lap was interrupted by the
/// cursor going idle (every consumer detached before the lap finished):
/// its partial accumulator is invalid, so it restarts from scratch on the
/// next attach. Completed predicates are never parked — their full-lap
/// accumulator stays reusable forever (the table is static).
const PRED_PARKED: u64 = u64::MAX;

/// One distinct predicate's shared accumulator. The hub evaluates each
/// table page once for each predicate, starting at the tick the predicate
/// first appeared; after `n_pages` evaluated pages the accumulator holds
/// the full-table answer and is reusable by any later consumer.
#[derive(Debug, Clone)]
struct PredState {
    low: u32,
    high: u32,
    start_tick: u64,
    pages_done: u64,
    max_c1: Option<u32>,
    matched: u64,
    fp: u64,
}

/// The shared-scan hub for one heap table. See the module docs.
pub struct ScanHub<'q> {
    table: &'q HeapTable,
    n_pages: u64,
    block_pages: u32,
    /// Fetch window in pages (cursor queue-depth lease × block size).
    window_pages: u64,
    active: bool,
    /// Next tick to be scheduled into CPU evaluation.
    sched: u64,
    /// Evaluation frontier: ticks below this are fully evaluated.
    done: u64,
    /// Next tick to fetch (>= sched; fetched-but-not-ready runs are in
    /// `my_blocks`, ready-but-not-scheduled runs in `ready`).
    fetched: u64,
    /// Exclusive max tick any live consumer still needs.
    need: u64,
    /// The single in-flight evaluation task: (task id, run start, len).
    eval: Option<(crate::cpu::TaskId, u64, u64)>,
    /// Outstanding block reads: io id -> (tick of first page, pages).
    my_blocks: BTreeMap<u64, (u64, u32)>,
    /// Resident runs awaiting evaluation: tick -> pages.
    ready: BTreeMap<u64, u32>,
    slots: Vec<Option<Consumer>>,
    free: Vec<u32>,
    live: u32,
    preds: Vec<PredState>,
    pred_ids: BTreeMap<(u32, u32), usize>,
    /// finish tick -> consumer slots completing there.
    finish_at: BTreeMap<u64, Vec<u32>>,
    completions: Vec<(u32, QueryAnswer)>,
    stats: SharedScanStats,
}

impl<'q> ScanHub<'q> {
    /// Build an idle hub over `table`, streaming in `block_pages`-page
    /// device submissions.
    pub fn new(table: &'q HeapTable, block_pages: u32) -> ScanHub<'q> {
        assert!(block_pages >= 1, "shared cursor needs a positive block");
        assert!(
            table.n_pages() >= 1,
            "shared cursor needs a non-empty table"
        );
        ScanHub {
            table,
            n_pages: table.n_pages(),
            block_pages,
            window_pages: block_pages as u64,
            active: false,
            sched: 0,
            done: 0,
            fetched: 0,
            need: 0,
            eval: None,
            my_blocks: BTreeMap::new(),
            ready: BTreeMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            preds: Vec::new(),
            pred_ids: BTreeMap::new(),
            finish_at: BTreeMap::new(),
            completions: Vec::new(),
            stats: SharedScanStats::default(),
        }
    }

    /// Whether the circular cursor is streaming (any live consumer).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SharedScanStats {
        &self.stats
    }

    /// Size the fetch window from the cursor's queue-depth lease: `depth`
    /// block submissions may be in flight ahead of the evaluation frontier.
    pub fn set_window(&mut self, depth: u32) {
        self.window_pages = depth.max(1) as u64 * self.block_pages as u64;
    }

    fn page_of(&self, tick: u64) -> u64 {
        tick % self.n_pages
    }

    fn pred_index(&mut self, low: u32, high: u32) -> usize {
        if let Some(&i) = self.pred_ids.get(&(low, high)) {
            // A pred parked by `go_idle` mid-lap restarts a fresh lap at
            // the current frontier; a completed pred is reused as-is.
            if self.preds[i].start_tick == PRED_PARKED {
                self.preds[i].start_tick = self.sched;
            }
            return i;
        }
        let i = self.preds.len();
        self.preds.push(PredState {
            low,
            high,
            start_tick: self.sched,
            pages_done: 0,
            max_c1: None,
            matched: 0,
            fp: 0,
        });
        self.pred_ids.insert((low, high), i);
        i
    }

    fn alloc_slot(&mut self, c: Consumer) -> u32 {
        self.live += 1;
        if let Some(s) = self.free.pop() {
            self.slots[s as usize] = Some(c);
            s
        } else {
            self.slots.push(Some(c));
            (self.slots.len() - 1) as u32
        }
    }

    /// Attach a fresh consumer for `BETWEEN low AND high` at the cursor's
    /// current position; it completes after one full circular lap.
    /// Returns the consumer slot (stable until completion or detach).
    pub fn attach(&mut self, ctx: &mut SimContext<'_>, low: u32, high: u32) -> u32 {
        if !self.active {
            self.active = true;
            self.stats.cursor_starts += 1;
        }
        self.stats.attaches += 1;
        let pred = self.pred_index(low, high);
        let finish = self.sched + self.n_pages;
        let slot = self.alloc_slot(Consumer {
            kind: ConsumerKind::Fresh { pred },
            finish,
        });
        self.need = self.need.max(finish);
        self.finish_at.entry(finish).or_default().push(slot);
        ctx.metric_counter("shared_attach_total", 1);
        ctx.metric_sample("shared_live_consumers", u64::from(self.live));
        self.pump(ctx);
        slot
    }

    /// Detach `slot` mid-lap (cancellation / plan divergence). Returns the
    /// partial aggregate over the pages the consumer saw, or `None` when
    /// the slot already completed. Detaching does not rewind the stream:
    /// other consumers keep riding it.
    pub fn detach(&mut self, ctx: &mut SimContext<'_>, slot: u32) -> Option<Detached> {
        let c = self.slots.get_mut(slot as usize)?.take()?;
        self.free.push(slot);
        self.live -= 1;
        self.stats.detaches += 1;
        ctx.metric_counter("shared_detach_total", 1);
        ctx.metric_sample("shared_live_consumers", u64::from(self.live));
        if let Some(v) = self.finish_at.get_mut(&c.finish) {
            v.retain(|&s| s != slot);
            if v.is_empty() {
                self.finish_at.remove(&c.finish);
            }
        }
        let det = match c.kind {
            ConsumerKind::Fresh { pred } => {
                let p = &self.preds[pred];
                let attach_tick = c.finish - self.n_pages;
                let pages_seen = self.done.saturating_sub(attach_tick).min(self.n_pages);
                let (max, matched, examined, fp) =
                    self.eval_run_host(attach_tick, pages_seen, p.low, p.high);
                Detached {
                    low: p.low,
                    high: p.high,
                    partial_max: max,
                    partial_matched: matched,
                    partial_examined: examined,
                    partial_fp: fp,
                    pages_seen,
                    resume_page: self.page_of(attach_tick + pages_seen),
                    pages_left: self.n_pages - pages_seen,
                }
            }
            ConsumerKind::Resumed { det, resume_tick } => {
                let pages_seen = self.done.saturating_sub(resume_tick).min(det.pages_left);
                let (max, matched, examined, fp) =
                    self.eval_run_host(resume_tick, pages_seen, det.low, det.high);
                Detached {
                    partial_max: merge_max(det.partial_max, max),
                    partial_matched: det.partial_matched + matched,
                    partial_examined: det.partial_examined + examined,
                    partial_fp: det.partial_fp.wrapping_add(fp),
                    pages_seen: det.pages_seen + pages_seen,
                    resume_page: self.page_of(resume_tick + pages_seen),
                    pages_left: det.pages_left - pages_seen,
                    ..det
                }
            }
        };
        if self.live == 0 {
            self.go_idle();
        }
        Some(det)
    }

    /// Re-admit a detached consumer. The stream must be positioned at the
    /// consumer's resume page (`page_of(evaluation frontier)`); otherwise
    /// the carried state is handed back and the caller re-admits solo.
    pub fn reattach(&mut self, ctx: &mut SimContext<'_>, det: Detached) -> Result<u32, Detached> {
        if det.pages_left == 0
            || self.page_of(self.done) != det.resume_page
            || self.sched != self.done
        {
            return Err(det);
        }
        if !self.active {
            self.active = true;
            self.stats.cursor_starts += 1;
        }
        self.stats.attaches += 1;
        // Register the predicate so shared evaluation CPU cost covers it;
        // the answer itself comes from the carried partial + residual.
        let _ = self.pred_index(det.low, det.high);
        let resume_tick = self.done;
        let finish = resume_tick + det.pages_left;
        let slot = self.alloc_slot(Consumer {
            kind: ConsumerKind::Resumed { det, resume_tick },
            finish,
        });
        self.need = self.need.max(finish);
        self.finish_at.entry(finish).or_default().push(slot);
        ctx.metric_counter("shared_attach_total", 1);
        ctx.metric_sample("shared_live_consumers", u64::from(self.live));
        self.pump(ctx);
        Ok(slot)
    }

    /// Drain completed consumers as `(slot, answer)` pairs, in completion
    /// order.
    pub fn take_completions(&mut self, out: &mut Vec<(u32, QueryAnswer)>) {
        out.append(&mut self.completions);
    }

    /// Feed one engine event to the hub. Returns `Ok(true)` when the event
    /// belonged to the shared cursor (the caller must not broadcast it to
    /// solo queries), `Ok(false)` otherwise.
    pub fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: &Event) -> Result<bool, ExecError> {
        match *ev {
            Event::IoBlock {
                io,
                start,
                status,
                attempts,
                ..
            } => {
                let Some((tick, len)) = self.my_blocks.remove(&io) else {
                    return Ok(false);
                };
                if status == IoStatus::Error {
                    return Err(io_failure("shared_scan", start, attempts));
                }
                if self.active {
                    // The engine's global admit already moved the block's
                    // pages into the pool; the run is now evaluable.
                    self.ready.insert(tick, len);
                    self.pump(ctx);
                }
                Ok(true)
            }
            Event::Cpu(task) => {
                let Some((t, run_start, run_len)) = self.eval else {
                    return Ok(false);
                };
                if t != task {
                    return Ok(false);
                }
                self.eval = None;
                if self.active {
                    self.finish_run(run_start, run_len);
                    self.pump(ctx);
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Evaluate a completed run for every predicate whose lap covers it,
    /// advance the frontier and pop consumers whose lap is complete.
    fn finish_run(&mut self, run_start: u64, run_len: u64) {
        self.stats.pages_delivered += run_len;
        self.stats.pages_saved += run_len * u64::from(self.live).saturating_sub(1);
        for p in &mut self.preds {
            for t in run_start..run_start + run_len {
                if t >= p.start_tick && p.pages_done < self.n_pages {
                    let page = t % self.n_pages;
                    let (m, cnt, _ex, fp) = evaluate_page(self.table, page, p.low, p.high);
                    p.max_c1 = merge_max(p.max_c1, m);
                    p.matched += cnt;
                    p.fp = p.fp.wrapping_add(fp);
                    p.pages_done += 1;
                }
            }
        }
        self.done = run_start + run_len;
        let total_rows = self.table.spec().rows;
        while let Some((&finish, _)) = self.finish_at.iter().next() {
            if finish > self.done {
                break;
            }
            let slots = self.finish_at.remove(&finish).expect("key just observed");
            for slot in slots {
                let Some(c) = self.slots[slot as usize].take() else {
                    continue;
                };
                self.free.push(slot);
                self.live -= 1;
                let answer = match c.kind {
                    ConsumerKind::Fresh { pred } => {
                        let p = &self.preds[pred];
                        debug_assert_eq!(p.pages_done, self.n_pages);
                        QueryAnswer {
                            max_c1: p.max_c1,
                            rows_matched: p.matched,
                            rows_examined: total_rows,
                            fingerprint: p.fp,
                        }
                    }
                    ConsumerKind::Resumed { det, resume_tick } => {
                        let (max, matched, examined, fp) =
                            self.eval_run_host(resume_tick, det.pages_left, det.low, det.high);
                        QueryAnswer {
                            max_c1: merge_max(det.partial_max, max),
                            rows_matched: det.partial_matched + matched,
                            rows_examined: det.partial_examined + examined,
                            fingerprint: det.partial_fp.wrapping_add(fp),
                        }
                    }
                };
                self.completions.push((slot, answer));
            }
        }
        if self.live == 0 {
            self.go_idle();
        }
    }

    /// Directly evaluate `len` circular pages starting at `tick` (detach
    /// partials and residual ranges — control-plane work, not charged to
    /// the simulated CPU).
    fn eval_run_host(
        &self,
        tick: u64,
        len: u64,
        low: u32,
        high: u32,
    ) -> (Option<u32>, u64, u64, u64) {
        let mut max = None;
        let mut matched = 0u64;
        let mut examined = 0u64;
        let mut fp = 0u64;
        for t in tick..tick + len {
            let (m, cnt, ex, f) = evaluate_page(self.table, t % self.n_pages, low, high);
            max = merge_max(max, m);
            matched += cnt;
            examined += ex;
            fp = fp.wrapping_add(f);
        }
        (max, matched, examined, fp)
    }

    /// Keep the device window full and one evaluation task in flight.
    fn pump(&mut self, ctx: &mut SimContext<'_>) {
        if !self.active {
            return;
        }
        // Fetch: stay `window_pages` ahead of the scheduling frontier but
        // never past what consumers need. Blocks are clipped at the table
        // end so no submission spans the wrap.
        let limit = self.need.min(self.sched + self.window_pages);
        while self.fetched < limit {
            let page = self.page_of(self.fetched);
            let len = (self.block_pages as u64)
                .min(self.n_pages - page)
                .min(limit - self.fetched) as u32;
            let first_dp = self.table.device_page(page);
            let resident = (0..len as u64).all(|i| ctx.pool.contains(first_dp + i));
            if resident {
                self.stats.resident_pages += len as u64;
                self.ready.insert(self.fetched, len);
            } else {
                let io = ctx.read_block(first_dp, len);
                self.stats.blocks_fetched += 1;
                self.my_blocks.insert(io, (self.fetched, len));
            }
            self.fetched += len as u64;
        }
        // Evaluate: coalesce the contiguous ready run at the scheduling
        // frontier into one CPU task. Per-page work is the FTS page cost
        // with the row term scaled by the number of predicates whose lap
        // covers that tick (shared evaluation does each page once per
        // distinct predicate).
        if self.eval.is_some() {
            return;
        }
        let mut run_len = 0u64;
        while let Some(&len) = self.ready.get(&(self.sched + run_len)) {
            self.ready.remove(&(self.sched + run_len));
            run_len += len as u64;
        }
        if run_len == 0 {
            return;
        }
        let costs = ctx.costs().clone();
        let mut work = 0.0;
        for t in self.sched..self.sched + run_len {
            let rows = self.table.spec().rows_in_page(t % self.n_pages);
            let preds = self
                .preds
                .iter()
                .filter(|p| t >= p.start_tick && t - p.start_tick < self.n_pages)
                .count()
                .max(1);
            work += costs.page_overhead_us
                + (rows.end - rows.start) as f64 * costs.row_scan_us * preds as f64;
        }
        let task = ctx.submit_cpu(work);
        self.eval = Some((task, self.sched, run_len));
        self.sched += run_len;
    }

    /// All consumers gone: stop streaming and drop in-flight bookkeeping.
    /// (When every consumer ran to completion the frontier has caught up
    /// and there is nothing to drop; after detaches there may be stale
    /// blocks in flight, whose completions the engine's global pool admit
    /// still handles.)
    fn go_idle(&mut self) {
        self.active = false;
        self.ready.clear();
        self.my_blocks.clear();
        // Restart cleanly: the next attach streams from a fresh frontier.
        // Skipping the in-flight ticks [done, fetched) would leave a hole
        // in any unfinished predicate lap, so park those accumulators —
        // they restart from scratch when their predicate next appears.
        self.sched = self.sched.max(self.done).max(self.fetched);
        self.done = self.sched;
        self.fetched = self.sched;
        self.need = self.sched;
        for p in &mut self.preds {
            if p.pages_done < self.n_pages {
                p.start_tick = PRED_PARKED;
                p.pages_done = 0;
                p.max_c1 = None;
                p.matched = 0;
                p.fp = 0;
            }
        }
    }
}
