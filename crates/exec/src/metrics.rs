//! Scan results and observability.

use crate::engine::{IoProfile, ResilienceStats};
use pioqo_bufpool::PoolStats;
use pioqo_obs::HistSet;
use pioqo_simkit::SimDuration;
use serde::{Deserialize, Serialize};

/// The result of executing one [`crate::query::QuerySpec`] with one
/// physical plan, plus everything the experiments report about the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanMetrics {
    /// Virtual runtime of the scan (first work to last result).
    pub runtime: SimDuration,
    /// The aggregate value (`None` when no row matches or for `COUNT`).
    pub max_c1: Option<u32>,
    /// Rows satisfying the predicate (joined pairs for joins).
    pub rows_matched: u64,
    /// Rows the operator examined (FTS examines all; IS only matches).
    pub rows_examined: u64,
    /// Order-independent fingerprint of the projected matching rows.
    pub fingerprint: u64,
    /// Device-level I/O statistics for the run.
    pub io: IoProfile,
    /// Buffer-pool counters accumulated during the run.
    pub pool: PoolStats,
    /// Fault-handling counters for the run (all zero on a clean device).
    pub resilience: ResilienceStats,
    /// Latency / queue-depth / page-wait / retry histograms for the run.
    pub hists: HistSet,
}

impl ScanMetrics {
    /// Runtime in seconds (for reporting).
    pub fn runtime_secs(&self) -> f64 {
        self.runtime.as_secs_f64()
    }
}
