//! Crash recovery: WAL replay, checksum-based torn-page detection, and
//! RAID reconstruction fallback.
//!
//! [`recover`] takes the post-crash [`MediaStore`] — exactly the bytes a
//! crashed device left behind — and rebuilds the write table:
//!
//! 1. **Scan** the WAL extent. [`Wal::scan`] walks sealed segments in
//!    order and stops at the first hole or corrupt segment, yielding the
//!    durable record prefix. Anything past the durability watermark was
//!    never acknowledged, so dropping it is correct (and mandatory: a torn
//!    segment cannot be trusted).
//! 2. **Detect** damaged data pages by per-page checksum: every
//!    table-extent page present on media must decode; failures are torn or
//!    corrupt pages.
//! 3. **Replay from origin.** Because the first WAL record ever written
//!    for a page is a full post-update image, replay reconstructs every
//!    updated page purely from the log — it never reads a (possibly torn)
//!    data page. Checkpoint records are writeback-progress markers, not
//!    replay bounds, so a fuzzy checkpoint can never hide an update.
//! 4. **Reconstruct** damaged pages the log does not cover (pages damaged
//!    at rest, never updated) from redundancy when the media offers it;
//!    otherwise report them as typed unrecoverable losses — never as
//!    silently wrong bytes.
//! 5. **Verify**: after recovery every table page on media must decode,
//!    except the explicitly-reported unrecoverable ones.

use pioqo_bufpool::wal::{Wal, WalOp};
use pioqo_device::MediaStore;
use pioqo_storage::{decode_heap_page, encode_heap_page, Extent, TableSpec};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// What one [`recover`] pass found and repaired.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RecoveryStats {
    /// Sealed WAL segments in the durable prefix.
    pub wal_segments: u64,
    /// WAL records replayable (the durable prefix).
    pub wal_records: u64,
    /// Last durable LSN — the recovery horizon. Every acknowledged commit
    /// must sit at or below it.
    pub durable_lsn: u64,
    /// Checkpoint records seen in the durable prefix.
    pub checkpoints: u64,
    /// Data pages rebuilt from the log and written back.
    pub pages_replayed: u64,
    /// Update/page-image records applied during replay.
    pub records_replayed: u64,
    /// Table pages whose checksum rejected the on-media image.
    pub torn_pages_detected: u64,
    /// Damaged pages rebuilt from media redundancy (RAID mirror).
    pub reconstructed_pages: u64,
    /// Damaged pages neither the log nor redundancy could rebuild —
    /// reported, never papered over.
    pub unrecoverable_pages: Vec<u64>,
    /// Table pages that decode cleanly after recovery.
    pub pages_verified: u64,
}

impl RecoveryStats {
    /// True when recovery restored every page it found damaged.
    pub fn fully_recovered(&self) -> bool {
        self.unrecoverable_pages.is_empty()
    }
}

/// Recover the write table on `media` after a crash. See the module docs
/// for the pass structure. Deterministic: same media in, same media and
/// stats out.
pub fn recover(
    media: &mut MediaStore,
    wal_extent: Extent,
    spec: &TableSpec,
    table_extent: Extent,
) -> RecoveryStats {
    let mut stats = RecoveryStats::default();

    // Pass 1: the durable WAL prefix.
    let scan = Wal::scan(wal_extent.base, wal_extent.pages, spec.page_size, |p| {
        media.read(p).map(<[u8]>::to_vec)
    });
    stats.wal_segments = scan.segments;
    stats.wal_records = scan.records.len() as u64;
    stats.durable_lsn = scan.durable_lsn;
    stats.checkpoints = scan.checkpoints;

    // Pass 2: checksum-verify every table page present on media.
    let mut damaged: BTreeSet<u64> = BTreeSet::new();
    let present: Vec<u64> = media
        .pages()
        .map(|(p, _)| p)
        .filter(|&p| table_extent.contains(p))
        .collect();
    for dp in &present {
        let image = media.read(*dp).expect("just listed");
        if decode_heap_page(spec, image).is_err() {
            damaged.insert(*dp);
        }
    }
    stats.torn_pages_detected = damaged.len() as u64;

    // Pass 3: redo from origin. First-touch full images seed each page;
    // later updates mutate it. No data page is ever read.
    let mut rows: BTreeMap<u64, Vec<(u32, u32)>> = BTreeMap::new();
    for rec in &scan.records {
        match &rec.op {
            WalOp::PageImage { page, image } => {
                let local = *page - table_extent.base;
                let decoded = decode_heap_page(spec, image)
                    .expect("WAL page image is checksummed by its segment");
                debug_assert_eq!(decoded.page_no, local);
                rows.insert(*page, decoded.rows);
                stats.records_replayed += 1;
            }
            WalOp::Update { page, slot, value } => {
                match rows.get_mut(page) {
                    Some(r) => r[*slot as usize].0 = *value,
                    // An update without its page's seeding image would mean
                    // the first-touch invariant broke; surface the page as
                    // unrecoverable rather than guessing.
                    None => {
                        damaged.insert(*page);
                        continue;
                    }
                }
                stats.records_replayed += 1;
            }
            WalOp::Checkpoint { .. } => {}
        }
    }
    for (dp, page_rows) in &rows {
        let local = dp - table_extent.base;
        let image = encode_heap_page(spec, local, page_rows);
        media.write(*dp, &image);
        damaged.remove(dp);
        stats.pages_replayed += 1;
    }

    // Pass 4: damage the log does not cover — redundancy or typed loss.
    for dp in damaged {
        let repaired = media
            .reconstruct(dp)
            .filter(|image| decode_heap_page(spec, image).is_ok());
        match repaired {
            Some(image) => {
                media.write(dp, &image);
                stats.reconstructed_pages += 1;
            }
            None => stats.unrecoverable_pages.push(dp),
        }
    }

    // Pass 5: verify. Every table page on media now decodes unless it was
    // explicitly reported unrecoverable.
    let unrecoverable: BTreeSet<u64> = stats.unrecoverable_pages.iter().copied().collect();
    let verify: Vec<u64> = media
        .pages()
        .map(|(p, _)| p)
        .filter(|&p| table_extent.contains(p))
        .collect();
    for dp in verify {
        if unrecoverable.contains(&dp) {
            continue;
        }
        let image = media.read(dp).expect("just listed");
        assert!(
            decode_heap_page(spec, image).is_ok(),
            "page {dp} fails verification after recovery"
        );
        stats.pages_verified += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_storage::{HeapTable, Tablespace};

    fn fixture_with(redundant: bool) -> (TableSpec, Extent, Extent, MediaStore) {
        let spec = pioqo_storage::TableSpec::paper_table(33, 1_000, 5);
        let mut ts = Tablespace::new(spec.n_pages() + 200);
        let table = HeapTable::create(spec.clone(), &mut ts).expect("fits");
        let wal = ts.alloc("wal", 128).expect("fits");
        let mut media = MediaStore::new(spec.page_size);
        if redundant {
            media = media.with_redundancy();
        }
        // Persist the whole generated table so at-rest damage has targets.
        for local in 0..table.n_pages() {
            media.write(table.device_page(local), &table.page_image(local));
        }
        (spec, table.extent(), wal, media)
    }

    fn fixture() -> (TableSpec, Extent, Extent, MediaStore) {
        fixture_with(false)
    }

    #[test]
    fn empty_wal_recovers_clean_media_untouched() {
        let (spec, table_extent, wal_extent, mut media) = fixture();
        let before: Vec<_> = media.pages().map(|(p, i)| (p, i.to_vec())).collect();
        let stats = recover(&mut media, wal_extent, &spec, table_extent);
        assert_eq!(stats.wal_records, 0);
        assert_eq!(stats.pages_replayed, 0);
        assert!(stats.fully_recovered());
        assert_eq!(stats.pages_verified, before.len() as u64);
        let after: Vec<_> = media.pages().map(|(p, i)| (p, i.to_vec())).collect();
        assert_eq!(before, after, "recovery must not disturb clean media");
    }

    #[test]
    fn at_rest_corruption_without_redundancy_is_typed_loss() {
        let (spec, table_extent, wal_extent, mut media) = fixture();
        let victim = table_extent.base + 3;
        media.corrupt(victim, 42);
        let stats = recover(&mut media, wal_extent, &spec, table_extent);
        assert_eq!(stats.torn_pages_detected, 1);
        assert_eq!(stats.unrecoverable_pages, vec![victim]);
        assert_eq!(stats.reconstructed_pages, 0);
    }

    #[test]
    fn at_rest_corruption_with_mirror_is_reconstructed() {
        let (spec, table_extent, wal_extent, mut media) = fixture_with(true);
        let victim = table_extent.base + 3;
        let clean = media.read(victim).expect("present").to_vec();
        media.corrupt(victim, 42);
        let stats = recover(&mut media, wal_extent, &spec, table_extent);
        assert_eq!(stats.torn_pages_detected, 1);
        assert_eq!(stats.reconstructed_pages, 1);
        assert!(stats.fully_recovered());
        assert_eq!(media.read(victim).expect("present"), &clean[..]);
    }

    #[test]
    fn degraded_mirror_cannot_reconstruct() {
        let (spec, table_extent, wal_extent, mut media) = fixture_with(true);
        media.set_degraded(true);
        let victim = table_extent.base + 7;
        media.corrupt(victim, 42);
        let stats = recover(&mut media, wal_extent, &spec, table_extent);
        assert_eq!(stats.unrecoverable_pages, vec![victim]);
    }
}
