//! The unified execution entry point: one function, any operator.
//!
//! [`execute`] takes a single [`QuerySpec`] — the physical plan *and* the
//! logical query (table, predicate tree, projection, aggregate, optional
//! join) — lowers it to a [`QueryDriver`] and pumps the context's event
//! loop until the answer is complete. This replaced the earlier
//! `(PlanSpec, ScanInputs)` pair (and, before that, six per-operator
//! `run_*` entry points): the `low`/`high` window of `ScanInputs` survives
//! as the sarg of a `C2 BETWEEN` predicate, so the paper's range-MAX is
//! now just one point in the query space.

use crate::driver::QueryDriver;
use crate::engine::{Event, ExecError, RetryPolicy, SimContext};
use crate::fts::{FtsConfig, FtsDriver};
use crate::is::{IsConfig, IsDriver};
use crate::join::{HashJoinConfig, HashJoinDriver, InlConfig, InlDriver};
use crate::metrics::ScanMetrics;
use crate::query::QuerySpec;
use crate::sorted_is::{SortedIsConfig, SortedIsDriver};
use serde::{Deserialize, Serialize};

/// What [`execute`] returns: the metrics bundle of one query.
pub type ScanOutput = ScanMetrics;

/// A physical plan, fully specified: the access method (or join operator)
/// plus its configuration. This is the executor-side twin of the
/// optimizer's `Plan` (the optimizer crate depends on this one, so the
/// lowering lives there).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PlanSpec {
    /// (Parallel) full table scan.
    Fts(FtsConfig),
    /// (Parallel) index scan.
    Is(IsConfig),
    /// Sorted index scan.
    SortedIs(SortedIsConfig),
    /// Index-nested-loop join (random probes, wants deep queues).
    Inl(InlConfig),
    /// Hybrid hash join (sequential partitioned I/O).
    Hash(HashJoinConfig),
}

impl PlanSpec {
    /// Short human-readable plan label ("FTS", "PIS8+pf4", "INL+qd8",
    /// "HHJ8").
    pub fn label(&self) -> String {
        let mut s = String::new();
        self.label_into(&mut s);
        s
    }

    /// Append the plan label to `buf` without allocating (hot admission
    /// paths reuse one scratch `String` across queries).
    pub fn label_into(&self, buf: &mut String) {
        use std::fmt::Write as _;
        match self {
            PlanSpec::Fts(c) if c.workers == 1 => buf.push_str("FTS"),
            PlanSpec::Fts(c) => {
                let _ = write!(buf, "PFTS{}", c.workers);
            }
            PlanSpec::Is(c) if c.workers == 1 && c.prefetch_depth == 0 => buf.push_str("IS"),
            PlanSpec::Is(c) if c.prefetch_depth == 0 => {
                let _ = write!(buf, "PIS{}", c.workers);
            }
            PlanSpec::Is(c) => {
                let _ = write!(buf, "PIS{}+pf{}", c.workers, c.prefetch_depth);
            }
            PlanSpec::SortedIs(_) => buf.push_str("SortedIS"),
            PlanSpec::Inl(c) => {
                let _ = write!(buf, "INL+qd{}", c.probe_depth);
            }
            PlanSpec::Hash(c) => {
                let _ = write!(buf, "HHJ{}", c.partitions);
            }
        }
    }

    /// The parallel degree the plan runs at.
    pub fn degree(&self) -> u32 {
        match self {
            PlanSpec::Fts(c) => c.workers,
            PlanSpec::Is(c) => c.workers,
            PlanSpec::SortedIs(_) | PlanSpec::Inl(_) | PlanSpec::Hash(_) => 1,
        }
    }

    /// Whether this is a join plan (needs a [`crate::query::JoinClause`]).
    pub fn is_join(&self) -> bool {
        matches!(self, PlanSpec::Inl(_) | PlanSpec::Hash(_))
    }

    /// The plan's retry/timeout policy (installed on the context by
    /// [`execute`]).
    pub fn retry(&self) -> &RetryPolicy {
        match self {
            PlanSpec::Fts(c) => &c.retry,
            PlanSpec::Is(c) => &c.retry,
            PlanSpec::SortedIs(c) => &c.retry,
            PlanSpec::Inl(c) => &c.retry,
            PlanSpec::Hash(c) => &c.retry,
        }
    }
}

/// Lower a query to its driver. Fails if the plan needs an index or join
/// clause the spec does not provide.
pub fn make_driver<'q>(q: &QuerySpec<'q>) -> Result<Box<dyn QueryDriver + 'q>, ExecError> {
    let need_index = || {
        q.index.ok_or(ExecError::Internal {
            detail: "index-scan plan without an index",
        })
    };
    let need_join = || {
        q.join.ok_or(ExecError::Internal {
            detail: "join plan without a join clause",
        })
    };
    let eval = q.row_eval();
    Ok(match &q.plan {
        PlanSpec::Fts(cfg) => Box::new(FtsDriver::new(cfg.clone(), q.table, eval)),
        PlanSpec::Is(cfg) => Box::new(IsDriver::new(cfg.clone(), q.table, need_index()?, eval)),
        PlanSpec::SortedIs(cfg) => Box::new(SortedIsDriver::new(
            cfg.clone(),
            q.table,
            need_index()?,
            eval,
        )),
        PlanSpec::Inl(cfg) => Box::new(InlDriver::new(cfg.clone(), q.table, need_join()?, eval)?),
        PlanSpec::Hash(cfg) => Box::new(HashJoinDriver::new(
            cfg.clone(),
            q.table,
            need_join()?,
            eval,
        )?),
    })
}

/// Execute one query to completion on `ctx` and return its metrics.
///
/// The context is not consumed: callers can run several queries back to
/// back on one context (warm pool, monotone virtual time) or install a
/// trace sink up front. The plan's retry policy is installed on the
/// context; each query's metrics cover only its own window (runtime is
/// measured from the context time at entry, pool stats are diffed).
pub fn execute(ctx: &mut SimContext<'_>, q: &QuerySpec<'_>) -> Result<ScanOutput, ExecError> {
    ctx.set_retry_policy(q.plan.retry().clone());
    let start = ctx.now();
    let pool_before = ctx.pool.stats().clone();
    let mut driver = make_driver(q)?;
    driver.start(ctx)?;
    let mut events: Vec<Event> = Vec::new();
    while !driver.done() {
        if ctx.device_crashed() {
            return Err(ExecError::Crashed);
        }
        events.clear();
        let progressed = ctx.step(&mut events);
        if !progressed && ctx.device_crashed() {
            return Err(ExecError::Crashed);
        }
        assert!(progressed, "scan deadlocked with work pending");
        for e in &events {
            driver.on_event(ctx, e)?;
        }
    }
    let answer = driver.answer();
    let runtime = ctx.now() - start;
    let io = ctx.io_profile();
    let resilience = ctx.resilience();
    ctx.quiesce();
    let hists = ctx.take_histograms();
    let pool = ctx.pool.stats().diff(&pool_before);
    Ok(ScanMetrics {
        runtime,
        max_c1: answer.max_c1,
        rows_matched: answer.rows_matched,
        rows_examined: answer.rows_examined,
        fingerprint: answer.fingerprint,
        io,
        pool,
        resilience,
        hists,
    })
}
