//! The unified execution entry point: one function, any scan operator.
//!
//! [`execute`] replaced the six per-operator `run_*`/`run_*_traced` entry
//! points (since deleted): the caller builds a [`SimContext`] (installing
//! a trace sink and retry policy on it as needed), describes the chosen
//! plan as a [`PlanSpec`] and the operands as [`ScanInputs`], and gets back
//! the same [`ScanOutput`] the old entry points produced. Internally the
//! plan is lowered to a [`QueryDriver`] and pumped on the context's event
//! loop until the answer is complete.

use crate::driver::QueryDriver;
use crate::engine::{Event, ExecError, RetryPolicy, SimContext};
use crate::fts::{FtsConfig, FtsDriver};
use crate::is::{IsConfig, IsDriver};
use crate::metrics::ScanMetrics;
use crate::sorted_is::{SortedIsConfig, SortedIsDriver};
use pioqo_storage::{BTreeIndex, HeapTable};
use serde::{Deserialize, Serialize};

/// What [`execute`] returns: the metrics bundle of one scan.
pub type ScanOutput = ScanMetrics;

/// A physical plan, fully specified: the access method plus its operator
/// configuration. This is the executor-side twin of the optimizer's `Plan`
/// (the optimizer crate depends on this one, so the lowering lives there).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PlanSpec {
    /// (Parallel) full table scan.
    Fts(FtsConfig),
    /// (Parallel) index scan.
    Is(IsConfig),
    /// Sorted index scan.
    SortedIs(SortedIsConfig),
}

impl PlanSpec {
    /// Short human-readable plan label ("FTS", "PIS8+pf4", "SortedIS").
    pub fn label(&self) -> String {
        let mut s = String::new();
        self.label_into(&mut s);
        s
    }

    /// Append the plan label to `buf` without allocating (hot admission
    /// paths reuse one scratch `String` across queries).
    pub fn label_into(&self, buf: &mut String) {
        use std::fmt::Write as _;
        match self {
            PlanSpec::Fts(c) if c.workers == 1 => buf.push_str("FTS"),
            PlanSpec::Fts(c) => {
                let _ = write!(buf, "PFTS{}", c.workers);
            }
            PlanSpec::Is(c) if c.workers == 1 && c.prefetch_depth == 0 => buf.push_str("IS"),
            PlanSpec::Is(c) if c.prefetch_depth == 0 => {
                let _ = write!(buf, "PIS{}", c.workers);
            }
            PlanSpec::Is(c) => {
                let _ = write!(buf, "PIS{}+pf{}", c.workers, c.prefetch_depth);
            }
            PlanSpec::SortedIs(_) => buf.push_str("SortedIS"),
        }
    }

    /// The parallel degree the plan runs at.
    pub fn degree(&self) -> u32 {
        match self {
            PlanSpec::Fts(c) => c.workers,
            PlanSpec::Is(c) => c.workers,
            PlanSpec::SortedIs(_) => 1,
        }
    }

    /// The plan's retry/timeout policy (installed on the context by
    /// [`execute`]).
    pub fn retry(&self) -> &RetryPolicy {
        match self {
            PlanSpec::Fts(c) => &c.retry,
            PlanSpec::Is(c) => &c.retry,
            PlanSpec::SortedIs(c) => &c.retry,
        }
    }
}

/// The operands of one range-MAX query.
#[derive(Debug, Clone, Copy)]
pub struct ScanInputs<'a> {
    /// The heap table to scan.
    pub table: &'a HeapTable,
    /// The C2 index (required by the index-scan plans, unused by FTS).
    pub index: Option<&'a BTreeIndex>,
    /// Predicate lower bound (inclusive).
    pub low: u32,
    /// Predicate upper bound (inclusive).
    pub high: u32,
}

/// Lower a plan to its driver. Fails if the plan needs an index the inputs
/// do not provide.
pub fn make_driver<'q>(
    plan: &PlanSpec,
    inputs: &ScanInputs<'q>,
) -> Result<Box<dyn QueryDriver + 'q>, ExecError> {
    let need_index = || {
        inputs.index.ok_or(ExecError::Internal {
            detail: "index-scan plan without an index",
        })
    };
    Ok(match plan {
        PlanSpec::Fts(cfg) => Box::new(FtsDriver::new(
            cfg.clone(),
            inputs.table,
            inputs.low,
            inputs.high,
        )),
        PlanSpec::Is(cfg) => Box::new(IsDriver::new(
            cfg.clone(),
            inputs.table,
            need_index()?,
            inputs.low,
            inputs.high,
        )),
        PlanSpec::SortedIs(cfg) => Box::new(SortedIsDriver::new(
            cfg.clone(),
            inputs.table,
            need_index()?,
            inputs.low,
            inputs.high,
        )),
    })
}

/// Execute one query to completion on `ctx` and return its metrics.
///
/// The context is not consumed: callers can run several queries back to
/// back on one context (warm pool, monotone virtual time) or install a
/// trace sink up front. The plan's retry policy is installed on the
/// context; each scan's metrics cover only its own window (runtime is
/// measured from the context time at entry, pool stats are diffed).
pub fn execute(
    ctx: &mut SimContext<'_>,
    plan: &PlanSpec,
    inputs: &ScanInputs<'_>,
) -> Result<ScanOutput, ExecError> {
    ctx.set_retry_policy(plan.retry().clone());
    let start = ctx.now();
    let pool_before = ctx.pool.stats().clone();
    let mut driver = make_driver(plan, inputs)?;
    driver.start(ctx)?;
    let mut events: Vec<Event> = Vec::new();
    while !driver.done() {
        if ctx.device_crashed() {
            return Err(ExecError::Crashed);
        }
        events.clear();
        let progressed = ctx.step(&mut events);
        if !progressed && ctx.device_crashed() {
            return Err(ExecError::Crashed);
        }
        assert!(progressed, "scan deadlocked with work pending");
        for e in &events {
            driver.on_event(ctx, e)?;
        }
    }
    let answer = driver.answer();
    let runtime = ctx.now() - start;
    let io = ctx.io_profile();
    let resilience = ctx.resilience();
    ctx.quiesce();
    let hists = ctx.take_histograms();
    let pool = ctx.pool.stats().diff(&pool_before);
    Ok(ScanMetrics {
        runtime,
        max_c1: answer.max_c1,
        rows_matched: answer.rows_matched,
        rows_examined: answer.rows_examined,
        io,
        pool,
        resilience,
        hists,
    })
}
