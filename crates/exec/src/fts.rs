//! Full table scan (FTS) and parallel full table scan (PFTS).
//!
//! Mirrors the paper's Fig. 2 and §2: a shared page cursor hands the next
//! unprocessed page to whichever worker finishes first; an asynchronous
//! prefetcher reads *blocks of consecutive pages* up to `prefetch_blocks`
//! blocks ahead of the scan frontier, so workers usually find their next
//! page already in the buffer pool and the device sees a sequential I/O
//! pattern. With rows-per-page high the scan is CPU-bound; with it low the
//! scan is bound by sequential bandwidth — exactly the regimes of Table 3.
//!
//! The predicate tree, projection and aggregate are pushed down as a
//! compiled [`RowEval`]: each page is evaluated exactly once, in place,
//! when its compute task completes, and the per-page CPU charge scales
//! with the predicate's comparison-leaf count.
//!
//! The scan is a [`QueryDriver`]: it owns no event loop of its own and can
//! therefore run alone (via [`crate::execute`]) or interleaved with other
//! queries on a shared context (via [`crate::MultiEngine`]).

use crate::cpu::TaskId;
use crate::driver::{QueryAnswer, QueryDriver};
use crate::engine::{io_failure, Event, ExecError, RetryPolicy, SimContext};
use crate::query::{row_fingerprint, Col, RowAcc, RowEval};
use pioqo_device::IoStatus;
use pioqo_storage::HeapTable;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Table-scan configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FtsConfig {
    /// Parallel degree (1 = the non-parallel FTS).
    pub workers: u32,
    /// Prefetch distance in blocks ahead of the scan frontier
    /// (0 disables prefetching: every page is a demand read).
    pub prefetch_blocks: u32,
    /// Pages per prefetch block ("instead of prefetching pages one by one a
    /// large block consisting of several consecutive pages is read", §2).
    pub block_pages: u32,
    /// Retry/timeout policy for the scan's reads (default: no retries).
    pub retry: RetryPolicy,
}

impl Default for FtsConfig {
    fn default() -> Self {
        FtsConfig {
            workers: 1,
            prefetch_blocks: 8,
            block_pages: 16,
            retry: RetryPolicy::default(),
        }
    }
}

#[derive(Debug)]
enum WState {
    Startup,
    WaitIo,
    Compute,
    Done,
}

struct Worker {
    state: WState,
    /// Table-local page being fetched/processed.
    page: u64,
}

/// The (parallel) full-table-scan state machine. See the module docs.
pub struct FtsDriver<'q> {
    cfg: FtsConfig,
    table: &'q HeapTable,
    eval: RowEval,
    n_pages: u64,
    workers: Vec<Worker>,
    cursor: u64,
    pf_next: u64,
    /// io id -> workers waiting on it (demand or prefetch coverage).
    waiters: BTreeMap<u64, Vec<usize>>,
    /// device page -> in-flight prefetch io covering it.
    pf_cover: BTreeMap<u64, u64>,
    /// Block I/O this driver issued (prefetch); everything else is foreign.
    my_blocks: BTreeSet<u64>,
    task_owner: BTreeMap<TaskId, usize>,
    acc: RowAcc,
    op_track: u32,
    finished: bool,
}

impl<'q> FtsDriver<'q> {
    /// A driver evaluating `eval` over every row of `table` with a
    /// (parallel) full table scan.
    pub fn new(cfg: FtsConfig, table: &'q HeapTable, eval: RowEval) -> FtsDriver<'q> {
        assert!(cfg.workers >= 1);
        assert!(cfg.block_pages >= 1);
        let workers = (0..cfg.workers)
            .map(|_| Worker {
                state: WState::Startup,
                page: 0,
            })
            .collect();
        FtsDriver {
            n_pages: table.n_pages(),
            cfg,
            table,
            eval,
            workers,
            cursor: 0,
            pf_next: 0,
            waiters: BTreeMap::new(),
            pf_cover: BTreeMap::new(),
            my_blocks: BTreeSet::new(),
            task_owner: BTreeMap::new(),
            acc: RowAcc::default(),
            op_track: 0,
            finished: false,
        }
    }

    /// CPU charge for evaluating page `p` (scales with predicate terms).
    fn page_work(&self, ctx: &SimContext<'_>, p: u64) -> f64 {
        let rows = self.table.spec().rows_in_page(p);
        self.eval.page_work(ctx.costs(), rows.end - rows.start)
    }

    /// Keep the prefetcher `prefetch_blocks` blocks ahead of the frontier.
    /// Never prefetch behind the cursor (those pages are already claimed
    /// and demand-read).
    fn top_up_prefetch(&mut self, ctx: &mut SimContext<'_>) {
        if self.cfg.prefetch_blocks == 0 {
            return;
        }
        if self.pf_next < self.cursor {
            self.pf_next = self.cursor;
        }
        let window_end = self
            .n_pages
            .min(self.cursor + (self.cfg.prefetch_blocks * self.cfg.block_pages) as u64);
        while self.pf_next < window_end {
            let len = (self.cfg.block_pages as u64).min(self.n_pages - self.pf_next) as u32;
            let first_dp = self.table.device_page(self.pf_next);
            let all_resident = (0..len as u64).all(|i| ctx.pool.contains(first_dp + i));
            if !all_resident {
                let io = ctx.read_block(first_dp, len);
                self.my_blocks.insert(io);
                for i in 0..len as u64 {
                    self.pf_cover.insert(first_dp + i, io);
                }
            }
            self.pf_next += len as u64;
        }
    }

    /// Hand worker `w` its next page (or retire it).
    fn claim(&mut self, ctx: &mut SimContext<'_>, w: usize) {
        if self.cursor >= self.n_pages {
            self.workers[w].state = WState::Done;
            return;
        }
        let p = self.cursor;
        self.cursor += 1;
        self.workers[w].page = p;
        self.top_up_prefetch(ctx);
        let dp = self.table.device_page(p);
        match ctx.pool.request(dp) {
            pioqo_bufpool::Access::Hit => {
                let work = self.page_work(ctx, p);
                let t = ctx.submit_cpu(work);
                self.task_owner.insert(t, w);
                self.workers[w].state = WState::Compute;
            }
            pioqo_bufpool::Access::Miss => {
                let io = match self.pf_cover.get(&dp) {
                    Some(&io) => io,
                    None => ctx.read_page(dp),
                };
                self.waiters.entry(io).or_default().push(w);
                self.workers[w].state = WState::WaitIo;
            }
        }
    }

    /// Wake every worker waiting on `io`: their page is now resident, so
    /// pin it and start the page-processing compute task.
    fn wake_waiters(&mut self, ctx: &mut SimContext<'_>, io: u64) {
        let Some(ws) = self.waiters.remove(&io) else {
            return;
        };
        for w in ws {
            debug_assert!(matches!(self.workers[w].state, WState::WaitIo));
            let p = self.workers[w].page;
            let dp = self.table.device_page(p);
            match ctx.pool.request(dp) {
                pioqo_bufpool::Access::Hit => {}
                pioqo_bufpool::Access::Miss => {
                    // Evicted between admit and wake (pathologically small
                    // pool): fall back to a fresh demand read.
                    let iop = ctx.read_page(dp);
                    self.waiters.entry(iop).or_default().push(w);
                    continue;
                }
            }
            let work = self.page_work(ctx, p);
            let t = ctx.submit_cpu(work);
            self.task_owner.insert(t, w);
            self.workers[w].state = WState::Compute;
        }
    }

    fn maybe_finish(&mut self, ctx: &mut SimContext<'_>) {
        if !self.finished && self.workers.iter().all(|w| matches!(w.state, WState::Done)) {
            ctx.trace_span_end(self.op_track, "fts_scan");
            self.finished = true;
        }
    }
}

impl QueryDriver for FtsDriver<'_> {
    fn operator(&self) -> &'static str {
        "fts"
    }

    fn start(&mut self, ctx: &mut SimContext<'_>) -> Result<(), ExecError> {
        self.op_track = ctx.trace_track("fts");
        ctx.trace_span_begin(self.op_track, "fts_scan");
        // Worker startup cost: threads wake and attach to the plan fragment.
        for w in 0..self.workers.len() {
            let startup = if self.cfg.workers > 1 {
                ctx.costs().worker_startup_us
            } else {
                0.0
            };
            let t = ctx.submit_cpu(startup);
            self.task_owner.insert(t, w);
            self.workers[w].state = WState::Startup;
        }
        self.top_up_prefetch(ctx);
        Ok(())
    }

    fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: &Event) -> Result<(), ExecError> {
        match *ev {
            Event::IoBlock {
                io,
                start,
                len,
                status,
                attempts,
            } => {
                if !self.my_blocks.remove(&io) {
                    return Ok(()); // another query's prefetch
                }
                if status == IoStatus::Error {
                    return Err(io_failure("fts", start, attempts));
                }
                for dp in start..start + len as u64 {
                    self.pf_cover.remove(&dp);
                    ctx.pool.admit_prefetched(dp)?;
                }
                self.wake_waiters(ctx, io);
            }
            Event::IoPage {
                io,
                device_page,
                status,
                attempts,
            } => {
                if !self.waiters.contains_key(&io) {
                    return Ok(()); // not a read this driver is waiting on
                }
                if status == IoStatus::Error {
                    return Err(io_failure("fts", device_page, attempts));
                }
                ctx.pool.admit_prefetched(device_page)?;
                self.wake_waiters(ctx, io);
            }
            Event::Cpu(task) => {
                let Some(w) = self.task_owner.remove(&task) else {
                    return Ok(()); // another query's compute
                };
                match self.workers[w].state {
                    WState::Startup => self.claim(ctx, w),
                    WState::Compute => {
                        let p = self.workers[w].page;
                        self.eval.page(self.table, p, &mut self.acc);
                        ctx.pool.unpin(self.table.device_page(p))?;
                        self.claim(ctx, w);
                    }
                    _ => {
                        return Err(ExecError::Internal {
                            detail: "cpu completion in non-compute state",
                        })
                    }
                }
            }
            // Writes belong to the WAL / flusher machinery, timers to the
            // session layer — never a scan's.
            Event::IoWrite { .. } | Event::Timer { .. } => {}
        }
        self.maybe_finish(ctx);
        Ok(())
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn answer(&self) -> QueryAnswer {
        QueryAnswer::from_acc(&self.acc)
    }
}

/// Evaluate the BETWEEN window over one page (the shared-scan hub's page
/// visit, which stays window-keyed so attached cursors can share one
/// pass). Returns `(max_c1, matched, examined, fingerprint)`; the
/// fingerprint projects all columns, matching a `Projection::All` query.
pub(crate) fn evaluate_page(
    table: &HeapTable,
    page: u64,
    low: u32,
    high: u32,
) -> (Option<u32>, u64, u64, u64) {
    let mut best: Option<u32> = None;
    let mut matched = 0u64;
    let mut fp = 0u64;
    let range = table.spec().rows_in_page(page);
    let examined = range.end - range.start;
    for r in range {
        let (c1, c2) = table.row(r);
        if c2 >= low && c2 <= high {
            matched += 1;
            best = merge_max(best, Some(c1));
            fp = fp.wrapping_add(row_fingerprint(&[Col::C1, Col::C2], c1, c2));
        }
    }
    (best, matched, examined, fp)
}

pub(crate) fn merge_max(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, y) => x.or(y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuConfig;
    use crate::engine::CpuCosts;
    use crate::execute::{execute, PlanSpec};
    use crate::metrics::ScanMetrics;
    use crate::query::{oracle, QuerySpec};
    use pioqo_bufpool::BufferPool;
    use pioqo_device::presets::{consumer_pcie_ssd, hdd_7200};
    use pioqo_storage::{range_for_selectivity, TableSpec, Tablespace};

    fn make_table(rows: u64, rpp: u32) -> HeapTable {
        let spec = TableSpec::paper_table(rpp, rows, 77);
        let mut ts = Tablespace::new(spec.n_pages() + 100);
        HeapTable::create(spec, &mut ts).expect("fits")
    }

    fn scan(table: &HeapTable, sel: f64, cfg: &FtsConfig, ssd: bool) -> ScanMetrics {
        let cap = table.n_pages() + 200;
        let mut pool = BufferPool::new(1024);
        let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
        let q = QuerySpec::range_max(table, None, low, high).with_plan(PlanSpec::Fts(cfg.clone()));
        if ssd {
            let mut dev = consumer_pcie_ssd(cap, 9);
            let mut ctx = SimContext::new(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
            );
            execute(&mut ctx, &q).expect("scan runs")
        } else {
            let mut dev = hdd_7200(cap, 9);
            let mut ctx = SimContext::new(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
            );
            execute(&mut ctx, &q).expect("scan runs")
        }
    }

    #[test]
    fn result_matches_oracle() {
        let table = make_table(20_000, 33);
        for sel in [0.0, 0.01, 0.5, 1.0] {
            let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
            let m = scan(&table, sel, &FtsConfig::default(), true);
            assert_eq!(m.max_c1, table.data().naive_max_c1(low, high), "sel={sel}");
            assert_eq!(m.rows_matched, table.data().count_matching(low, high));
            assert_eq!(m.rows_examined, 20_000);
            let acc = oracle(&QuerySpec::range_max(&table, None, low, high));
            assert_eq!(m.fingerprint, acc.fingerprint, "sel={sel}");
        }
    }

    #[test]
    fn parallel_degrees_agree_on_answer() {
        let table = make_table(10_000, 33);
        let base = scan(&table, 0.2, &FtsConfig::default(), true);
        for workers in [2u32, 8, 32] {
            let cfg = FtsConfig {
                workers,
                ..FtsConfig::default()
            };
            let m = scan(&table, 0.2, &cfg, true);
            assert_eq!(m.max_c1, base.max_c1, "workers={workers}");
            assert_eq!(m.rows_matched, base.rows_matched);
            assert_eq!(m.fingerprint, base.fingerprint, "workers={workers}");
        }
    }

    #[test]
    fn every_page_read_exactly_once_cold() {
        let table = make_table(33_000, 33); // 1000 pages
        let m = scan(&table, 0.1, &FtsConfig::default(), true);
        assert_eq!(m.io.pages_read, 1000);
        assert_eq!(m.pool.refetches, 0);
    }

    #[test]
    fn prefetching_beats_demand_reads() {
        let table = make_table(33_000, 33);
        let with_pf = scan(&table, 0.1, &FtsConfig::default(), true);
        let without = scan(
            &table,
            0.1,
            &FtsConfig {
                prefetch_blocks: 0,
                ..FtsConfig::default()
            },
            true,
        );
        assert!(
            with_pf.runtime < without.runtime,
            "prefetch should overlap I/O with CPU: {} vs {}",
            with_pf.runtime,
            without.runtime
        );
    }

    #[test]
    fn parallelism_helps_on_ssd_for_cpu_heavy_pages() {
        // T500-style: very CPU-intensive scan.
        let table = make_table(250_000, 500); // 500 pages of 500 rows
        let m1 = scan(&table, 0.1, &FtsConfig::default(), true);
        let m8 = scan(
            &table,
            0.1,
            &FtsConfig {
                workers: 8,
                ..FtsConfig::default()
            },
            true,
        );
        let speedup = m1.runtime.as_secs_f64() / m8.runtime.as_secs_f64();
        assert!(
            speedup > 2.0,
            "PFTS8 should clearly beat FTS on CPU-bound scan: {speedup}"
        );
    }

    #[test]
    fn parallelism_does_not_help_io_bound_hdd() {
        // T1-style on HDD: pure sequential I/O bound.
        let table = make_table(2_000, 1);
        let m1 = scan(&table, 0.1, &FtsConfig::default(), false);
        let m8 = scan(
            &table,
            0.1,
            &FtsConfig {
                workers: 8,
                ..FtsConfig::default()
            },
            false,
        );
        let speedup = m1.runtime.as_secs_f64() / m8.runtime.as_secs_f64();
        assert!(
            (0.7..=1.5).contains(&speedup),
            "HDD sequential scan should not scale with workers: {speedup}"
        );
    }

    #[test]
    fn predicate_terms_scale_page_cpu() {
        use crate::query::{CmpOp, Predicate};
        let table = make_table(250_000, 500); // CPU-bound scan
        let one_term = scan(&table, 1.0, &FtsConfig::default(), true);
        // Same match set expressed with three AND-ed comparison leaves:
        // costs more CPU, returns the same rows.
        let q = QuerySpec::scan(&table)
            .filter(Predicate::Cmp {
                col: Col::C2,
                op: CmpOp::Le,
                value: u32::MAX,
            })
            .filter(Predicate::Cmp {
                col: Col::C1,
                op: CmpOp::Le,
                value: u32::MAX,
            })
            .filter(Predicate::Cmp {
                col: Col::C1,
                op: CmpOp::Ge,
                value: 0,
            });
        assert_eq!(q.predicate.terms(), 3);
        let mut dev = consumer_pcie_ssd(table.n_pages() + 200, 9);
        let mut pool = BufferPool::new(1024);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let m3 = execute(&mut ctx, &q).expect("scan runs");
        assert_eq!(m3.rows_matched, 250_000);
        assert!(
            m3.runtime > one_term.runtime,
            "3 predicate terms must cost more CPU than 1: {} vs {}",
            m3.runtime,
            one_term.runtime
        );
    }

    #[test]
    fn io_error_surfaces() {
        let table = make_table(10_000, 33);
        let dev = consumer_pcie_ssd(table.n_pages() + 10, 3);
        let mut dev = pioqo_device::Faulty::new(dev, pioqo_device::FaultPlan::EveryNth(2));
        let mut pool = BufferPool::new(256);
        let (low, high) = range_for_selectivity(0.5, u32::MAX - 1);
        let mut ctx = SimContext::new(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
        );
        let r = execute(&mut ctx, &QuerySpec::range_max(&table, None, low, high));
        assert!(matches!(
            r,
            Err(ExecError::Io {
                operator: "fts",
                ..
            })
        ));
    }

    #[test]
    fn empty_table_page_range() {
        let table = make_table(5, 33); // single partial page
        let m = scan(&table, 1.0, &FtsConfig::default(), true);
        assert_eq!(m.rows_examined, 5);
        assert_eq!(m.rows_matched, 5);
    }
}
