//! Full table scan (FTS) and parallel full table scan (PFTS).
//!
//! Mirrors the paper's Fig. 2 and §2: a shared page cursor hands the next
//! unprocessed page to whichever worker finishes first; an asynchronous
//! prefetcher reads *blocks of consecutive pages* up to `prefetch_blocks`
//! blocks ahead of the scan frontier, so workers usually find their next
//! page already in the buffer pool and the device sees a sequential I/O
//! pattern. With rows-per-page high the scan is CPU-bound; with it low the
//! scan is bound by sequential bandwidth — exactly the regimes of Table 3.

use crate::cpu::{CpuConfig, TaskId};
use crate::engine::{io_failure, CpuCosts, Event, ExecError, RetryPolicy, SimContext};
use crate::metrics::ScanMetrics;
use pioqo_bufpool::BufferPool;
use pioqo_device::{DeviceModel, IoStatus};
use pioqo_obs::{NullSink, TraceSink};
use pioqo_storage::HeapTable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Table-scan configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FtsConfig {
    /// Parallel degree (1 = the non-parallel FTS).
    pub workers: u32,
    /// Prefetch distance in blocks ahead of the scan frontier
    /// (0 disables prefetching: every page is a demand read).
    pub prefetch_blocks: u32,
    /// Pages per prefetch block ("instead of prefetching pages one by one a
    /// large block consisting of several consecutive pages is read", §2).
    pub block_pages: u32,
    /// Retry/timeout policy for the scan's reads (default: no retries).
    pub retry: RetryPolicy,
}

impl Default for FtsConfig {
    fn default() -> Self {
        FtsConfig {
            workers: 1,
            prefetch_blocks: 8,
            block_pages: 16,
            retry: RetryPolicy::default(),
        }
    }
}

#[derive(Debug)]
enum WState {
    Startup,
    WaitIo,
    Compute,
    Done,
}

struct Worker {
    state: WState,
    /// Table-local page being fetched/processed.
    page: u64,
}

/// Execute `SELECT MAX(C1) FROM table WHERE C2 BETWEEN low AND high` with a
/// (parallel) full table scan.
#[allow(clippy::too_many_arguments)] // explicit operator inputs beat an opaque params bag
pub fn run_fts(
    device: &mut dyn DeviceModel,
    pool: &mut BufferPool,
    cpu: CpuConfig,
    costs: CpuCosts,
    table: &HeapTable,
    low: u32,
    high: u32,
    cfg: &FtsConfig,
) -> Result<ScanMetrics, ExecError> {
    run_fts_traced(
        device,
        pool,
        cpu,
        costs,
        table,
        low,
        high,
        cfg,
        &mut NullSink,
    )
}

/// [`run_fts`] with a trace sink: when the sink is enabled the scan records
/// sim-time I/O, pool and phase-span events into it (and nothing otherwise).
#[allow(clippy::too_many_arguments)] // explicit operator inputs beat an opaque params bag
pub fn run_fts_traced(
    device: &mut dyn DeviceModel,
    pool: &mut BufferPool,
    cpu: CpuConfig,
    costs: CpuCosts,
    table: &HeapTable,
    low: u32,
    high: u32,
    cfg: &FtsConfig,
    trace: &mut dyn TraceSink,
) -> Result<ScanMetrics, ExecError> {
    assert!(cfg.workers >= 1);
    assert!(cfg.block_pages >= 1);
    let pool_stats_before = pool.stats().clone();
    let mut ctx = SimContext::new(device, pool, cpu, costs);
    ctx.set_retry_policy(cfg.retry.clone());
    ctx.set_trace_sink(trace);
    let op_track = ctx.trace_track("fts");
    ctx.trace_span_begin(op_track, "fts_scan");
    let n_pages = table.n_pages();

    let mut workers: Vec<Worker> = (0..cfg.workers)
        .map(|_| Worker {
            state: WState::Startup,
            page: 0,
        })
        .collect();
    let mut cursor: u64 = 0;
    let mut pf_next: u64 = 0;
    // io id -> workers waiting on it (demand or prefetch coverage).
    let mut waiters: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    // device page -> in-flight prefetch io covering it.
    let mut pf_cover: BTreeMap<u64, u64> = BTreeMap::new();
    let mut task_owner: BTreeMap<TaskId, usize> = BTreeMap::new();

    let mut max_c1: Option<u32> = None;
    let mut matched: u64 = 0;
    let mut examined: u64 = 0;

    // Worker startup cost: threads wake and attach to the plan fragment.
    for (w, worker) in workers.iter_mut().enumerate() {
        let startup = if cfg.workers > 1 {
            ctx.costs().worker_startup_us
        } else {
            0.0
        };
        let t = ctx.submit_cpu(startup);
        task_owner.insert(t, w);
        worker.state = WState::Startup;
    }

    // Helper: keep the prefetcher `prefetch_blocks` blocks ahead of the
    // frontier. Never prefetch behind the cursor (those pages are already
    // claimed and demand-read).
    macro_rules! top_up_prefetch {
        () => {
            if cfg.prefetch_blocks > 0 {
                if pf_next < cursor {
                    pf_next = cursor;
                }
                let window_end =
                    n_pages.min(cursor + (cfg.prefetch_blocks * cfg.block_pages) as u64);
                while pf_next < window_end {
                    let len = (cfg.block_pages as u64).min(n_pages - pf_next) as u32;
                    let first_dp = table.device_page(pf_next);
                    let all_resident = (0..len as u64).all(|i| ctx.pool.contains(first_dp + i));
                    if !all_resident {
                        let io = ctx.read_block(first_dp, len);
                        for i in 0..len as u64 {
                            pf_cover.insert(first_dp + i, io);
                        }
                    }
                    pf_next += len as u64;
                }
            }
        };
    }

    // Helper: hand worker `w` its next page (or retire it).
    macro_rules! claim {
        ($w:expr) => {{
            let w: usize = $w;
            if cursor >= n_pages {
                workers[w].state = WState::Done;
            } else {
                let p = cursor;
                cursor += 1;
                workers[w].page = p;
                top_up_prefetch!();
                let dp = table.device_page(p);
                match ctx.pool.request(dp) {
                    pioqo_bufpool::Access::Hit => {
                        let work = page_work(&ctx, table, p);
                        let t = ctx.submit_cpu(work);
                        task_owner.insert(t, w);
                        workers[w].state = WState::Compute;
                    }
                    pioqo_bufpool::Access::Miss => {
                        let io = match pf_cover.get(&dp) {
                            Some(&io) => io,
                            None => ctx.read_page(dp),
                        };
                        waiters.entry(io).or_default().push(w);
                        workers[w].state = WState::WaitIo;
                    }
                }
            }
        }};
    }

    top_up_prefetch!();

    let mut events: Vec<Event> = Vec::new();
    while workers.iter().any(|w| !matches!(w.state, WState::Done)) {
        events.clear();
        let progressed = ctx.step(&mut events);
        assert!(progressed, "scan deadlocked with workers pending");
        for e in std::mem::take(&mut events) {
            match e {
                Event::IoBlock {
                    io,
                    start,
                    len,
                    status,
                    attempts,
                } => {
                    if status == IoStatus::Error {
                        return Err(io_failure("fts", start, attempts));
                    }
                    for dp in start..start + len as u64 {
                        pf_cover.remove(&dp);
                        ctx.pool.admit_prefetched(dp)?;
                    }
                    wake_waiters(
                        &mut ctx,
                        &mut waiters,
                        io,
                        &mut workers,
                        table,
                        &mut task_owner,
                    )?;
                }
                Event::IoPage {
                    io,
                    device_page,
                    status,
                    attempts,
                } => {
                    if status == IoStatus::Error {
                        return Err(io_failure("fts", device_page, attempts));
                    }
                    ctx.pool.admit_prefetched(device_page)?;
                    wake_waiters(
                        &mut ctx,
                        &mut waiters,
                        io,
                        &mut workers,
                        table,
                        &mut task_owner,
                    )?;
                }
                Event::Cpu(task) => {
                    let w = task_owner.remove(&task).expect("task has an owner");
                    match workers[w].state {
                        WState::Startup => claim!(w),
                        WState::Compute => {
                            let p = workers[w].page;
                            let (m, cnt, ex) = evaluate_page(table, p, low, high);
                            max_c1 = merge_max(max_c1, m);
                            matched += cnt;
                            examined += ex;
                            ctx.pool.unpin(table.device_page(p))?;
                            claim!(w);
                        }
                        _ => {
                            return Err(ExecError::Internal {
                                detail: "cpu completion in non-compute state",
                            })
                        }
                    }
                }
            }
        }
    }

    ctx.trace_span_end(op_track, "fts_scan");
    let runtime = ctx.now() - pioqo_simkit::SimTime::ZERO;
    let io = ctx.io_profile();
    let resilience = ctx.resilience();
    ctx.quiesce();
    let hists = ctx.take_histograms();
    let pool_stats = pool.stats().diff(&pool_stats_before);
    Ok(ScanMetrics {
        runtime,
        max_c1,
        rows_matched: matched,
        rows_examined: examined,
        io,
        pool: pool_stats,
        resilience,
        hists,
    })
}

fn page_work(ctx: &SimContext<'_>, table: &HeapTable, page: u64) -> f64 {
    let rows = table.spec().rows_in_page(page);
    ctx.costs().page_overhead_us + (rows.end - rows.start) as f64 * ctx.costs().row_scan_us
}

fn evaluate_page(table: &HeapTable, page: u64, low: u32, high: u32) -> (Option<u32>, u64, u64) {
    let mut best: Option<u32> = None;
    let mut matched = 0u64;
    let range = table.spec().rows_in_page(page);
    let examined = range.end - range.start;
    for r in range {
        let (c1, c2) = table.row(r);
        if c2 >= low && c2 <= high {
            matched += 1;
            best = merge_max(best, Some(c1));
        }
    }
    (best, matched, examined)
}

pub(crate) fn merge_max(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, y) => x.or(y),
    }
}

/// Wake every worker waiting on `io`: their page is now resident, so pin it
/// and start the page-processing compute task.
fn wake_waiters(
    ctx: &mut SimContext<'_>,
    waiters: &mut BTreeMap<u64, Vec<usize>>,
    io: u64,
    workers: &mut [Worker],
    table: &HeapTable,
    task_owner: &mut BTreeMap<TaskId, usize>,
) -> Result<(), ExecError> {
    if let Some(ws) = waiters.remove(&io) {
        for w in ws {
            debug_assert!(matches!(workers[w].state, WState::WaitIo));
            let p = workers[w].page;
            let dp = table.device_page(p);
            match ctx.pool.request(dp) {
                pioqo_bufpool::Access::Hit => {}
                pioqo_bufpool::Access::Miss => {
                    // Evicted between admit and wake (pathologically small
                    // pool): fall back to a fresh demand read.
                    let iop = ctx.read_page(dp);
                    waiters.entry(iop).or_default().push(w);
                    continue;
                }
            }
            let work = page_work(ctx, table, p);
            let t = ctx.submit_cpu(work);
            task_owner.insert(t, w);
            workers[w].state = WState::Compute;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioqo_device::presets::{consumer_pcie_ssd, hdd_7200};
    use pioqo_storage::{range_for_selectivity, TableSpec, Tablespace};

    fn make_table(rows: u64, rpp: u32) -> HeapTable {
        let spec = TableSpec::paper_table(rpp, rows, 77);
        let mut ts = Tablespace::new(spec.n_pages() + 100);
        HeapTable::create(spec, &mut ts).expect("fits")
    }

    fn scan(table: &HeapTable, sel: f64, cfg: &FtsConfig, ssd: bool) -> ScanMetrics {
        let cap = table.n_pages() + 200;
        let mut pool = BufferPool::new(1024);
        let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
        if ssd {
            let mut dev = consumer_pcie_ssd(cap, 9);
            run_fts(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
                table,
                low,
                high,
                cfg,
            )
            .expect("scan runs")
        } else {
            let mut dev = hdd_7200(cap, 9);
            run_fts(
                &mut dev,
                &mut pool,
                CpuConfig::paper_xeon(),
                CpuCosts::default(),
                table,
                low,
                high,
                cfg,
            )
            .expect("scan runs")
        }
    }

    #[test]
    fn result_matches_oracle() {
        let table = make_table(20_000, 33);
        for sel in [0.0, 0.01, 0.5, 1.0] {
            let (low, high) = range_for_selectivity(sel, u32::MAX - 1);
            let m = scan(&table, sel, &FtsConfig::default(), true);
            assert_eq!(m.max_c1, table.data().naive_max_c1(low, high), "sel={sel}");
            assert_eq!(m.rows_matched, table.data().count_matching(low, high));
            assert_eq!(m.rows_examined, 20_000);
        }
    }

    #[test]
    fn parallel_degrees_agree_on_answer() {
        let table = make_table(10_000, 33);
        let base = scan(&table, 0.2, &FtsConfig::default(), true);
        for workers in [2u32, 8, 32] {
            let cfg = FtsConfig {
                workers,
                ..FtsConfig::default()
            };
            let m = scan(&table, 0.2, &cfg, true);
            assert_eq!(m.max_c1, base.max_c1, "workers={workers}");
            assert_eq!(m.rows_matched, base.rows_matched);
        }
    }

    #[test]
    fn every_page_read_exactly_once_cold() {
        let table = make_table(33_000, 33); // 1000 pages
        let m = scan(&table, 0.1, &FtsConfig::default(), true);
        assert_eq!(m.io.pages_read, 1000);
        assert_eq!(m.pool.refetches, 0);
    }

    #[test]
    fn prefetching_beats_demand_reads() {
        let table = make_table(33_000, 33);
        let with_pf = scan(&table, 0.1, &FtsConfig::default(), true);
        let without = scan(
            &table,
            0.1,
            &FtsConfig {
                prefetch_blocks: 0,
                ..FtsConfig::default()
            },
            true,
        );
        assert!(
            with_pf.runtime < without.runtime,
            "prefetch should overlap I/O with CPU: {} vs {}",
            with_pf.runtime,
            without.runtime
        );
    }

    #[test]
    fn parallelism_helps_on_ssd_for_cpu_heavy_pages() {
        // T500-style: very CPU-intensive scan.
        let table = make_table(250_000, 500); // 500 pages of 500 rows
        let m1 = scan(&table, 0.1, &FtsConfig::default(), true);
        let m8 = scan(
            &table,
            0.1,
            &FtsConfig {
                workers: 8,
                ..FtsConfig::default()
            },
            true,
        );
        let speedup = m1.runtime.as_secs_f64() / m8.runtime.as_secs_f64();
        assert!(
            speedup > 2.0,
            "PFTS8 should clearly beat FTS on CPU-bound scan: {speedup}"
        );
    }

    #[test]
    fn parallelism_does_not_help_io_bound_hdd() {
        // T1-style on HDD: pure sequential I/O bound.
        let table = make_table(2_000, 1);
        let m1 = scan(&table, 0.1, &FtsConfig::default(), false);
        let m8 = scan(
            &table,
            0.1,
            &FtsConfig {
                workers: 8,
                ..FtsConfig::default()
            },
            false,
        );
        let speedup = m1.runtime.as_secs_f64() / m8.runtime.as_secs_f64();
        assert!(
            (0.7..=1.5).contains(&speedup),
            "HDD sequential scan should not scale with workers: {speedup}"
        );
    }

    #[test]
    fn io_error_surfaces() {
        let table = make_table(10_000, 33);
        let dev = consumer_pcie_ssd(table.n_pages() + 10, 3);
        let mut dev = pioqo_device::Faulty::new(dev, pioqo_device::FaultPlan::EveryNth(2));
        let mut pool = BufferPool::new(256);
        let (low, high) = range_for_selectivity(0.5, u32::MAX - 1);
        let r = run_fts(
            &mut dev,
            &mut pool,
            CpuConfig::paper_xeon(),
            CpuCosts::default(),
            &table,
            low,
            high,
            &FtsConfig::default(),
        );
        assert!(matches!(
            r,
            Err(ExecError::Io {
                operator: "fts",
                ..
            })
        ));
    }

    #[test]
    fn empty_table_page_range() {
        let table = make_table(5, 33); // single partial page
        let m = scan(&table, 1.0, &FtsConfig::default(), true);
        assert_eq!(m.rows_examined, 5);
        assert_eq!(m.rows_matched, 5);
    }
}
